"""Relational catalog over the emergent schema.

The catalog is the bridge between the discovered characteristic sets and the
SQL world: every CS becomes a table whose columns are the CS's properties
(plus an implicit ``id`` column holding the subject), foreign keys carry
over, and schema summaries can be registered as additional *artificial
schemas* (reduced views) without copying any data — exactly the mechanism
the paper proposes for presenting reduced schemas to the SQL tool-chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cs import CharacteristicSet, EmergentSchema, Multiplicity, PropertyKind
from ..cs.summarize import SchemaSummary
from ..errors import SchemaError
from ..model import TermDictionary

_SQL_TYPES = {
    PropertyKind.IRI: "VARCHAR",
    PropertyKind.STRING: "VARCHAR",
    PropertyKind.INTEGER: "BIGINT",
    PropertyKind.DECIMAL: "DOUBLE",
    PropertyKind.BOOLEAN: "BOOLEAN",
    PropertyKind.DATE: "DATE",
    PropertyKind.DATETIME: "TIMESTAMP",
    PropertyKind.MIXED: "VARCHAR",
}

ID_COLUMN = "id"
"""Name of the implicit subject column of every emergent table."""


@dataclass(frozen=True)
class CatalogColumn:
    """One column of a catalog table."""

    name: str
    predicate_oid: Optional[int]
    sql_type: str
    nullable: bool
    references: Optional[str] = None
    """Name of the referenced table when this column is a foreign key."""

    def ddl(self) -> str:
        null = "" if not self.nullable else " NULL"
        ref = f" REFERENCES {self.references}({ID_COLUMN})" if self.references else ""
        return f"{self.name} {self.sql_type}{null}{ref}"


@dataclass
class CatalogTable:
    """One emergent table: name, columns and the backing CS."""

    name: str
    cs_id: int
    columns: List[CatalogColumn] = field(default_factory=list)
    row_count: int = 0

    def column(self, name: str) -> CatalogColumn:
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name.lower() == name.lower() for column in self.columns)

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def ddl(self) -> str:
        """``CREATE TABLE`` statement for this table (documentation aid)."""
        body = ",\n  ".join(column.ddl() for column in self.columns)
        return f"CREATE TABLE {self.name} (\n  {body}\n);"


class Catalog:
    """All emergent tables plus optional reduced (artificial) schemas."""

    def __init__(self, schema: EmergentSchema, dictionary: Optional[TermDictionary] = None) -> None:
        self.schema = schema
        self.dictionary = dictionary
        self.tables: Dict[str, CatalogTable] = {}
        self.reduced_schemas: Dict[str, List[str]] = {}
        self._cs_to_table: Dict[int, str] = {}
        self._build()

    def _build(self) -> None:
        for table in self.schema.tables_by_support():
            catalog_table = self._build_table(table)
            self.tables[catalog_table.name.lower()] = catalog_table
            self._cs_to_table[table.cs_id] = catalog_table.name

    def _build_table(self, table: CharacteristicSet) -> CatalogTable:
        name = table.label or f"cs{table.cs_id}"
        columns: List[CatalogColumn] = [
            CatalogColumn(name=ID_COLUMN, predicate_oid=None, sql_type="VARCHAR", nullable=False)
        ]
        for predicate_oid in sorted(table.properties):
            spec = table.properties[predicate_oid]
            column_name = spec.label or self._fallback_column_name(predicate_oid)
            references = None
            if spec.fk_target_cs is not None and spec.fk_target_cs in self.schema.tables:
                target = self.schema.tables[spec.fk_target_cs]
                references = target.label or f"cs{target.cs_id}"
            columns.append(CatalogColumn(
                name=column_name,
                predicate_oid=predicate_oid,
                sql_type=_SQL_TYPES[spec.kind],
                nullable=spec.multiplicity is not Multiplicity.EXACTLY_ONE,
                references=references,
            ))
        return CatalogTable(name=name, cs_id=table.cs_id, columns=columns, row_count=table.support)

    def _fallback_column_name(self, predicate_oid: int) -> str:
        if self.dictionary is not None:
            try:
                term = self.dictionary.decode(predicate_oid)
                local = getattr(term, "local_name", None)
                if callable(local):
                    return term.local_name()
            except Exception:  # noqa: BLE001 - naming is best-effort
                pass
        return f"p{predicate_oid}"

    # -- lookups ---------------------------------------------------------------

    def table(self, name: str) -> CatalogTable:
        key = name.lower()
        if key not in self.tables:
            raise SchemaError(f"unknown table {name!r}; known tables: {sorted(self.tables)}")
        return self.tables[key]

    def table_for_cs(self, cs_id: int) -> CatalogTable:
        if cs_id not in self._cs_to_table:
            raise SchemaError(f"no catalog table for CS {cs_id}")
        return self.tables[self._cs_to_table[cs_id].lower()]

    def table_names(self, reduced_schema: Optional[str] = None) -> List[str]:
        if reduced_schema is None:
            return sorted(table.name for table in self.tables.values())
        key = reduced_schema.lower()
        if key not in self.reduced_schemas:
            raise SchemaError(f"unknown reduced schema {reduced_schema!r}")
        return list(self.reduced_schemas[key])

    # -- reduced schemas -----------------------------------------------------------

    def register_summary(self, name: str, summary: SchemaSummary) -> List[str]:
        """Expose a schema summary as a named artificial schema."""
        table_names = [self._cs_to_table[cs_id] for cs_id in summary.table_ids
                       if cs_id in self._cs_to_table]
        self.reduced_schemas[name.lower()] = table_names
        return table_names

    def reduced_schemas_state(self) -> Dict[str, List[str]]:
        """The registered reduced schemas as a JSON-ready mapping.

        Persisted in snapshot manifests: the catalog itself is rebuilt
        deterministically from the emergent schema at open time, but the
        reduced views were registered by the user and would otherwise be
        lost across a save/open cycle.
        """
        return {name: list(tables) for name, tables in self.reduced_schemas.items()}

    def restore_reduced_schemas(self, state: Dict[str, List[str]]) -> None:
        """Re-register reduced schemas captured by :meth:`reduced_schemas_state`.

        Table names that no longer exist in the rebuilt catalog are dropped
        silently — the reduced view is a projection of the live schema.
        """
        for name, tables in state.items():
            self.reduced_schemas[name.lower()] = [
                table for table in tables if table.lower() in self.tables]

    # -- documentation ---------------------------------------------------------------

    def ddl_script(self, reduced_schema: Optional[str] = None) -> str:
        """``CREATE TABLE`` statements for all (or a reduced set of) tables."""
        names = self.table_names(reduced_schema)
        return "\n\n".join(self.table(name).ddl() for name in names)

    def describe(self) -> List[str]:
        """Human-readable one-line-per-table catalog listing."""
        lines = []
        for name in self.table_names():
            table = self.table(name)
            fks = sum(1 for column in table.columns if column.references)
            lines.append(f"{table.name}({len(table.columns)} columns, {table.row_count} rows, {fks} FKs)")
        return lines
