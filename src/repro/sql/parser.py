"""Parser for the SQL SELECT subset exposed over the emergent schema.

Supported grammar::

    SELECT select_item (',' select_item)*
    FROM table [alias] (JOIN table [alias] ON qual_col '=' qual_col)*
    [WHERE predicate (AND predicate)*]
    [GROUP BY qual_col (',' qual_col)*]
    [ORDER BY qual_col [ASC|DESC] (',' ...)*]
    [LIMIT n]

    select_item := qual_col | FUNC '(' arithmetic ')' [AS name] | '*'
    predicate   := qual_col op constant          (op: =, <>, !=, <, <=, >, >=)
    constant    := number | 'string' | DATE 'yyyy-mm-dd' | TRUE | FALSE
    qual_col    := [alias '.'] column

The parser produces a :class:`SqlQuery` AST; translation to physical plans
lives in :mod:`repro.sql.engine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date
from typing import List, Optional, Union

from ..errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><>|<=|>=|!=|[=<>])
  | (?P<PUNCT>[().,*/+-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    column: str
    table: Optional[str] = None

    def describe(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class SqlConstant:
    """A literal constant in a WHERE predicate."""

    value: Union[int, float, str, bool, date]
    kind: str  # "number" | "string" | "date" | "boolean"


@dataclass(frozen=True)
class SqlPredicate:
    """``column op constant``."""

    column: ColumnRef
    op: str
    constant: SqlConstant


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: either a column or an aggregate expression."""

    column: Optional[ColumnRef] = None
    aggregate: Optional[str] = None
    expression: Optional[object] = None  # nested ('op', left, right) / ColumnRef / number
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.column is not None:
            return self.column.column
        return (self.aggregate or "expr").lower()


@dataclass(frozen=True)
class SqlJoin:
    """``JOIN table alias ON left = right``."""

    table: str
    alias: str
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass
class SqlQuery:
    """A parsed SQL SELECT statement."""

    select_items: List[SelectItem] = field(default_factory=list)
    select_star: bool = False
    base_table: str = ""
    base_alias: str = ""
    joins: List[SqlJoin] = field(default_factory=list)
    predicates: List[SqlPredicate] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None

    def has_aggregates(self) -> bool:
        return any(item.aggregate for item in self.select_items)

    def table_aliases(self) -> List[str]:
        aliases = [self.base_alias]
        aliases.extend(join.alias for join in self.joins)
        return aliases


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text


_KEYWORDS = {"select", "from", "where", "and", "join", "on", "group", "order", "by",
             "limit", "as", "asc", "desc", "date", "true", "false", "sum", "count",
             "avg", "min", "max", "inner"}


def parse_sql(text: str) -> SqlQuery:
    """Parse a SQL SELECT statement (subset) into a :class:`SqlQuery`."""
    return _SqlParser(text).parse()


class _SqlParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = self._tokenize(text)
        self.index = 0

    def _tokenize(self, text: str) -> List[_Token]:
        tokens: List[_Token] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise ParseError(f"unexpected character {text[position]!r} in SQL")
            kind = match.lastgroup or ""
            value = match.group()
            position = match.end()
            if kind == "WS":
                continue
            tokens.append(_Token(kind, value))
        return tokens

    # -- helpers -------------------------------------------------------------------

    def _error(self, message: str) -> ParseError:
        return ParseError(f"SQL: {message}")

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of statement")
        self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "IDENT" and token.text.lower() == word:
            self.index += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            found = self.peek().text if self.peek() else "<eof>"
            raise self._error(f"expected {word.upper()}, found {found!r}")

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token is not None and token.kind in ("PUNCT", "OP") and token.text == char:
            self.index += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> SqlQuery:
        query = SqlQuery()
        self.expect_keyword("select")
        self._parse_select_list(query)
        self.expect_keyword("from")
        query.base_table, query.base_alias = self._parse_table_ref()
        while self.accept_keyword("join") or (self.accept_keyword("inner") and self.expect_keyword("join") is None):
            query.joins.append(self._parse_join())
        if self.accept_keyword("where"):
            query.predicates.append(self._parse_predicate())
            while self.accept_keyword("and"):
                query.predicates.append(self._parse_predicate())
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            query.group_by.append(self._parse_column_ref())
            while self.accept_punct(","):
                query.group_by.append(self._parse_column_ref())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            query.order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                query.order_by.append(self._parse_order_item())
        if self.accept_keyword("limit"):
            token = self.next()
            if token.kind != "NUMBER":
                raise self._error("LIMIT expects a number")
            query.limit = int(float(token.text))
        if self.peek() is not None and not (self.peek().kind == "PUNCT" and self.peek().text == ";"):
            raise self._error(f"unexpected trailing token {self.peek().text!r}")
        return query

    def _parse_select_list(self, query: SqlQuery) -> None:
        if self.accept_punct("*"):
            query.select_star = True
            return
        query.select_items.append(self._parse_select_item())
        while self.accept_punct(","):
            query.select_items.append(self._parse_select_item())

    def _parse_select_item(self) -> SelectItem:
        token = self.peek()
        if token is not None and token.kind == "IDENT" and token.text.lower() in ("sum", "count", "avg", "min", "max"):
            func = self.next().text.lower()
            if not self.accept_punct("("):
                raise self._error(f"expected '(' after {func.upper()}")
            expression = self._parse_arithmetic()
            if not self.accept_punct(")"):
                raise self._error("expected ')' closing the aggregate")
            alias = None
            if self.accept_keyword("as"):
                alias = self.next().text
            return SelectItem(aggregate=func, expression=expression, alias=alias)
        column = self._parse_column_ref()
        alias = None
        if self.accept_keyword("as"):
            alias = self.next().text
        return SelectItem(column=column, alias=alias)

    def _parse_arithmetic(self):
        node = self._parse_arith_term()
        while True:
            token = self.peek()
            if token is not None and token.kind in ("PUNCT", "OP") and token.text in ("+", "-", "*", "/"):
                op = self.next().text
                right = self._parse_arith_term()
                node = (op, node, right)
            else:
                return node

    def _parse_arith_term(self):
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of expression")
        if token.kind == "PUNCT" and token.text == "(":
            self.next()
            inner = self._parse_arithmetic()
            if not self.accept_punct(")"):
                raise self._error("expected ')'")
            return inner
        if token.kind == "NUMBER":
            return float(self.next().text)
        if token.kind == "IDENT" and token.text.lower() not in _KEYWORDS:
            return self._parse_column_ref()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_table_ref(self) -> tuple[str, str]:
        name_token = self.next()
        if name_token.kind != "IDENT":
            raise self._error("expected a table name")
        table = name_token.text
        alias = table
        nxt = self.peek()
        if nxt is not None and nxt.kind == "IDENT" and nxt.text.lower() not in _KEYWORDS:
            alias = self.next().text
        return table, alias

    def _parse_join(self) -> SqlJoin:
        table, alias = self._parse_table_ref()
        self.expect_keyword("on")
        left = self._parse_column_ref()
        op_token = self.next()
        if op_token.text != "=":
            raise self._error("JOIN conditions must be equality comparisons")
        right = self._parse_column_ref()
        return SqlJoin(table=table, alias=alias, left=left, right=right)

    def _parse_predicate(self) -> SqlPredicate:
        column = self._parse_column_ref()
        op_token = self.next()
        if op_token.kind != "OP":
            raise self._error(f"expected a comparison operator, found {op_token.text!r}")
        op = "!=" if op_token.text == "<>" else op_token.text
        constant = self._parse_constant()
        return SqlPredicate(column=column, op=op, constant=constant)

    def _parse_constant(self) -> SqlConstant:
        token = self.next()
        if token.kind == "NUMBER":
            value = float(token.text)
            if value.is_integer() and "." not in token.text:
                return SqlConstant(int(value), "number")
            return SqlConstant(value, "number")
        if token.kind == "STRING":
            return SqlConstant(token.text[1:-1].replace("''", "'"), "string")
        if token.kind == "IDENT" and token.text.lower() == "date":
            literal = self.next()
            if literal.kind != "STRING":
                raise self._error("DATE expects a quoted 'yyyy-mm-dd' value")
            return SqlConstant(date.fromisoformat(literal.text[1:-1]), "date")
        if token.kind == "IDENT" and token.text.lower() in ("true", "false"):
            return SqlConstant(token.text.lower() == "true", "boolean")
        raise self._error(f"expected a constant, found {token.text!r}")

    def _parse_column_ref(self) -> ColumnRef:
        first = self.next()
        if first.kind != "IDENT":
            raise self._error(f"expected a column name, found {first.text!r}")
        if self.accept_punct("."):
            second = self.next()
            if second.kind != "IDENT":
                raise self._error("expected a column name after '.'")
            return ColumnRef(column=second.text, table=first.text)
        return ColumnRef(column=first.text)

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        elif self.accept_keyword("asc"):
            descending = False
        return OrderItem(column=column, descending=descending)
