"""Execution of the SQL view: translate SQL ASTs onto the RDF engine.

Every table alias in the FROM clause becomes a star pattern over the
corresponding characteristic set; JOIN ... ON conditions over discovered
foreign keys become shared variables (evaluated as RDFjoin when the plan
order allows); WHERE predicates are translated to OID ranges exactly like
SPARQL FILTERs.  The SQL view therefore queries *the same* physical storage
as SPARQL — which is the point of Figure 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Tuple

from ..columnar import QueryCost
from ..cs import Multiplicity
from ..engine import (
    AggregateOp,
    AggregateSpec,
    BinaryOp,
    BindingTable,
    ExecutionContext,
    Expression,
    HashJoinOp,
    LimitOp,
    MaterializedOp,
    NumericConst,
    NumericVar,
    OidRange,
    OrderByOp,
    PatternTerm,
    PhysicalOperator,
    ProjectOp,
    RDFJoinOp,
    RDFScanOp,
    StarPattern,
    StarProperty,
    execute_plan,
)
from ..engine.operators import FilterNotEqualOp
from ..errors import SchemaError
from ..model import Literal
from ..model.terms import XSD_BOOLEAN, XSD_DATE, XSD_DECIMAL, XSD_INTEGER
from .catalog import Catalog, CatalogTable, ID_COLUMN
from .parser import ColumnRef, SelectItem, SqlConstant, SqlQuery, parse_sql


@dataclass
class SqlResult:
    """Result of a SQL execution over the emergent schema.

    ``trace`` carries the run's private :class:`repro.obs.QueryTrace` when
    the query executed with tracing enabled, otherwise ``None``.
    """

    columns: List[str]
    bindings: BindingTable
    cost: QueryCost
    plan: PhysicalOperator
    trace: Optional[object] = None

    def rows(self) -> List[tuple]:
        arrays = [self.bindings.column(name) for name in self.columns]
        return [tuple(array[i].item() for array in arrays) for i in range(self.bindings.num_rows)]

    def decoded_rows(self, context: ExecutionContext) -> List[tuple]:
        out = []
        for row in self.rows():
            decoded = []
            for value in row:
                if isinstance(value, float):
                    decoded.append(value)
                else:
                    decoded.append(context.decoder.python_value(int(value)))
            out.append(tuple(decoded))
        return out

    def __len__(self) -> int:
        return self.bindings.num_rows


class SqlEngine:
    """Parse, plan and execute SQL SELECTs over the emergent relational view."""

    def __init__(self, context: ExecutionContext, catalog: Catalog,
                 use_zone_maps: bool = True) -> None:
        self.context = context
        self.catalog = catalog
        self.use_zone_maps = use_zone_maps

    # -- public API -----------------------------------------------------------------

    def query(self, text: str, tracer=None, active=None) -> SqlResult:
        """Parse, plan and execute one SQL SELECT statement.

        Args:
            text: a SELECT over the catalog's emergent tables (joins over
                discovered foreign keys, WHERE comparisons, GROUP BY,
                ORDER BY, LIMIT).
            tracer: an optional :class:`repro.obs.QueryTrace` recording
                per-operator spans for this run.
            active: an optional :class:`repro.obs.ActiveQuery` registry
                handle carrying row accounting and the cancellation flag.

        Returns:
            A :class:`SqlResult` with the output columns, OID bindings,
            measured cost and the executed physical plan.

        Raises:
            ParseError: when the SQL text cannot be parsed.
            SchemaError: when the query references unknown tables, columns
                or joins without a discovered foreign key.
            QueryCancelledError: when ``active`` was cancelled mid-run.
        """
        parsed = parse_sql(text)
        plan, columns = self._plan(parsed)
        if active is not None:
            active.attach_plan(plan)
        context = self.context.with_observation(tracer=tracer, active=active)
        bindings, cost = execute_plan(plan, context)
        return SqlResult(columns=columns, bindings=bindings, cost=cost,
                         plan=plan, trace=tracer)

    def explain(self, text: str) -> str:
        """Return the indented physical plan of a SQL statement (no run).

        Raises:
            ParseError: when the SQL text cannot be parsed.
            SchemaError: when the query references unknown tables/columns.
        """
        parsed = parse_sql(text)
        plan, _columns = self._plan(parsed)
        return plan.explain()

    # -- planning --------------------------------------------------------------------

    def _plan(self, query: SqlQuery) -> Tuple[PhysicalOperator, List[str]]:
        tables = self._resolve_tables(query)
        referenced = self._referenced_columns(query, tables)
        var_names, unsatisfiable = self._assign_variables(query, tables, referenced)

        output_columns = self._output_columns(query, tables, var_names)
        if unsatisfiable:
            return MaterializedOp(BindingTable.empty(output_columns),
                                  label="empty (unsatisfiable predicate)"), output_columns

        stars = self._build_stars(query, tables, referenced, var_names)
        root = self._combine_stars(query, stars, var_names)
        root = self._apply_not_equal_filters(query, root, var_names)
        root = self._apply_modifiers(query, root, tables, var_names, output_columns)
        return root, output_columns

    def _resolve_tables(self, query: SqlQuery) -> Dict[str, CatalogTable]:
        tables: Dict[str, CatalogTable] = {query.base_alias.lower(): self.catalog.table(query.base_table)}
        for join in query.joins:
            tables[join.alias.lower()] = self.catalog.table(join.table)
        return tables

    def _resolve_column(self, ref: ColumnRef, tables: Dict[str, CatalogTable]) -> Tuple[str, CatalogTable]:
        """Return (alias, table) owning a column reference."""
        if ref.table is not None:
            alias = ref.table.lower()
            if alias not in tables:
                raise SchemaError(f"unknown table alias {ref.table!r}")
            table = tables[alias]
            table.column(ref.column)  # raises if missing
            return alias, table
        owners = [(alias, table) for alias, table in tables.items() if table.has_column(ref.column)]
        if not owners:
            raise SchemaError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise SchemaError(f"ambiguous column {ref.column!r}; qualify it with a table alias")
        return owners[0]

    def _referenced_columns(self, query: SqlQuery, tables: Dict[str, CatalogTable]) -> Dict[str, set]:
        """alias -> set of column names used anywhere in the query."""
        referenced: Dict[str, set] = {alias: set() for alias in tables}

        def note(ref: ColumnRef) -> None:
            alias, _table = self._resolve_column(ref, tables)
            referenced[alias].add(ref.column.lower())

        if query.select_star:
            for alias, table in tables.items():
                referenced[alias].update(name.lower() for name in table.column_names())
        for item in query.select_items:
            if item.column is not None:
                note(item.column)
            if item.expression is not None:
                for ref in _expression_columns(item.expression):
                    note(ref)
        for predicate in query.predicates:
            note(predicate.column)
        for join in query.joins:
            note(join.left)
            note(join.right)
        for ref in query.group_by:
            note(ref)
        for item in query.order_by:
            if any(item.column.column == si.output_name() for si in query.select_items):
                continue  # ordering by an aggregate alias
            note(item.column)
        return referenced

    def _assign_variables(self, query: SqlQuery, tables: Dict[str, CatalogTable],
                          referenced: Dict[str, set]) -> Tuple[Dict[Tuple[str, str], str], bool]:
        """Assign one engine variable name per (alias, column); unify join columns."""
        var_names: Dict[Tuple[str, str], str] = {}
        for alias, columns in referenced.items():
            var_names[(alias, ID_COLUMN)] = f"{alias}__{ID_COLUMN}"
            for column in columns:
                var_names[(alias, column)] = f"{alias}__{column}"
        # unify join equality columns into a single variable
        for join in query.joins:
            left_alias, _ = self._resolve_column(join.left, tables)
            right_alias, _ = self._resolve_column(join.right, tables)
            left_key = (left_alias, join.left.column.lower())
            right_key = (right_alias, join.right.column.lower())
            unified = var_names[left_key]
            # prefer the subject variable when one side is the id column
            if join.right.column.lower() == ID_COLUMN:
                unified = var_names[right_key]
            elif join.left.column.lower() == ID_COLUMN:
                unified = var_names[left_key]
            var_names[left_key] = unified
            var_names[right_key] = unified
        return var_names, False

    def _build_stars(self, query: SqlQuery, tables: Dict[str, CatalogTable],
                     referenced: Dict[str, set],
                     var_names: Dict[Tuple[str, str], str]) -> Dict[str, StarPattern]:
        constraints = self._predicate_ranges(query, tables, var_names)
        stars: Dict[str, StarPattern] = {}
        for alias, table in tables.items():
            subject_var = var_names[(alias, ID_COLUMN)]
            properties: List[StarProperty] = []
            columns = set(referenced[alias]) - {ID_COLUMN}
            if not columns:
                columns = {self._anchor_column(table)}
            for column_name in sorted(columns):
                column = table.column(column_name)
                if column.predicate_oid is None:
                    continue
                var = var_names[(alias, column_name)]
                oid_range = constraints.get(var)
                term = PatternTerm.variable(var)
                spec = self.catalog.schema.tables[table.cs_id].properties.get(column.predicate_oid)
                required = spec is not None and spec.multiplicity is Multiplicity.EXACTLY_ONE
                # With pending writes the schema's multiplicity statistics are
                # stale (compaction refreshes them): a delete may have punched a
                # hole into a nominally 1..1 column.  Treat unpinned columns as
                # nullable so answers agree before and after compact().
                if self.context.has_pending_delta():
                    required = False
                # a WHERE predicate on the column implies the value must exist
                if oid_range is not None:
                    required = True
                properties.append(StarProperty(predicate_oid=column.predicate_oid, object_term=term,
                                               oid_range=oid_range, required=required))
            subject_range = constraints.get(subject_var)
            stars[alias] = StarPattern(subject_var=subject_var, properties=properties,
                                       subject_range=subject_range)
        if (self.use_zone_maps and self.context.has_clustered_store()
                and not self.context.has_pending_delta()):
            # zone-map-derived subject ranges describe base columns only; they
            # could exclude pending-delta rows, so push-down pauses until the
            # next compaction (mirrors the SPARQL planner's gate)
            self._push_ranges_across_joins(query, tables, var_names, stars)
        return stars

    def _anchor_column(self, table: CatalogTable) -> str:
        """Column used to enumerate a table's rows when none is referenced."""
        schema_table = self.catalog.schema.tables[table.cs_id]
        best: Optional[str] = None
        for column in table.columns:
            if column.predicate_oid is None:
                continue
            spec = schema_table.properties.get(column.predicate_oid)
            if spec is not None and spec.multiplicity is Multiplicity.EXACTLY_ONE:
                return column.name.lower()
            if best is None:
                best = column.name.lower()
        if best is None:
            raise SchemaError(f"table {table.name!r} has no usable columns")
        return best

    def _predicate_ranges(self, query: SqlQuery, tables: Dict[str, CatalogTable],
                          var_names: Dict[Tuple[str, str], str]) -> Dict[str, OidRange]:
        ranges: Dict[str, OidRange] = {}
        for predicate in query.predicates:
            if predicate.op == "!=":
                continue  # handled as a post-filter
            alias, _table = self._resolve_column(predicate.column, tables)
            var = var_names[(alias, predicate.column.column.lower())]
            literal = _constant_to_literal(predicate.constant)
            bounds = self._comparison_bounds(predicate.op, literal)
            if bounds is None:
                ranges[var] = OidRange(low=1, high=0)  # empty
                continue
            current = ranges.get(var, OidRange())
            ranges[var] = current.intersect(bounds)
        return ranges

    def _comparison_bounds(self, op: str, literal: Literal) -> Optional[OidRange]:
        encoder = self.context.encoder
        if op == "=":
            return encoder.literal_range(literal, literal, True, True)
        if op in (">", ">="):
            return encoder.literal_range(literal, None, op == ">=", True)
        if op in ("<", "<="):
            return encoder.literal_range(None, literal, True, op == "<=")
        return OidRange()

    def _push_ranges_across_joins(self, query: SqlQuery, tables: Dict[str, CatalogTable],
                                  var_names: Dict[Tuple[str, str], str],
                                  stars: Dict[str, StarPattern]) -> None:
        """Derive subject ranges from sub-ordered columns (zone-map push-down)."""
        from ..engine import subject_range_for_property_range

        store = self.context.clustered_store
        if store is None:
            return
        for alias, star in stars.items():
            table = tables[alias]
            try:
                block = store.block(table.cs_id)
            except Exception:  # noqa: BLE001 - block may not exist for tiny tables
                continue
            for prop in star.properties:
                if prop.oid_range is None or prop.oid_range.is_unbounded():
                    continue
                derived = subject_range_for_property_range(block, prop.predicate_oid, prop.oid_range)
                if derived is not None:
                    star.subject_range = derived if star.subject_range is None \
                        else star.subject_range.intersect(derived)

    def _combine_stars(self, query: SqlQuery, stars: Dict[str, StarPattern],
                       var_names: Dict[Tuple[str, str], str]) -> PhysicalOperator:
        ordered_aliases = [query.base_alias.lower()] + [join.alias.lower() for join in query.joins]
        # start from the most constrained star for a selective pipeline
        ordered_aliases.sort(key=lambda alias: -_star_constraint_score(stars[alias]))
        root: Optional[PhysicalOperator] = None
        planned_vars: set[str] = set()
        for alias in ordered_aliases:
            star = stars[alias]
            scan: PhysicalOperator
            if root is None:
                root = RDFScanOp(star, use_zone_maps=self.use_zone_maps)
            elif star.subject_var in planned_vars:
                root = RDFJoinOp(root, star, use_zone_maps=self.use_zone_maps)
            else:
                scan = RDFScanOp(star, use_zone_maps=self.use_zone_maps)
                shared = sorted(planned_vars & set(star.output_variables()))
                root = HashJoinOp(root, scan, join_vars=shared or None)
            planned_vars.update(star.output_variables())
        assert root is not None
        return root

    def _apply_not_equal_filters(self, query: SqlQuery, root: PhysicalOperator,
                                 var_names: Dict[Tuple[str, str], str]) -> PhysicalOperator:
        for predicate in query.predicates:
            if predicate.op != "!=":
                continue
            alias = predicate.column.table.lower() if predicate.column.table else None
            key = None
            for (a, c), var in var_names.items():
                if c == predicate.column.column.lower() and (alias is None or a == alias):
                    key = var
                    break
            if key is None:
                continue
            literal = _constant_to_literal(predicate.constant)
            oid = self.context.encoder.term_oid(literal)
            if oid is not None:
                root = FilterNotEqualOp(root, key, oid)
        return root

    def _output_columns(self, query: SqlQuery, tables: Dict[str, CatalogTable],
                        var_names: Dict[Tuple[str, str], str]) -> List[str]:
        if query.select_star:
            names = []
            for alias in [query.base_alias.lower()] + [j.alias.lower() for j in query.joins]:
                for column in tables[alias].columns:
                    names.append(var_names.get((alias, column.name.lower()), f"{alias}__{column.name.lower()}"))
            return names
        return [item.output_name() for item in query.select_items]

    def _apply_modifiers(self, query: SqlQuery, root: PhysicalOperator,
                         tables: Dict[str, CatalogTable],
                         var_names: Dict[Tuple[str, str], str],
                         output_columns: List[str]) -> PhysicalOperator:
        rename: Dict[str, str] = {}

        def var_of(ref: ColumnRef) -> str:
            alias, _table = self._resolve_column(ref, tables)
            return var_names[(alias, ref.column.lower())]

        if query.has_aggregates():
            group_vars = [var_of(ref) for ref in query.group_by]
            aggregates = []
            plain_items: List[Tuple[SelectItem, str]] = []
            for item in query.select_items:
                if item.aggregate:
                    aggregates.append(AggregateSpec(
                        func=item.aggregate,
                        expression=_expression_to_engine(item.expression, var_of),
                        alias=item.output_name(),
                    ))
                elif item.column is not None:
                    plain_items.append((item, var_of(item.column)))
            root = AggregateOp(root, group_vars=group_vars, aggregates=aggregates)
            for item, var in plain_items:
                rename[var] = item.output_name()
        else:
            for item in query.select_items:
                if item.column is not None:
                    rename[var_of(item.column)] = item.output_name()

        if rename:
            root = _RenameOp(root, rename)

        if query.order_by:
            keys = []
            for order in query.order_by:
                name = order.column.column
                if any(name == item.output_name() for item in query.select_items):
                    keys.append((name, order.descending))
                else:
                    keys.append((rename.get(var_of(order.column), var_of(order.column)), order.descending))
            root = OrderByOp(root, keys)
        if query.limit is not None:
            root = LimitOp(root, query.limit)
        if not query.select_star:
            root = ProjectOp(root, output_columns)
        return root


class _RenameOp(PhysicalOperator):
    """Rename binding columns to their SQL output names."""

    def __init__(self, child: PhysicalOperator, mapping: Dict[str, str]) -> None:
        self.child = child
        self.mapping = mapping

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(f"{old}->{new}" for old, new in self.mapping.items())
        return f"Rename[{rendered}]"

    def _execute(self, context: ExecutionContext) -> BindingTable:
        context.tracker.operator_invocations += 1
        return self.child.execute(context).rename(self.mapping)


# -- helpers --------------------------------------------------------------------------------


def _star_constraint_score(star: StarPattern) -> int:
    score = len(star.properties)
    for prop in star.properties:
        if not prop.object_term.is_variable:
            score += 30
        if prop.oid_range is not None and not prop.oid_range.is_unbounded():
            score += 20
    if star.subject_range is not None and not star.subject_range.is_unbounded():
        score += 20
    return score


def _constant_to_literal(constant: SqlConstant) -> Literal:
    value = constant.value
    if constant.kind == "number":
        if isinstance(value, int):
            return Literal(str(value), datatype=XSD_INTEGER)
        return Literal(repr(float(value)), datatype=XSD_DECIMAL)
    if constant.kind == "date":
        assert isinstance(value, date)
        return Literal(value.isoformat(), datatype=XSD_DATE)
    if constant.kind == "boolean":
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    return Literal(str(value))


def _expression_columns(node: object) -> List[ColumnRef]:
    out: List[ColumnRef] = []

    def walk(item: object) -> None:
        if isinstance(item, ColumnRef):
            out.append(item)
        elif isinstance(item, tuple):
            _op, left, right = item
            walk(left)
            walk(right)

    walk(node)
    return out


def _expression_to_engine(node: object, var_of) -> Expression:
    if isinstance(node, ColumnRef):
        return NumericVar(var_of(node))
    if isinstance(node, (int, float)):
        return NumericConst(float(node))
    if isinstance(node, tuple):
        op, left, right = node
        return BinaryOp(op, _expression_to_engine(left, var_of), _expression_to_engine(right, var_of))
    raise SchemaError(f"unsupported expression node {node!r}")
