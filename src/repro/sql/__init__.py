"""SQL view over the emergent relational schema."""

from .catalog import Catalog, CatalogColumn, CatalogTable, ID_COLUMN
from .engine import SqlEngine, SqlResult
from .parser import ColumnRef, SelectItem, SqlConstant, SqlJoin, SqlPredicate, SqlQuery, parse_sql

__all__ = [
    "Catalog",
    "CatalogColumn",
    "CatalogTable",
    "ColumnRef",
    "ID_COLUMN",
    "SelectItem",
    "SqlConstant",
    "SqlEngine",
    "SqlJoin",
    "SqlPredicate",
    "SqlQuery",
    "SqlResult",
    "parse_sql",
]
