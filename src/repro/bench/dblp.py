"""DBLP-like RDF generator (the data of the paper's Figure 2).

Generates a small bibliographic graph with the structure Figure 2 shows:

* ``inproceedings`` entities with ``type``, ``creator`` (1..2 values),
  ``title`` and ``partOf`` (a foreign key to a conference);
* ``conference`` / ``proceedings`` entities with ``type``, ``title`` and
  ``issued``;
* ``person`` entities with ``type`` and ``name``;
* configurable *irregularities*: web-page subjects with ad-hoc properties,
  missing titles, stray ``seeAlso`` triples and duplicated creators — the
  kind of dirtiness the generalization pass has to absorb.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..model import IRI, Literal, Triple
from ..model.terms import RDF_TYPE

DBLP = "http://example.org/dblp/"
VOC = DBLP + "schema/"

CLASS_INPROCEEDINGS = VOC + "Inproceedings"
CLASS_CONFERENCE = VOC + "Conference"
CLASS_PROCEEDINGS = VOC + "Proceedings"
CLASS_PERSON = VOC + "Person"

P_CREATOR = VOC + "creator"
P_TITLE = VOC + "title"
P_PART_OF = VOC + "partOf"
P_ISSUED = VOC + "issued"
P_NAME = VOC + "name"
P_SEE_ALSO = VOC + "seeAlso"
P_HOMEPAGE = VOC + "homepage"
P_CONTENT = VOC + "content"


@dataclass(frozen=True)
class DblpConfig:
    """Size and dirtiness knobs of the generator."""

    papers: int = 200
    conferences: int = 12
    authors: int = 80
    seed: int = 7
    irregularity: float = 0.05
    """Fraction of papers that get an extra ad-hoc property, and of web-page
    subjects relative to the paper count."""
    missing_title_fraction: float = 0.02
    multi_author_fraction: float = 0.4


def generate_dblp(config: DblpConfig | None = None) -> List[Triple]:
    """Generate the DBLP-like triple set."""
    config = config or DblpConfig()
    rng = random.Random(config.seed)
    triples: List[Triple] = []
    type_pred = IRI(RDF_TYPE)

    authors = [IRI(f"{DBLP}author/{i}") for i in range(config.authors)]
    for i, author in enumerate(authors):
        triples.append(Triple(author, type_pred, IRI(CLASS_PERSON)))
        triples.append(Triple(author, IRI(P_NAME), Literal(f"Author {i}")))

    conferences = [IRI(f"{DBLP}conf/{i}") for i in range(config.conferences)]
    for i, conference in enumerate(conferences):
        cls = CLASS_CONFERENCE if i % 2 == 0 else CLASS_PROCEEDINGS
        triples.append(Triple(conference, type_pred, IRI(cls)))
        triples.append(Triple(conference, IRI(P_TITLE), Literal(f"conference{i}")))
        triples.append(Triple(conference, IRI(P_ISSUED), Literal(str(2000 + i % 14),
                                                                 datatype="http://www.w3.org/2001/XMLSchema#integer")))

    for i in range(config.papers):
        paper = IRI(f"{DBLP}inproc/{i}")
        triples.append(Triple(paper, type_pred, IRI(CLASS_INPROCEEDINGS)))
        triples.append(Triple(paper, IRI(P_CREATOR), rng.choice(authors)))
        if rng.random() < config.multi_author_fraction:
            triples.append(Triple(paper, IRI(P_CREATOR), rng.choice(authors)))
        if rng.random() >= config.missing_title_fraction:
            triples.append(Triple(paper, IRI(P_TITLE), Literal(f"Paper title {i}")))
        triples.append(Triple(paper, IRI(P_PART_OF), rng.choice(conferences)))
        if rng.random() < config.irregularity:
            triples.append(Triple(paper, IRI(P_SEE_ALSO), IRI(f"{DBLP}webpage/{i}")))

    webpage_count = int(config.papers * config.irregularity)
    for i in range(webpage_count):
        page = IRI(f"{DBLP}webpage/{i}")
        triples.append(Triple(page, IRI(P_HOMEPAGE), Literal("index.php")))
        if rng.random() < 0.5:
            triples.append(Triple(page, IRI(P_CONTENT), Literal("content.php")))

    return triples


def figure2_example() -> List[Triple]:
    """The literal Figure 2 example graph: three papers, two venues, one
    irregular web-page subject."""
    type_pred = IRI(RDF_TYPE)
    inproc = [IRI(f"{DBLP}inproc{i}") for i in (1, 2, 3)]
    conf1, conf2 = IRI(f"{DBLP}conf1"), IRI(f"{DBLP}conf2")
    authors = {name: IRI(f"{DBLP}{name}") for name in ("author2", "author3", "author4")}
    webpage = IRI(f"{DBLP}webpage1")
    triples = [
        Triple(inproc[0], type_pred, IRI(CLASS_INPROCEEDINGS)),
        Triple(inproc[0], IRI(P_CREATOR), authors["author3"]),
        Triple(inproc[0], IRI(P_CREATOR), authors["author4"]),
        Triple(inproc[0], IRI(P_TITLE), Literal("AAA")),
        Triple(inproc[0], IRI(P_PART_OF), conf1),
        Triple(inproc[1], type_pred, IRI(CLASS_INPROCEEDINGS)),
        Triple(inproc[1], IRI(P_CREATOR), authors["author2"]),
        Triple(inproc[1], IRI(P_TITLE), Literal("BBB")),
        Triple(inproc[1], IRI(P_PART_OF), conf1),
        Triple(inproc[2], type_pred, IRI(CLASS_INPROCEEDINGS)),
        Triple(inproc[2], IRI(P_CREATOR), authors["author3"]),
        Triple(inproc[2], IRI(P_TITLE), Literal("CCC")),
        Triple(inproc[2], IRI(P_PART_OF), conf2),
        Triple(conf1, type_pred, IRI(CLASS_CONFERENCE)),
        Triple(conf1, IRI(P_TITLE), Literal("conference1")),
        Triple(conf1, IRI(P_ISSUED), Literal("2010")),
        Triple(conf2, type_pred, IRI(CLASS_PROCEEDINGS)),
        Triple(conf2, IRI(P_TITLE), Literal("conference2")),
        Triple(conf2, IRI(P_ISSUED), Literal("2011")),
        # irregular part: a web page hanging off conf2 plus its own ad-hoc triples
        Triple(conf2, IRI(P_SEE_ALSO), webpage),
        Triple(webpage, IRI(P_HOMEPAGE), Literal("index.php")),
        Triple(webpage, IRI(P_CONTENT), Literal("content.php")),
    ]
    return triples
