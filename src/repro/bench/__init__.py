"""Benchmark substrate: workload generators, query texts and the Table I harness."""

from .dblp import DblpConfig, figure2_example, generate_dblp
from .dirty import DirtyConfig, DirtyDataset, generate_dirty
from .harness import (
    BENCH_SCHEMA_VERSION,
    BenchmarkMeasurement,
    BenchReporter,
    TableOneConfig,
    TableOneHarness,
    TableOneResult,
    collect_environment,
    format_table_one,
    git_revision,
)
from .queries import (
    q1_sparql,
    q3_sparql,
    q3_sql,
    q6_sparql,
    q6_sql,
    star_fk_hop_sparql,
    star_lookup_sparql,
)
from .rdfh import generate_rdfh_triples, sub_order_keys, tpch_to_triples
from .tpch import (
    TpchConfig,
    TpchData,
    generate_tpch,
    iter_reference_q3,
    iter_reference_q6,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchReporter",
    "BenchmarkMeasurement",
    "DblpConfig",
    "DirtyConfig",
    "DirtyDataset",
    "TableOneConfig",
    "TableOneHarness",
    "TableOneResult",
    "TpchConfig",
    "TpchData",
    "collect_environment",
    "figure2_example",
    "format_table_one",
    "generate_dblp",
    "generate_dirty",
    "generate_rdfh_triples",
    "generate_tpch",
    "git_revision",
    "iter_reference_q3",
    "iter_reference_q6",
    "q1_sparql",
    "q3_sparql",
    "q3_sql",
    "q6_sparql",
    "q6_sql",
    "star_fk_hop_sparql",
    "star_lookup_sparql",
    "sub_order_keys",
    "tpch_to_triples",
]
