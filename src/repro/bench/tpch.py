"""A deterministic TPC-H-lite row generator (the ``dbgen`` substitute).

The paper evaluates on RDF-H, a 1:1 mapping of the TPC-H benchmark to RDF.
We cannot ship the original 10 GB data set, so this module generates the
relevant TPC-H tables synthetically with the properties the experiments
rely on:

* CUSTOMER with a ``mktsegment`` drawn from the five standard segments;
* ORDERS with an ``orderdate`` uniform over 1992-01-01 .. 1998-08-02 and a
  foreign key to CUSTOMER;
* LINEITEM (1-7 per order) with ``shipdate = orderdate + 1..121 days`` — the
  strong order/ship date correlation that the zone-map push-down exploits —
  plus ``quantity``, ``extendedprice``, ``discount``, ``tax``, ``returnflag``
  and ``shippriority``-relevant attributes.

The generator is seeded and therefore fully reproducible; scale factor 1.0
corresponds to 150 000 customers / 1.5 M orders / ~6 M lineitems like real
TPC-H, and fractional scale factors shrink everything proportionally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Iterator, List

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
RETURN_FLAGS = ("R", "A", "N")
LINE_STATUSES = ("O", "F")
NATIONS = ("FRANCE", "GERMANY", "JAPAN", "BRAZIL", "CANADA", "KENYA", "PERU",
           "CHINA", "INDIA", "ETHIOPIA", "ARGENTINA", "UNITED STATES")

ORDER_DATE_START = date(1992, 1, 1)
ORDER_DATE_END = date(1998, 8, 2)


@dataclass(frozen=True)
class Customer:
    custkey: int
    name: str
    mktsegment: str
    nation: str
    acctbal: float


@dataclass(frozen=True)
class Order:
    orderkey: int
    custkey: int
    orderdate: date
    orderstatus: str
    orderpriority: str
    shippriority: int
    totalprice: float


@dataclass(frozen=True)
class LineItem:
    orderkey: int
    linenumber: int
    quantity: int
    extendedprice: float
    discount: float
    tax: float
    shipdate: date
    returnflag: str
    linestatus: str


@dataclass
class TpchData:
    """The generated tables."""

    customers: List[Customer]
    orders: List[Order]
    lineitems: List[LineItem]
    scale_factor: float

    def row_counts(self) -> dict[str, int]:
        return {
            "customer": len(self.customers),
            "orders": len(self.orders),
            "lineitem": len(self.lineitems),
        }


@dataclass(frozen=True)
class TpchConfig:
    """Generator configuration."""

    scale_factor: float = 0.01
    seed: int = 20130408  # ICDE 2013 conference date
    customers_per_sf: int = 150_000
    orders_per_customer: int = 10
    max_lineitems_per_order: int = 7


def generate_tpch(config: TpchConfig | None = None) -> TpchData:
    """Generate the CUSTOMER, ORDERS and LINEITEM tables deterministically."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    customer_count = max(1, int(config.customers_per_sf * config.scale_factor))

    customers = [_make_customer(key, rng) for key in range(1, customer_count + 1)]

    orders: List[Order] = []
    lineitems: List[LineItem] = []
    orderkey = 0
    date_span = (ORDER_DATE_END - ORDER_DATE_START).days
    for customer in customers:
        order_count = rng.randint(max(1, config.orders_per_customer - 5),
                                  config.orders_per_customer + 5)
        for _ in range(order_count):
            orderkey += 1
            orderdate = ORDER_DATE_START + timedelta(days=rng.randint(0, date_span))
            line_count = rng.randint(1, config.max_lineitems_per_order)
            order_lines = [_make_lineitem(orderkey, line_number, orderdate, rng)
                           for line_number in range(1, line_count + 1)]
            totalprice = round(sum(line.extendedprice * (1 + line.tax) * (1 - line.discount)
                                   for line in order_lines), 2)
            orders.append(Order(
                orderkey=orderkey,
                custkey=customer.custkey,
                orderdate=orderdate,
                orderstatus=rng.choice(("O", "F", "P")),
                orderpriority=rng.choice(ORDER_PRIORITIES),
                shippriority=0,
                totalprice=totalprice,
            ))
            lineitems.extend(order_lines)

    return TpchData(customers=customers, orders=orders, lineitems=lineitems,
                    scale_factor=config.scale_factor)


def _make_customer(custkey: int, rng: random.Random) -> Customer:
    return Customer(
        custkey=custkey,
        name=f"Customer#{custkey:09d}",
        mktsegment=rng.choice(MKT_SEGMENTS),
        nation=rng.choice(NATIONS),
        acctbal=round(rng.uniform(-999.99, 9999.99), 2),
    )


def _make_lineitem(orderkey: int, linenumber: int, orderdate: date,
                   rng: random.Random) -> LineItem:
    quantity = rng.randint(1, 50)
    extendedprice = round(quantity * rng.uniform(900.0, 105_000.0) / 50.0, 2)
    return LineItem(
        orderkey=orderkey,
        linenumber=linenumber,
        quantity=quantity,
        extendedprice=extendedprice,
        discount=round(rng.randint(0, 10) / 100.0, 2),
        tax=round(rng.randint(0, 8) / 100.0, 2),
        shipdate=orderdate + timedelta(days=rng.randint(1, 121)),
        returnflag=rng.choice(RETURN_FLAGS),
        linestatus=rng.choice(LINE_STATUSES),
    )


def iter_reference_q6(data: TpchData, ship_year: int = 1994, discount: float = 0.06,
                      quantity_limit: int = 24) -> float:
    """Reference (pure Python) answer for TPC-H Q6 over the generated rows.

    Used by tests to validate the SPARQL/SQL pipelines end to end.
    """
    low = date(ship_year, 1, 1)
    high = date(ship_year + 1, 1, 1)
    revenue = 0.0
    for line in data.lineitems:
        if not (low <= line.shipdate < high):
            continue
        if not (discount - 0.011 <= line.discount <= discount + 0.011):
            continue
        if line.quantity >= quantity_limit:
            continue
        revenue += line.extendedprice * line.discount
    return revenue


def iter_reference_q3(data: TpchData, segment: str = "BUILDING",
                      cutoff: date = date(1995, 3, 15), limit: int = 10) -> List[tuple]:
    """Reference answer for TPC-H Q3: (orderkey, revenue, orderdate) rows."""
    segment_customers = {c.custkey for c in data.customers if c.mktsegment == segment}
    eligible_orders = {o.orderkey: o for o in data.orders
                       if o.custkey in segment_customers and o.orderdate < cutoff}
    revenue: dict[int, float] = {}
    for line in data.lineitems:
        if line.orderkey not in eligible_orders or line.shipdate <= cutoff:
            continue
        revenue[line.orderkey] = revenue.get(line.orderkey, 0.0) + \
            line.extendedprice * (1 - line.discount)
    rows = [(orderkey, rev, eligible_orders[orderkey].orderdate)
            for orderkey, rev in revenue.items()]
    rows.sort(key=lambda row: (-row[1], row[2], row[0]))
    return rows[:limit]


def iter_lineitems_by_order(data: TpchData) -> Iterator[tuple[Order, List[LineItem]]]:
    """Group lineitems under their order (orders without lines are skipped)."""
    by_order: dict[int, List[LineItem]] = {}
    for line in data.lineitems:
        by_order.setdefault(line.orderkey, []).append(line)
    for order in data.orders:
        if order.orderkey in by_order:
            yield order, by_order[order.orderkey]
