"""Benchmark harness reproducing the paper's Table I.

Table I of the paper measures RDF-H (SF=10) queries Q3 and Q6 on
MonetDB+HSP under six configurations — {Default, RDFscan/RDFjoin} plan
schemes × {ParseOrder, Clustered} subject ordering × zone maps on/off — each
cold and hot.  This harness rebuilds the same grid on the Python substrate:

* *ParseOrder* stores load the RDF-H triples and build only the exhaustive
  permutation indexes (no subject clustering);
* *Clustered* stores additionally run schema discovery, subject clustering
  (LINEITEM sub-ordered on ``l_shipdate``, ORDERS on ``o_orderdate``) and
  build the CS-clustered store with zone maps;
* *Cold* runs start from an empty buffer pool, *Hot* runs from a fully
  warmed one;
* both wall-clock seconds and the buffer-pool cost model's simulated seconds
  are reported — the simulated numbers are the hardware-independent ones to
  compare against the paper's relative factors.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core import RDFStore, StoreConfig
from ..errors import BenchmarkError
from ..sparql import DEFAULT_SCHEME, PlannerOptions, RDFSCAN_SCHEME
from .queries import q3_sparql, q6_sparql
from .rdfh import generate_rdfh_triples, sub_order_keys

SCHEME_LABELS = {DEFAULT_SCHEME: "Default", RDFSCAN_SCHEME: "RDFscan/RDFjoin"}


@dataclass(frozen=True)
class TableOneConfig:
    """Harness configuration."""

    scale_factor: float = 0.005
    seed: int = 20130408
    queries: tuple = ("Q3", "Q6")
    repeat_hot: int = 1


@dataclass
class BenchmarkMeasurement:
    """One cell of the grid: a query under one configuration and cache state."""

    query: str
    scheme: str
    ordering: str
    zone_maps: bool
    cache_state: str
    wall_seconds: float
    simulated_seconds: float
    page_reads: int
    page_hits: int
    join_operations: int
    result_rows: int

    def config_label(self) -> str:
        zone = "Yes" if self.zone_maps else "No"
        return f"{SCHEME_LABELS[self.scheme]:>16} | {self.ordering:>10} | ZM {zone:>3}"


@dataclass
class TableOneResult:
    """All measurements plus the store-build metadata."""

    measurements: List[BenchmarkMeasurement] = field(default_factory=list)
    build_seconds: Dict[str, float] = field(default_factory=dict)
    triple_count: int = 0
    scale_factor: float = 0.0

    def cell(self, query: str, scheme: str, ordering: str, zone_maps: bool,
             cache_state: str) -> Optional[BenchmarkMeasurement]:
        for m in self.measurements:
            if (m.query == query and m.scheme == scheme and m.ordering == ordering
                    and m.zone_maps == zone_maps and m.cache_state == cache_state):
                return m
        return None

    def speedup(self, query: str, metric: str = "simulated_seconds") -> float:
        """Fully-optimized vs baseline factor for one query (cold)."""
        baseline = self.cell(query, DEFAULT_SCHEME, "ParseOrder", False, "cold")
        best = self.cell(query, RDFSCAN_SCHEME, "Clustered", True, "cold")
        if best is None:
            best = self.cell(query, RDFSCAN_SCHEME, "Clustered", False, "cold")
        if baseline is None or best is None:
            raise BenchmarkError("missing measurements for speedup computation")
        denominator = getattr(best, metric)
        if denominator == 0:
            return float("inf")
        return getattr(baseline, metric) / denominator


class TableOneHarness:
    """Builds the RDF-H stores and runs the Table I grid."""

    CONFIGURATIONS = (
        (DEFAULT_SCHEME, "ParseOrder", False),
        (DEFAULT_SCHEME, "Clustered", False),
        (DEFAULT_SCHEME, "Clustered", True),
        (RDFSCAN_SCHEME, "ParseOrder", False),
        (RDFSCAN_SCHEME, "Clustered", False),
        (RDFSCAN_SCHEME, "Clustered", True),
    )

    def __init__(self, config: TableOneConfig | None = None,
                 store_config: Optional[StoreConfig] = None) -> None:
        self.config = config or TableOneConfig()
        self.store_config = store_config
        self._triples = None
        self._stores: Dict[str, RDFStore] = {}
        self.build_seconds: Dict[str, float] = {}

    # -- store construction ------------------------------------------------------

    def triples(self):
        if self._triples is None:
            self._triples = generate_rdfh_triples(scale_factor=self.config.scale_factor,
                                                  seed=self.config.seed)
        return self._triples

    def store(self, ordering: str) -> RDFStore:
        """Build (and cache) the store for one subject ordering."""
        if ordering not in ("ParseOrder", "Clustered"):
            raise BenchmarkError(f"unknown ordering {ordering!r}")
        if ordering not in self._stores:
            started = time.perf_counter()
            if ordering == "Clustered":
                store = RDFStore.build(self.triples(), config=self.store_config,
                                       sort_key_names=sub_order_keys(), cluster=True)
            else:
                store = RDFStore.build(self.triples(), config=self.store_config, cluster=False)
            self.build_seconds[ordering] = time.perf_counter() - started
            self._stores[ordering] = store
        return self._stores[ordering]

    # -- query texts -------------------------------------------------------------------

    def query_text(self, query: str) -> str:
        if query.upper() == "Q3":
            return q3_sparql()
        if query.upper() == "Q6":
            return q6_sparql()
        raise BenchmarkError(f"unknown query {query!r}; expected Q3 or Q6")

    # -- execution -----------------------------------------------------------------------

    def run_cell(self, query: str, scheme: str, ordering: str, zone_maps: bool,
                 cache_state: str) -> BenchmarkMeasurement:
        """Run one query under one configuration and cache state."""
        store = self.store(ordering)
        options = PlannerOptions(scheme=scheme, use_zone_maps=zone_maps)
        text = self.query_text(query)
        if cache_state == "cold":
            store.reset_cold()
        elif cache_state == "hot":
            store.warm()
        else:
            raise BenchmarkError(f"unknown cache state {cache_state!r}")
        result = store.sparql(text, options)
        return BenchmarkMeasurement(
            query=query.upper(),
            scheme=scheme,
            ordering=ordering,
            zone_maps=zone_maps,
            cache_state=cache_state,
            wall_seconds=result.cost.wall_seconds,
            simulated_seconds=result.cost.simulated_seconds,
            page_reads=result.cost.counters.get("page_reads", 0),
            page_hits=result.cost.counters.get("page_hits", 0),
            join_operations=result.cost.counters.get("join_operations", 0),
            result_rows=len(result),
        )

    def run(self, queries: Optional[List[str]] = None) -> TableOneResult:
        """Run the full grid and return every measurement."""
        queries = [q.upper() for q in (queries or list(self.config.queries))]
        result = TableOneResult(scale_factor=self.config.scale_factor)
        for scheme, ordering, zone_maps in self.CONFIGURATIONS:
            for query in queries:
                for cache_state in ("cold", "hot"):
                    result.measurements.append(
                        self.run_cell(query, scheme, ordering, zone_maps, cache_state))
        result.build_seconds = dict(self.build_seconds)
        result.triple_count = self.store("Clustered").triple_count()
        return result


def format_table_one(result: TableOneResult, metric: str = "simulated_seconds") -> str:
    """Render the measurement grid in the layout of the paper's Table I."""
    unit = "sim ms" if metric == "simulated_seconds" else "wall ms"
    queries = sorted({m.query for m in result.measurements})
    header_cells = "".join(f" {q} Cold | {q} Hot |" for q in queries)
    lines = [
        f"Table I reproduction — RDF-H SF={result.scale_factor} "
        f"({result.triple_count} triples), times in {unit}",
        f"{'Query Plan':>16} | {'Scheme':>10} | {'ZMaps':>6} |{header_cells}",
        "-" * (42 + 14 * 2 * len(queries)),
    ]
    for scheme, ordering, zone_maps in TableOneHarness.CONFIGURATIONS:
        cells = []
        for query in queries:
            for cache_state in ("cold", "hot"):
                m = result.cell(query, scheme, ordering, zone_maps, cache_state)
                value = getattr(m, metric) * 1e3 if m is not None else float("nan")
                cells.append(f"{value:9.2f}")
        zone = "Yes" if zone_maps else "No"
        lines.append(f"{SCHEME_LABELS[scheme]:>16} | {ordering:>10} | {zone:>6} | " +
                     " | ".join(cells))
    for query in queries:
        try:
            lines.append(f"speedup (cold, {query}): baseline / fully-optimized = "
                         f"{result.speedup(query, metric):.1f}x")
        except BenchmarkError:
            continue
    return "\n".join(lines)


# -- machine-readable benchmark reporting -------------------------------------

BENCH_SCHEMA_VERSION = 1
"""Version of the ``BENCH_<name>.json`` layout written by
:class:`BenchReporter` and consumed by ``tools/bench_compare.py``.  Bump on
any incompatible change to the document structure."""

_DIRECTIONS = ("lower_is_better", "higher_is_better")


def git_revision(default: str = "unknown") -> str:
    """The commit SHA the benchmark ran against.

    Prefers ``GITHUB_SHA`` (exact even on CI's detached checkouts), falls
    back to ``git rev-parse HEAD``, then to ``default`` — a result file must
    never fail to be written because the tree isn't a git checkout.
    """
    sha = os.environ.get("GITHUB_SHA", "").strip()
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return default


def collect_environment(**extra: object) -> Dict[str, object]:
    """Reproducibility metadata stamped into every benchmark result file.

    Interpreter and library versions, platform, and the git SHA; callers
    merge in run parameters (scale factor, batch size, smoke flag, …) via
    keyword arguments.
    """
    env: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_revision(),
    }
    try:
        import numpy
        env["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        env["numpy"] = None
    env.update(extra)
    return env


class BenchReporter:
    """Collects named measurements from one benchmark module and writes both
    artifact kinds: human-readable text (``benchmarks/results/*.txt``, kept
    gitignored) and a schema-versioned machine-readable ``BENCH_<name>.json``
    (the canonical cross-PR artifact ``tools/bench_compare.py`` diffs).

    Every measurement carries its unit, how it was aggregated (``kind`` —
    usually ``median``), how many runs produced it, the spread across those
    runs (max − min), which direction is an improvement, and free-form
    ``extra`` context (join counts, row counts, estimated rows, …).
    """

    def __init__(self, name: str, results_dir: Optional[Path | str] = None,
                 environment: Optional[Dict[str, object]] = None) -> None:
        if not name or "/" in name:
            raise BenchmarkError(f"invalid benchmark name {name!r}")
        self.name = name
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.environment = dict(environment) if environment is not None \
            else collect_environment()
        self.measurements: Dict[str, Dict[str, object]] = {}
        self.created_utc = time.time()

    # -- recording -------------------------------------------------------------

    def record(self, name: str, value: float, unit: str = "seconds",
               kind: str = "value", runs: int = 1,
               spread: Optional[float] = None,
               direction: str = "lower_is_better",
               extra: Optional[Dict[str, object]] = None) -> None:
        """Register one named measurement (re-recording a name overwrites)."""
        if direction not in _DIRECTIONS:
            raise BenchmarkError(
                f"direction must be one of {_DIRECTIONS}, got {direction!r}")
        self.measurements[name] = {
            "value": float(value),
            "unit": unit,
            "kind": kind,
            "runs": int(runs),
            "spread": float(spread) if spread is not None else 0.0,
            "direction": direction,
            "extra": dict(extra or {}),
        }

    def measure(self, name: str, fn: Callable[[], object], repeats: int = 3,
                unit: str = "seconds", direction: str = "lower_is_better",
                extra: Optional[Dict[str, object]] = None) -> float:
        """Time ``fn`` ``repeats`` times and record the median; returns it."""
        if repeats < 1:
            raise BenchmarkError("repeats must be >= 1")
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - started)
        return self.record_timings(name, timings, unit=unit,
                                   direction=direction, extra=extra)

    def record_timings(self, name: str, timings: List[float],
                       unit: str = "seconds",
                       direction: str = "lower_is_better",
                       extra: Optional[Dict[str, object]] = None) -> float:
        """Record a list of repeated timings as median-of-N with spread."""
        if not timings:
            raise BenchmarkError(f"no timings for measurement {name!r}")
        median = statistics.median(timings)
        self.record(name, median, unit=unit, kind="median",
                    runs=len(timings), spread=max(timings) - min(timings),
                    direction=direction, extra=extra)
        return median

    def record_pytest_benchmark(self, name: str, benchmark,
                                extra: Optional[Dict[str, object]] = None) -> None:
        """Adapt a ``pytest-benchmark`` fixture's stats after it has run.

        Merges the fixture's ``extra_info`` into ``extra``.  A no-op when
        the fixture carries no stats (``--benchmark-disable`` runs).
        """
        stats = getattr(getattr(benchmark, "stats", None), "stats", None)
        if stats is None:
            return
        merged = dict(getattr(benchmark, "extra_info", {}) or {})
        merged.update(extra or {})
        self.record(name, stats.median, unit="seconds", kind="median",
                    runs=len(getattr(stats, "data", ())) or 1,
                    spread=stats.max - stats.min, extra=merged)

    # -- artifacts -------------------------------------------------------------

    def write_text(self, filename: str, text: str) -> Optional[Path]:
        """Write a human-readable report into the results directory.

        Returns the path, or ``None`` when the reporter has no results
        directory (JSON-only mode).
        """
        if self.results_dir is None:
            return None
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.results_dir / filename
        if not text.endswith("\n"):
            text += "\n"
        path.write_text(text, encoding="utf-8")
        return path

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "created_utc": self.created_utc,
            "environment": dict(self.environment),
            "measurements": {name: dict(m)
                             for name, m in sorted(self.measurements.items())},
        }

    def write_json(self, out_dir: Path | str) -> Path:
        """Write ``BENCH_<name>.json`` into ``out_dir`` and return the path."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")
        return path
