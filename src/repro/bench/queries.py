"""SPARQL (and SQL-view) texts for the RDF-H workload.

The paper's Table I measures RDF-H Q3 and Q6 (the straight mapping of TPC-H
Q3 and Q6 to SPARQL).  Q1 is included as an extra single-CS aggregation
query used by the ablation benchmarks.
"""

from __future__ import annotations

from datetime import date

from .rdfh import RDFH_VOC

_PREFIXES = f"""PREFIX rdfh: <{RDFH_VOC}>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"""


def q6_sparql(ship_year: int = 1994, discount: float = 0.06, quantity_limit: int = 24) -> str:
    """RDF-H Q6: revenue from discounted small-quantity lineitems of one year."""
    low = date(ship_year, 1, 1).isoformat()
    high = date(ship_year + 1, 1, 1).isoformat()
    return f"""{_PREFIXES}
SELECT (SUM(?extendedprice * ?discount) AS ?revenue)
WHERE {{
  ?l rdfh:l_shipdate ?shipdate .
  ?l rdfh:l_discount ?discount .
  ?l rdfh:l_quantity ?quantity .
  ?l rdfh:l_extendedprice ?extendedprice .
  FILTER(?shipdate >= "{low}"^^xsd:date && ?shipdate < "{high}"^^xsd:date)
  FILTER(?discount >= "{discount - 0.011:.3f}"^^xsd:decimal && ?discount <= "{discount + 0.011:.3f}"^^xsd:decimal)
  FILTER(?quantity < "{quantity_limit}"^^xsd:integer)
}}
"""


def q3_sparql(segment: str = "BUILDING", cutoff: date = date(1995, 3, 15), limit: int = 10) -> str:
    """RDF-H Q3: top unshipped orders of one market segment by potential revenue."""
    cutoff_text = cutoff.isoformat()
    return f"""{_PREFIXES}
SELECT ?order ?orderdate ?shippriority (SUM(?extendedprice * (1 - ?discount)) AS ?revenue)
WHERE {{
  ?customer rdfh:c_mktsegment "{segment}" .
  ?order rdfh:o_custkey ?customer .
  ?order rdfh:o_orderdate ?orderdate .
  ?order rdfh:o_shippriority ?shippriority .
  ?line rdfh:l_orderkey ?order .
  ?line rdfh:l_shipdate ?shipdate .
  ?line rdfh:l_extendedprice ?extendedprice .
  ?line rdfh:l_discount ?discount .
  FILTER(?orderdate < "{cutoff_text}"^^xsd:date)
  FILTER(?shipdate > "{cutoff_text}"^^xsd:date)
}}
GROUP BY ?order ?orderdate ?shippriority
ORDER BY DESC(?revenue) ?orderdate
LIMIT {limit}
"""


def q1_sparql(delivery_cutoff: str = "1998-09-02") -> str:
    """RDF-H Q1 (simplified): per return-flag/status pricing summary."""
    return f"""{_PREFIXES}
SELECT ?returnflag ?linestatus (SUM(?quantity) AS ?sum_qty)
       (SUM(?extendedprice) AS ?sum_base_price)
       (SUM(?extendedprice * (1 - ?discount)) AS ?sum_disc_price)
       (COUNT(?quantity) AS ?count_order)
WHERE {{
  ?l rdfh:l_returnflag ?returnflag .
  ?l rdfh:l_linestatus ?linestatus .
  ?l rdfh:l_quantity ?quantity .
  ?l rdfh:l_extendedprice ?extendedprice .
  ?l rdfh:l_discount ?discount .
  ?l rdfh:l_shipdate ?shipdate .
  FILTER(?shipdate <= "{delivery_cutoff}"^^xsd:date)
}}
GROUP BY ?returnflag ?linestatus
ORDER BY ?returnflag ?linestatus
"""


def star_lookup_sparql(property_count: int = 4) -> str:
    """The Fig. 4(a) style star: N properties of one subject, one constant.

    Used by the plan-shape benchmark to count joins per plan scheme.
    """
    assert 2 <= property_count <= 5
    props = ["l_quantity", "l_extendedprice", "l_discount", "l_tax"][: property_count - 1]
    body = "\n".join(f"  ?l rdfh:{prop} ?o{i} ." for i, prop in enumerate(props, start=1))
    return f"""{_PREFIXES}
SELECT {' '.join(f'?o{i}' for i in range(1, property_count))}
WHERE {{
{body}
  ?l rdfh:l_returnflag "R" .
}}
"""


def star_fk_hop_sparql() -> str:
    """The Fig. 4(b) style query: a star plus one foreign-key hop."""
    return f"""{_PREFIXES}
SELECT ?o1 ?o2 ?o3
WHERE {{
  ?l rdfh:l_quantity ?o1 .
  ?l rdfh:l_extendedprice ?o2 .
  ?l rdfh:l_discount ?o3 .
  ?l rdfh:l_orderkey ?order .
  ?order rdfh:o_orderpriority "1-URGENT" .
}}
"""


def q6_sql(ship_year: int = 1994, discount: float = 0.06, quantity_limit: int = 24) -> str:
    """Q6 phrased against the emergent SQL view (table/column names are the
    labels the discovery pipeline assigns to the RDF-H data)."""
    low = date(ship_year, 1, 1).isoformat()
    high = date(ship_year + 1, 1, 1).isoformat()
    return (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue "
        "FROM Lineitem "
        f"WHERE l_shipdate >= DATE '{low}' AND l_shipdate < DATE '{high}' "
        f"AND l_discount >= {discount - 0.011:.3f} AND l_discount <= {discount + 0.011:.3f} "
        f"AND l_quantity < {quantity_limit}"
    )


def q3_sql(segment: str = "BUILDING", cutoff: str = "1995-03-15", limit: int = 10) -> str:
    """Q3 phrased against the emergent SQL view."""
    return (
        "SELECT o.id AS orderid, o.o_orderdate, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
        "FROM Lineitem l "
        "JOIN Order o ON l.l_orderkey = o.id "
        "JOIN Customer c ON o.o_custkey = c.id "
        f"WHERE c.c_mktsegment = '{segment}' "
        f"AND o.o_orderdate < DATE '{cutoff}' AND l.l_shipdate > DATE '{cutoff}' "
        "GROUP BY o.id, o.o_orderdate "
        "ORDER BY revenue DESC "
        f"LIMIT {limit}"
    )
