"""RDF-H: the 1:1 mapping of TPC-H to RDF used by the paper's evaluation.

Every row becomes one subject IRI; every column one triple.  Foreign keys
become object properties (``rdfh:l_orderkey`` points at the ORDERS subject,
``rdfh:o_custkey`` at the CUSTOMER subject), which is what lets the schema
discovery recover the TPC-H foreign-key graph and the clustered store
sub-order LINEITEM on ``shipdate`` / ORDERS on ``orderdate``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..model import IRI, Literal, Triple, literal_from_python
from ..model.terms import RDF_TYPE, XSD_DATE
from .tpch import LineItem, Order, TpchConfig, TpchData, generate_tpch

RDFH = "http://example.org/rdfh/"
RDFH_VOC = RDFH + "schema/"

CLASS_CUSTOMER = RDFH_VOC + "Customer"
CLASS_ORDER = RDFH_VOC + "Order"
CLASS_LINEITEM = RDFH_VOC + "Lineitem"

# predicate IRIs, named after the TPC-H columns
P_TYPE = RDF_TYPE
P_C_NAME = RDFH_VOC + "c_name"
P_C_MKTSEGMENT = RDFH_VOC + "c_mktsegment"
P_C_NATION = RDFH_VOC + "c_nation"
P_C_ACCTBAL = RDFH_VOC + "c_acctbal"
P_O_CUSTKEY = RDFH_VOC + "o_custkey"
P_O_ORDERDATE = RDFH_VOC + "o_orderdate"
P_O_ORDERSTATUS = RDFH_VOC + "o_orderstatus"
P_O_ORDERPRIORITY = RDFH_VOC + "o_orderpriority"
P_O_SHIPPRIORITY = RDFH_VOC + "o_shippriority"
P_O_TOTALPRICE = RDFH_VOC + "o_totalprice"
P_L_ORDERKEY = RDFH_VOC + "l_orderkey"
P_L_LINENUMBER = RDFH_VOC + "l_linenumber"
P_L_QUANTITY = RDFH_VOC + "l_quantity"
P_L_EXTENDEDPRICE = RDFH_VOC + "l_extendedprice"
P_L_DISCOUNT = RDFH_VOC + "l_discount"
P_L_TAX = RDFH_VOC + "l_tax"
P_L_SHIPDATE = RDFH_VOC + "l_shipdate"
P_L_RETURNFLAG = RDFH_VOC + "l_returnflag"
P_L_LINESTATUS = RDFH_VOC + "l_linestatus"


def customer_iri(custkey: int) -> IRI:
    return IRI(f"{RDFH}customer/{custkey}")


def order_iri(orderkey: int) -> IRI:
    return IRI(f"{RDFH}order/{orderkey}")


def lineitem_iri(orderkey: int, linenumber: int) -> IRI:
    return IRI(f"{RDFH}lineitem/{orderkey}-{linenumber}")


def tpch_to_triples(data: TpchData) -> Iterator[Triple]:
    """Map generated TPC-H rows to RDF-H triples (one pass, streaming)."""
    type_pred = IRI(P_TYPE)
    for customer in data.customers:
        subject = customer_iri(customer.custkey)
        yield Triple(subject, type_pred, IRI(CLASS_CUSTOMER))
        yield Triple(subject, IRI(P_C_NAME), Literal(customer.name))
        yield Triple(subject, IRI(P_C_MKTSEGMENT), Literal(customer.mktsegment))
        yield Triple(subject, IRI(P_C_NATION), Literal(customer.nation))
        yield Triple(subject, IRI(P_C_ACCTBAL), literal_from_python(customer.acctbal))
    for order in data.orders:
        subject = order_iri(order.orderkey)
        yield Triple(subject, type_pred, IRI(CLASS_ORDER))
        yield Triple(subject, IRI(P_O_CUSTKEY), customer_iri(order.custkey))
        yield Triple(subject, IRI(P_O_ORDERDATE), Literal(order.orderdate.isoformat(), datatype=XSD_DATE))
        yield Triple(subject, IRI(P_O_ORDERSTATUS), Literal(order.orderstatus))
        yield Triple(subject, IRI(P_O_ORDERPRIORITY), Literal(order.orderpriority))
        yield Triple(subject, IRI(P_O_SHIPPRIORITY), literal_from_python(order.shippriority))
        yield Triple(subject, IRI(P_O_TOTALPRICE), literal_from_python(order.totalprice))
    for line in data.lineitems:
        subject = lineitem_iri(line.orderkey, line.linenumber)
        yield Triple(subject, type_pred, IRI(CLASS_LINEITEM))
        yield Triple(subject, IRI(P_L_ORDERKEY), order_iri(line.orderkey))
        yield Triple(subject, IRI(P_L_LINENUMBER), literal_from_python(line.linenumber))
        yield Triple(subject, IRI(P_L_QUANTITY), literal_from_python(line.quantity))
        yield Triple(subject, IRI(P_L_EXTENDEDPRICE), literal_from_python(line.extendedprice))
        yield Triple(subject, IRI(P_L_DISCOUNT), literal_from_python(line.discount))
        yield Triple(subject, IRI(P_L_TAX), literal_from_python(line.tax))
        yield Triple(subject, IRI(P_L_SHIPDATE), Literal(line.shipdate.isoformat(), datatype=XSD_DATE))
        yield Triple(subject, IRI(P_L_RETURNFLAG), Literal(line.returnflag))
        yield Triple(subject, IRI(P_L_LINESTATUS), Literal(line.linestatus))


def generate_rdfh_triples(scale_factor: float = 0.01, seed: int = 20130408) -> List[Triple]:
    """Generate RDF-H triples at the given scale factor."""
    data = generate_tpch(TpchConfig(scale_factor=scale_factor, seed=seed))
    return list(tpch_to_triples(data))


def expected_subject_counts(data: TpchData) -> Dict[str, int]:
    """Expected number of subjects per RDF-H class (for tests)."""
    return {
        CLASS_CUSTOMER: len(data.customers),
        CLASS_ORDER: len(data.orders),
        CLASS_LINEITEM: len(data.lineitems),
    }


def sub_order_keys() -> Dict[str, str]:
    """The sub-ordering the paper applies: LINEITEM on shipdate, ORDERS on orderdate.

    Keys are emergent-table labels (the labeling pass names tables after their
    ``rdf:type`` object's local name), values are predicate IRIs.
    """
    return {
        "Lineitem": P_L_SHIPDATE,
        "Order": P_O_ORDERDATE,
    }
