"""Synthetic dirty ("web-crawl like") RDF generator.

The paper's future-work evaluation targets web-crawled RDF, "the dirtiest
data encountered in practice".  This generator produces data with a known
regular backbone plus controllable noise so the discovery pipeline's
coverage can be measured against ground truth:

* a configurable number of classes, each with its own property set;
* per-subject property *dropout* (missing values);
* *noisy predicates*: low-frequency, misspelled property names attached to
  random subjects;
* *chaotic subjects* that follow no class at all;
* mixed object types for a fraction of the properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..model import IRI, Literal, Triple
from ..model.terms import RDF_TYPE

CRAWL = "http://example.org/crawl/"
VOC = CRAWL + "vocab/"


@dataclass(frozen=True)
class DirtyConfig:
    """Noise and size knobs."""

    classes: int = 5
    subjects_per_class: int = 120
    properties_per_class: int = 6
    dropout: float = 0.1
    """Probability that a subject omits any given optional property."""
    noise_triples: float = 0.05
    """Noisy predicate triples as a fraction of the regular triple count."""
    chaotic_subjects: int = 25
    """Subjects with entirely random property combinations."""
    mixed_type_fraction: float = 0.2
    """Fraction of properties whose objects mix strings and integers."""
    seed: int = 99


@dataclass
class DirtyDataset:
    """Generated triples plus the ground truth used by coverage tests."""

    triples: List[Triple]
    regular_subject_count: int
    regular_triple_count: int
    class_of_subject: Dict[str, int]

    def total_triples(self) -> int:
        return len(self.triples)


def generate_dirty(config: DirtyConfig | None = None) -> DirtyDataset:
    """Generate a dirty data set with known regular backbone."""
    config = config or DirtyConfig()
    rng = random.Random(config.seed)
    triples: List[Triple] = []
    class_of_subject: Dict[str, int] = {}
    type_pred = IRI(RDF_TYPE)
    regular_triples = 0

    properties: Dict[int, List[str]] = {}
    mixed: Dict[str, bool] = {}
    for cls in range(config.classes):
        names = [f"{VOC}c{cls}_p{i}" for i in range(config.properties_per_class)]
        properties[cls] = names
        for name in names:
            mixed[name] = rng.random() < config.mixed_type_fraction

    for cls in range(config.classes):
        class_iri = IRI(f"{VOC}Class{cls}")
        for index in range(config.subjects_per_class):
            subject = IRI(f"{CRAWL}entity/{cls}/{index}")
            class_of_subject[subject.value] = cls
            triples.append(Triple(subject, type_pred, class_iri))
            regular_triples += 1
            for position, prop in enumerate(properties[cls]):
                # the first two properties are mandatory, the rest can drop out
                if position >= 2 and rng.random() < config.dropout:
                    continue
                triples.append(Triple(subject, IRI(prop), _object_for(prop, index, mixed, rng)))
                regular_triples += 1

    regular_subject_count = config.classes * config.subjects_per_class

    noise_count = int(regular_triples * config.noise_triples)
    all_regular_subjects = [s for s in class_of_subject]
    for i in range(noise_count):
        subject = IRI(rng.choice(all_regular_subjects))
        predicate = IRI(f"{VOC}noise_{rng.randint(0, 50)}")
        triples.append(Triple(subject, predicate, Literal(f"noise-{i}")))

    for i in range(config.chaotic_subjects):
        subject = IRI(f"{CRAWL}chaos/{i}")
        for _ in range(rng.randint(1, 4)):
            cls = rng.randrange(config.classes)
            prop = rng.choice(properties[cls])
            triples.append(Triple(subject, IRI(prop), Literal(f"chaos-{i}")))

    return DirtyDataset(
        triples=triples,
        regular_subject_count=regular_subject_count,
        regular_triple_count=regular_triples,
        class_of_subject=class_of_subject,
    )


def _object_for(prop: str, index: int, mixed: Dict[str, bool], rng: random.Random):
    if mixed.get(prop) and rng.random() < 0.5:
        return Literal(str(rng.randint(0, 10_000)),
                       datatype="http://www.w3.org/2001/XMLSchema#integer")
    return Literal(f"{prop.rsplit('/', 1)[-1]}-value-{index}")
