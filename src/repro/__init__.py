"""repro — Self-organizing structured RDF.

A reproduction of *"Self-organizing Structured RDF in MonetDB"* (Pham,
ICDE 2013): characteristic-set schema discovery, subject-clustered columnar
storage, RDFscan/RDFjoin star-pattern operators, and SPARQL + SQL frontends
over the same data — all on a pure-Python/NumPy columnar substrate with a
buffer-pool simulator for hardware-independent cost accounting.

Typical use::

    from repro import RDFStore

    store = RDFStore.build(open("data.nt").read())
    print(store.schema_summary())
    result = store.sparql("SELECT ?a WHERE { ?b <http://ex/has_author> ?a }")
    print(store.decode_rows(result))
"""

from .core import CheckpointReport, RDFStore, StoreConfig
from .cs import DiscoveryConfig, EmergentSchema, GeneralizationConfig
from .errors import (
    BenchmarkError,
    DictionaryError,
    ExecutionError,
    ParseError,
    PendingUpdatesError,
    PersistenceError,
    PlanError,
    QueryCancelledError,
    ReproError,
    SchemaError,
    StorageError,
)
from .model import BNode, Graph, IRI, Literal, Triple
from .obs import (
    ActiveQueryRegistry,
    EventLog,
    MetricsRegistry,
    QueryTrace,
    SlowQueryLog,
    default_registry,
    render_prometheus,
)
from .sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlanCache,
    PlannerOptions,
)
from .persist import SnapshotInfo, WriteAheadLog
from .server import QueryServer, ReadSnapshot, StoreService, StoreSession
from .updates import CompactionReport, DeltaStore, UpdateJournal, UpdateResult

__version__ = "0.1.0"

__all__ = [
    "ActiveQueryRegistry",
    "BNode",
    "BenchmarkError",
    "CheckpointReport",
    "CompactionReport",
    "DEFAULT_SCHEME",
    "DeltaStore",
    "DictionaryError",
    "DiscoveryConfig",
    "EmergentSchema",
    "EventLog",
    "ExecutionError",
    "GeneralizationConfig",
    "Graph",
    "IRI",
    "Literal",
    "MetricsRegistry",
    "OPTIMIZED_SCHEME",
    "ParseError",
    "PendingUpdatesError",
    "PersistenceError",
    "PlanCache",
    "PlanError",
    "PlannerOptions",
    "QueryCancelledError",
    "QueryServer",
    "QueryTrace",
    "RDFSCAN_SCHEME",
    "RDFStore",
    "ReadSnapshot",
    "ReproError",
    "SchemaError",
    "SlowQueryLog",
    "SnapshotInfo",
    "StorageError",
    "StoreConfig",
    "StoreService",
    "StoreSession",
    "Triple",
    "UpdateJournal",
    "UpdateResult",
    "WriteAheadLog",
    "__version__",
    "default_registry",
    "render_prometheus",
]
