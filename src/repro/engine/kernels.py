"""Vectorized batch kernels: the hot loops of the batched executor.

Every kernel maps a per-row Python loop the operators used to run onto a
handful of NumPy primitives.  They are deliberately free-standing functions
over plain ``int64``/``float64`` arrays so the property tests in
``tests/test_batch_kernels.py`` can check each one against a naive Python
reference in isolation:

* :func:`expand_ranges` — run-length expansion of ``[lo, hi)`` index ranges,
  the core of merge joins and nested-loop index probe fan-out;
* :func:`merge_join_indices` — probe keys against a sorted key column;
* :func:`hash_join_indices` — multi-column equi-join match pairs, ordered
  probe-major with build rows in input order (streaming joins rely on this
  order being independent of how the probe side is batched);
* :func:`range_mask` / :func:`eq_mask` / :func:`neq_mask` — filter masks;
* :func:`subtract_rows_mask` — tombstone subtraction by row identity;
* :class:`StreamingDistinct` — cross-batch DISTINCT keeping first
  occurrences in stream order (duplicates may straddle batch boundaries);
* :func:`group_rows` / :func:`grouped_aggregate` — vectorized GROUP BY with
  exactly the per-group semantics of ``AggregateSpec.compute``.

Row identity is computed by :func:`pack_rows`: parallel columns are packed
into one fixed-width structured key per row, so sorting/searching whole rows
costs one NumPy operation instead of a Python tuple per row.  Float columns
participate bitwise after normalizing ``-0.0`` to ``+0.0``; OID columns
(the common case) are exact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _empty_pair() -> Tuple[np.ndarray, np.ndarray]:
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


# -- run expansion / joins -------------------------------------------------------------


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand half-open ranges ``[lo[i], hi[i])`` into match pairs.

    Returns parallel arrays ``(source, position)``: for every ``i`` and every
    ``p`` in ``range(lo[i], hi[i])`` one pair ``(i, p)``, ordered by ``i``
    first and ``p`` second.  Empty (or inverted) ranges contribute nothing.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    counts = np.maximum(hi - lo, 0)
    total = int(counts.sum())
    if total == 0:
        return _empty_pair()
    source = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - starts[source]
    return source, lo[source] + offsets


def merge_join_indices(sorted_keys: np.ndarray,
                       probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Match probe keys against a sorted key column.

    Returns ``(probe_row, sorted_position)`` pairs, probe-major, positions
    ascending within one probe row.
    """
    sorted_keys = np.asarray(sorted_keys)
    probe_keys = np.asarray(probe_keys)
    if sorted_keys.size == 0 or probe_keys.size == 0:
        return _empty_pair()
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    return expand_ranges(lo, hi)


def _paired_codes(build: np.ndarray, probe: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dense codes for two columns such that equal values get equal codes."""
    combined = np.concatenate([np.asarray(build), np.asarray(probe)])
    uniques, codes = np.unique(combined, return_inverse=True)
    codes = codes.reshape(-1).astype(np.int64, copy=False)
    return codes[:len(build)], codes[len(build):], int(uniques.size)


def hash_join_indices(build_arrays: Sequence[np.ndarray],
                      probe_arrays: Sequence[np.ndarray]
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Matching ``(build_row, probe_row)`` pairs of a multi-column equi-join.

    Output is probe-major; within one probe row the matching build rows keep
    their input order.  Combined keys are built by iterated dense re-coding,
    so arbitrarily many join columns cannot overflow ``int64``.
    """
    if len(build_arrays) != len(probe_arrays) or not build_arrays:
        raise ValueError("hash_join_indices needs matching non-empty column lists")
    n_build = len(build_arrays[0])
    n_probe = len(probe_arrays[0])
    if n_build == 0 or n_probe == 0:
        return _empty_pair()
    build_key, probe_key, _ = _paired_codes(build_arrays[0], probe_arrays[0])
    for build_col, probe_col in zip(build_arrays[1:], probe_arrays[1:]):
        extra_b, extra_p, width = _paired_codes(build_col, probe_col)
        build_key, probe_key, _ = _paired_codes(build_key * width + extra_b,
                                                probe_key * width + extra_p)
    order = np.argsort(build_key, kind="stable")
    probe_rows, positions = merge_join_indices(build_key[order], probe_key)
    return order[positions], probe_rows


# -- filter masks ----------------------------------------------------------------------


def range_mask(values: np.ndarray, low: Optional[int] = None, high: Optional[int] = None,
               extras: Optional[np.ndarray] = None) -> np.ndarray:
    """Inclusive ``[low, high]`` interval mask, with an explicit extra OID set
    (the value-space tail of :class:`~repro.engine.plan.OidRange`)."""
    values = np.asarray(values)
    mask = np.ones(len(values), dtype=bool)
    if low is not None:
        mask &= values >= low
    if high is not None:
        mask &= values <= high
    if extras is not None and len(extras):
        mask |= np.isin(values, np.asarray(extras))
    return mask


def eq_mask(values: np.ndarray, oid: int) -> np.ndarray:
    return np.asarray(values) == oid


def neq_mask(values: np.ndarray, oid: int) -> np.ndarray:
    return np.asarray(values) != oid


# -- row identity ----------------------------------------------------------------------


def pack_rows(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Pack parallel columns into one fixed-width structured key per row.

    Equal rows get equal keys; the key dtype is sortable, so ``np.unique``
    and :func:`sorted_member_mask` work on whole rows at NumPy speed.  Float
    columns are compared bitwise after normalizing ``-0.0`` to ``+0.0``.
    """
    if not arrays:
        raise ValueError("pack_rows needs at least one column")
    cols: List[np.ndarray] = []
    for values in arrays:
        values = np.asarray(values)
        if values.dtype.kind == "f":
            cols.append((values.astype(np.float64) + 0.0).view(np.int64))
        else:
            cols.append(values.astype(np.int64, copy=False))
    stacked = np.ascontiguousarray(np.column_stack(cols))
    dtype = np.dtype([(f"c{i}", np.int64) for i in range(len(cols))])
    return stacked.view(dtype).reshape(-1)


def sorted_member_mask(keys: np.ndarray, sorted_set: np.ndarray) -> np.ndarray:
    """Membership of each key in a sorted key array (binary search)."""
    if keys.size == 0 or sorted_set.size == 0:
        return np.zeros(keys.size, dtype=bool)
    idx = np.searchsorted(sorted_set, keys, side="left")
    in_bounds = idx < sorted_set.size
    mask = np.zeros(keys.size, dtype=bool)
    mask[in_bounds] = sorted_set[idx[in_bounds]] == keys[in_bounds]
    return mask


def subtract_rows_mask(row_arrays: Sequence[np.ndarray],
                       tombstone_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Tombstone subtraction: True for rows present in the tombstone set."""
    if not row_arrays or len(row_arrays[0]) == 0:
        return np.zeros(0, dtype=bool)
    if not tombstone_arrays or len(tombstone_arrays[0]) == 0:
        return np.zeros(len(row_arrays[0]), dtype=bool)
    keys = pack_rows(row_arrays)
    dead = np.unique(pack_rows(tombstone_arrays))
    return sorted_member_mask(keys, dead)


# -- DISTINCT --------------------------------------------------------------------------


def first_occurrence_indices(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Ascending row indices of the first occurrence of each distinct row."""
    if not arrays or len(arrays[0]) == 0:
        return np.empty(0, dtype=np.int64)
    _, idx = np.unique(pack_rows(arrays), return_index=True)
    return np.sort(idx)


class StreamingDistinct:
    """Cross-batch DISTINCT state.

    Each call to :meth:`keep_indices` returns the indices of rows not seen in
    any earlier batch (first occurrences, in stream order), so duplicates
    that straddle a batch boundary are still dropped exactly once.
    """

    def __init__(self) -> None:
        self._seen: Optional[np.ndarray] = None  # sorted packed keys

    def keep_indices(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        if not arrays or len(arrays[0]) == 0:
            return np.empty(0, dtype=np.int64)
        keys = pack_rows(arrays)
        _, first = np.unique(keys, return_index=True)
        first = np.sort(first)
        fresh_keys = keys[first]
        if self._seen is not None and self._seen.size:
            fresh = ~sorted_member_mask(fresh_keys, self._seen)
            first = first[fresh]
            fresh_keys = fresh_keys[fresh]
        if fresh_keys.size:
            merged = fresh_keys if self._seen is None \
                else np.concatenate([self._seen, fresh_keys])
            self._seen = np.sort(merged)
        return first


# -- GROUP BY / aggregation ------------------------------------------------------------


def group_rows(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Group rows by their combined key.

    Returns ``(representatives, group_ids)``: the row index of each group's
    first occurrence (groups ordered by first appearance, matching the
    insertion order a per-row dict would produce) and each row's group id.
    """
    if not arrays or len(arrays[0]) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = pack_rows(arrays)
    _, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
    inverse = inverse.reshape(-1)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size, dtype=np.int64)
    return first_idx[order], rank[inverse]


def grouped_aggregate(func: str, group_ids: np.ndarray, num_groups: int,
                      values: np.ndarray) -> np.ndarray:
    """Per-group aggregate with ``AggregateSpec.compute`` semantics.

    ``count`` counts every row (finite or not); ``sum``/``avg``/``min``/
    ``max`` reduce only finite values, yielding ``0.0`` (sum) or ``NaN``
    (others) for groups with no finite value at all.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if func == "count":
        return np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    finite = np.isfinite(values)
    finite_counts = np.bincount(group_ids, weights=finite.astype(np.float64),
                                minlength=num_groups)
    if func in ("sum", "avg"):
        sums = np.bincount(group_ids, weights=np.where(finite, values, 0.0),
                           minlength=num_groups)
        if func == "sum":
            return sums
        with np.errstate(invalid="ignore", divide="ignore"):
            out = sums / finite_counts
        out[finite_counts == 0] = np.nan
        return out
    if func not in ("min", "max"):
        raise ValueError(f"unsupported aggregate function {func!r}")
    sentinel = np.inf if func == "min" else -np.inf
    out = np.full(num_groups, sentinel, dtype=np.float64)
    masked = np.where(finite, values, sentinel)
    if func == "min":
        np.minimum.at(out, group_ids, masked)
    else:
        np.maximum.at(out, group_ids, masked)
    out[finite_counts == 0] = np.nan
    return out
