"""Classical physical operators: index scans, joins, filters, projection,
ordering, aggregation.

These operators implement the *Default* plan scheme of Table I: each triple
pattern of a SPARQL query becomes an index scan against the exhaustive
permutation store, and patterns sharing a subject are combined with
nested-loop index joins (one per additional property) or hash joins — the
exact shape the paper criticizes for its lack of locality.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError
from . import kernels
from .bindings import Batch, BatchEmitter, BindingTable, join_tables
from .context import ExecutionContext
from .expressions import AggregateSpec, Expression
from .mergescan import merge_pattern_rows, merged_subject_objects
from .plan import OidRange, PatternTerm, PhysicalOperator, TriplePatternPlan


class IndexScanOp(PhysicalOperator):
    """Scan one triple pattern against the exhaustive index store.

    Constant slots are pushed into the permutation prefix; an optional OID
    range on the object (from a FILTER) and/or on the subject (from a
    zone-map-derived restriction) is applied with binary search when the
    chosen permutation sorts that component right after the bound prefix,
    and as a post-filter otherwise.
    """

    def __init__(self, pattern: TriplePatternPlan,
                 object_range: Optional[OidRange] = None,
                 subject_range: Optional[OidRange] = None) -> None:
        self.pattern = pattern
        self.object_range = object_range
        self.subject_range = subject_range

    def describe(self) -> str:
        parts = [f"IndexScan[{self.pattern.describe()}]"]
        if self.object_range and not self.object_range.is_unbounded():
            parts.append(f"obj{self.object_range.describe()}")
        if self.subject_range and not self.subject_range.is_unbounded():
            parts.append(f"subj{self.subject_range.describe()}")
        return " ".join(parts)

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        store = context.require_index_store()
        s, p, o = self.pattern.subject, self.pattern.predicate, self.pattern.object

        # Fast paths: predicate bound plus a range on the object (POS prefix) or
        # on the subject (PSO prefix).  When both ranges are available the scan
        # picks whichever touches fewer rows; the other range is applied as a
        # post-filter in _bind().
        object_path = (not p.is_variable and o.is_variable and self.object_range is not None
                       and not self.object_range.is_unbounded() and "pos" in store.tables)
        subject_path = (not p.is_variable and s.is_variable and self.subject_range is not None
                        and not self.subject_range.is_unbounded() and "pso" in store.tables)
        if object_path and subject_path:
            object_rows = self._range_row_count(store.table("pos"), p.oid, self.object_range, "o")
            subject_rows = self._range_row_count(store.table("pso"), p.oid, self.subject_range, "s")
            if subject_rows < object_rows:
                object_path = False
            else:
                subject_path = False
        if object_path:
            rows = self._range_scan(store.table("pos"), p.oid, self.object_range, fetch="spo")
            rows = self._filter_constant_slots(rows)
        elif subject_path:
            rows = self._range_scan(store.table("pso"), p.oid, self.subject_range,
                                    fetch="spo", range_component="s")
            rows = self._filter_constant_slots(rows)
        else:
            rows = store.scan_pattern(
                s=None if s.is_variable else s.oid,
                p=None if p.is_variable else p.oid,
                o=None if o.is_variable else o.oid,
                fetch="spo",
            )
        delta = context.active_delta()
        if delta is not None:
            rows = merge_pattern_rows(
                delta, rows,
                s=None if s.is_variable else s.oid,
                p=None if p.is_variable else p.oid,
                o=None if o.is_variable else o.oid,
            )
        self._emitter = BatchEmitter(self._bind(rows, context))

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        return self._emitter.next(context.batch_size)

    def _close(self, context: ExecutionContext) -> None:
        self._emitter = None

    def _filter_constant_slots(self, rows: np.ndarray) -> np.ndarray:
        """Re-apply constant S/O slots that a fast-path range scan did not cover."""
        if rows.size == 0:
            return rows
        mask = np.ones(rows.shape[0], dtype=bool)
        if not self.pattern.subject.is_variable:
            mask &= rows[:, 0] == self.pattern.subject.oid
        if not self.pattern.object.is_variable:
            mask &= rows[:, 2] == self.pattern.object.oid
        return rows[mask]

    def _range_row_count(self, table, predicate_oid: int, oid_range: OidRange,
                         range_component: str) -> int:
        """Rows the range scan would touch (binary searches only, no page reads)."""
        lo_row, hi_row = table.prefix_row_range(predicate_oid)
        if hi_row <= lo_row:
            return 0
        segment = table.column(range_component).data[lo_row:hi_row]
        start = 0 if oid_range.low is None else int(np.searchsorted(segment, oid_range.low, side="left"))
        stop = len(segment) if oid_range.high is None else int(
            np.searchsorted(segment, oid_range.high, side="right"))
        return max(0, stop - start)

    def _range_scan(self, table, predicate_oid: int, oid_range: OidRange,
                    fetch: str, range_component: str = "o") -> np.ndarray:
        lo_row, hi_row = table.prefix_row_range(predicate_oid)
        if hi_row <= lo_row:
            return np.empty((0, 3), dtype=np.int64)
        component_column = table.column(range_component)
        segment = component_column.data[lo_row:hi_row]
        start = lo_row
        stop = hi_row
        if oid_range.low is not None:
            start = lo_row + int(np.searchsorted(segment, oid_range.low, side="left"))
        if oid_range.high is not None:
            stop = lo_row + int(np.searchsorted(segment, oid_range.high, side="right"))
        return table.fetch_rows(start, stop, fetch=fetch)

    def _bind(self, rows: np.ndarray, context: ExecutionContext) -> BindingTable:
        columns = {}
        slots = {"s": 0, "p": 1, "o": 2}
        for component, term in (("s", self.pattern.subject), ("p", self.pattern.predicate),
                                ("o", self.pattern.object)):
            if not term.is_variable:
                continue
            values = rows[:, slots[component]] if rows.size else np.empty(0, dtype=np.int64)
            if term.var in columns:
                # repeated variable (e.g. ``?x <p> ?x``): both occurrences
                # must bind the same OID
                keep = columns[term.var] == values
                rows = rows[keep]
                columns = {name: data[keep] for name, data in columns.items()}
            else:
                columns[term.var] = values
        table = BindingTable(columns)
        table = _apply_range(table, self.pattern.object, self.object_range)
        table = _apply_range(table, self.pattern.subject, self.subject_range)
        return table


class NestedLoopIndexJoinOp(PhysicalOperator):
    """For every input binding, probe the index for one more pattern.

    This is the per-property join of the Default scheme: given the subjects
    produced so far, each additional property is fetched by probing the PSO
    (or SPO) index once per subject — "hitting the index all over the
    place".  The probes are vectorized but the *page accounting* reflects
    the scattered positions touched, which is what makes this operator slow
    in the cold, parse-order configuration.
    """

    def __init__(self, child: PhysicalOperator, pattern: TriplePatternPlan,
                 object_range: Optional[OidRange] = None) -> None:
        if not pattern.subject.is_variable:
            raise ExecutionError("NestedLoopIndexJoin expects a variable subject")
        if pattern.predicate.is_variable:
            raise ExecutionError("NestedLoopIndexJoin expects a constant predicate")
        self.child = child
        self.pattern = pattern
        self.object_range = object_range

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"NestedLoopIndexJoin[{self.pattern.describe()}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        context.tracker.join_operations += 1
        store = context.require_index_store()
        self._index = store.table("pso") if "pso" in store.tables \
            else store.table(store.best_order("sp"))
        self._prefix = self._index.prefix_row_range(self.pattern.predicate.oid)
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        return Batch(self._probe(batch.compact(), context))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)
        self._index = None

    def _probe(self, input_table: BindingTable, context: ExecutionContext) -> BindingTable:
        subject_var = self.pattern.subject.var
        if not input_table.has(subject_var):
            raise ExecutionError(f"join variable ?{subject_var} not produced by child operator")

        subjects = input_table.column(subject_var)
        if subjects.size == 0:
            out_vars = list(input_table.variables)
            if self.pattern.object.is_variable and self.pattern.object.var not in out_vars:
                out_vars.append(self.pattern.object.var)
            return BindingTable.empty(out_vars)

        lo_row, hi_row = self._prefix
        s_column = self._index.column("s")
        o_column = self._index.column("o")
        segment_subjects = s_column.data[lo_row:hi_row]

        # one probe per input row (vectorized, but accounted per probe)
        left_positions = np.searchsorted(segment_subjects, subjects, side="left")
        right_positions = np.searchsorted(segment_subjects, subjects, side="right")
        context.tracker.tuples_probed += int(subjects.size) * 2

        input_rows_arr, offsets = kernels.expand_ranges(left_positions, right_positions)
        matched = offsets + lo_row

        # page accounting: the probes hit the s and o columns at scattered positions
        objects = o_column.gather(matched) if matched.size else np.empty(0, dtype=np.int64)
        if matched.size:
            s_column.gather(matched)

        delta = context.active_delta()
        if delta is not None:
            # drop tombstoned base pairs, then probe the delta for every subject
            if input_rows_arr.size:
                base_subjects = subjects[input_rows_arr]
                keep = ~delta.pair_tombstone_mask(self.pattern.predicate.oid,
                                                  base_subjects, objects)
                input_rows_arr, objects = input_rows_arr[keep], objects[keep]
            delta_rows, delta_objects = merged_subject_objects(
                delta, self.pattern.predicate.oid, subjects)
            if delta_rows.size:
                input_rows_arr = np.concatenate([input_rows_arr, delta_rows])
                objects = np.concatenate([objects, delta_objects])
                # keep the output order independent of the batch size: group
                # base and delta matches per input row, in input-row order
                order = np.argsort(input_rows_arr, kind="stable")
                input_rows_arr, objects = input_rows_arr[order], objects[order]

        result = input_table.select_rows(input_rows_arr)
        obj_term = self.pattern.object
        if obj_term.is_variable:
            if result.has(obj_term.var):
                mask = result.column(obj_term.var) == objects
                result = result.filter_mask(mask)
            else:
                result = result.with_column(obj_term.var, objects)
                result = _apply_range(result, obj_term, self.object_range)
        else:
            mask = objects == obj_term.oid
            result = result.filter_mask(mask)
        return result


class HashJoinOp(PhysicalOperator):
    """Hash join of two sub-plans on their shared variables."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 join_vars: Optional[Sequence[str]] = None) -> None:
        self.left = left
        self.right = right
        self.join_vars = list(join_vars) if join_vars is not None else None

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        on = ", ".join(self.join_vars) if self.join_vars else "<auto>"
        return f"HashJoin[on {on}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        context.tracker.join_operations += 1
        # drain the left child as the build side, stream the right as probe
        self._build = self.left.execute(context)
        context.tracker.tuples_probed += self._build.num_rows
        self.right.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.right.next_batch(context)
        if batch is None:
            return None
        probe = batch.compact()
        join_vars = self.join_vars
        if join_vars is None:
            join_vars = sorted(set(self._build.variables) & set(probe.variables))
        context.tracker.tuples_probed += probe.num_rows
        return Batch(join_tables(self._build, probe, join_vars))

    def _close(self, context: ExecutionContext) -> None:
        self.right.close(context)
        self._build = None


class FilterRangeOp(PhysicalOperator):
    """Keep rows whose OID column falls inside an inclusive OID range."""

    def __init__(self, child: PhysicalOperator, var: str, oid_range: OidRange) -> None:
        self.child = child
        self.var = var
        self.oid_range = oid_range

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"FilterRange[?{self.var} in {self.oid_range.describe()}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        values = batch.table.column(self.var)
        context.tracker.tuples_scanned += batch.live_count()
        return batch.mask_valid(self.oid_range.mask(values))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class FilterEqualOp(PhysicalOperator):
    """Keep rows where an OID column equals a constant OID."""

    def __init__(self, child: PhysicalOperator, var: str, oid: int) -> None:
        self.child = child
        self.var = var
        self.oid = int(oid)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"FilterEqual[?{self.var} == #{self.oid}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        values = batch.table.column(self.var)
        context.tracker.tuples_scanned += batch.live_count()
        return batch.mask_valid(kernels.eq_mask(values, self.oid))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class FilterNotEqualOp(PhysicalOperator):
    """Keep rows where an OID column differs from a constant OID."""

    def __init__(self, child: PhysicalOperator, var: str, oid: int) -> None:
        self.child = child
        self.var = var
        self.oid = int(oid)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"FilterNotEqual[?{self.var} != #{self.oid}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        values = batch.table.column(self.var)
        context.tracker.tuples_scanned += batch.live_count()
        return batch.mask_valid(kernels.neq_mask(values, self.oid))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class ProjectOp(PhysicalOperator):
    """Keep only the named columns."""

    def __init__(self, child: PhysicalOperator, variables: Sequence[str]) -> None:
        self.child = child
        self.variables = list(variables)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project[{', '.join('?' + v for v in self.variables)}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        return Batch(batch.table.project(self.variables), batch.valid)

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class DistinctOp(PhysicalOperator):
    """Remove duplicate rows (streaming, first occurrence wins).

    Dedup state spans batches, so duplicates straddling a batch boundary are
    still dropped exactly once.
    """

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self._distinct = kernels.StreamingDistinct()
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        table = batch.compact()
        if table.num_rows == 0 or not table.columns:
            return Batch(table)
        keep = self._distinct.keep_indices(
            [table.column(name) for name in sorted(table.columns)])
        return Batch(table.select_rows(keep))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)
        self._distinct = None


class OrderByOp(PhysicalOperator):
    """Sort rows by one or more ``(column, descending)`` keys.

    Ordering normally runs on raw OIDs — the loader's value-ordered literal
    OIDs make OID order equal value order.  Literals appended by updates
    after the last value-ordering pass break that invariant until the next
    compaction, so when a key column contains OIDs past the dictionary's
    value-order watermark the column is re-ranked by decoded term order
    before sorting.
    """

    def __init__(self, child: PhysicalOperator, keys: Sequence[tuple[str, bool]]) -> None:
        self.child = child
        self.keys = list(keys)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(f"?{name}{' desc' if desc else ''}" for name, desc in self.keys)
        return f"OrderBy[{rendered}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        table = self.child.execute(context)  # blocking: a sort needs all rows
        self._emitter = BatchEmitter(self._sorted(table, context))

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        return self._emitter.next(context.batch_size)

    def _close(self, context: ExecutionContext) -> None:
        self._emitter = None

    def _sorted(self, table: BindingTable, context: ExecutionContext) -> BindingTable:
        watermark = context.dictionary.value_order_watermark
        if len(context.dictionary) <= watermark:
            return table.sort_by(self.keys)
        sort_table = table
        for name, _descending in self.keys:
            if not sort_table.has(name):
                continue
            values = sort_table.column(name)
            if values.dtype.kind != "i" or not (values >= watermark).any():
                continue
            sort_table = sort_table.with_column(name, _value_ranks(values, context))
        if sort_table is table:
            return table.sort_by(self.keys)
        return table.select_rows(sort_table.sort_permutation(self.keys))


class LimitOp(PhysicalOperator):
    """Keep at most N rows."""

    def __init__(self, child: PhysicalOperator, limit: int) -> None:
        self.child = child
        self.limit = int(limit)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit[{self.limit}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self._remaining = self.limit
        self._emitted = False
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        # early termination: once the limit is reached the child is no longer
        # pulled (it still gets closed through _close)
        if self._remaining <= 0 and self._emitted:
            return None
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        table = batch.compact()
        if table.num_rows > self._remaining:
            table = table.head(self._remaining)
        self._remaining -= table.num_rows
        self._emitted = True
        return Batch(table)

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class ExtendOp(PhysicalOperator):
    """Add a computed numeric column from an expression."""

    def __init__(self, child: PhysicalOperator, alias: str, expression: Expression) -> None:
        self.child = child
        self.alias = alias
        self.expression = expression

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Extend[?{self.alias} = {self.expression.describe()}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        table = batch.compact()  # evaluate expressions on live rows only
        values = self.expression.evaluate(table, context.decoder)
        return Batch(table.with_column(self.alias, values))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


class AggregateOp(PhysicalOperator):
    """Group-by aggregation with numeric aggregate expressions."""

    def __init__(self, child: PhysicalOperator, group_vars: Sequence[str],
                 aggregates: Sequence[AggregateSpec]) -> None:
        self.child = child
        self.group_vars = list(group_vars)
        self.aggregates = list(aggregates)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        groups = ", ".join("?" + v for v in self.group_vars) or "<all>"
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        return f"Aggregate[by {groups}: {aggs}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        table = self.child.execute(context)  # blocking: aggregation needs all rows
        self._emitter = BatchEmitter(self._aggregate(table, context))

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        return self._emitter.next(context.batch_size)

    def _close(self, context: ExecutionContext) -> None:
        self._emitter = None

    def _aggregate(self, table: BindingTable, context: ExecutionContext) -> BindingTable:
        evaluated = {spec.alias: spec.expression.evaluate(table, context.decoder)
                     for spec in self.aggregates}

        if not self.group_vars:
            columns = {alias: np.asarray([spec.compute(evaluated[alias])], dtype=np.float64)
                       for alias, spec in zip(evaluated, self.aggregates)}
            return BindingTable(columns)

        group_arrays = [table.column(name) for name in self.group_vars]
        representatives, group_ids = kernels.group_rows(group_arrays)
        out_columns: dict[str, np.ndarray] = {}
        for name, values in zip(self.group_vars, group_arrays):
            out_columns[name] = values[representatives].astype(np.int64, copy=False)
        for spec in self.aggregates:
            out_columns[spec.alias] = kernels.grouped_aggregate(
                spec.func, group_ids, representatives.size, evaluated[spec.alias])
        context.tracker.tuples_scanned += table.num_rows
        return BindingTable(out_columns)


class MaterializedOp(PhysicalOperator):
    """Wrap a pre-computed binding table as an operator (used in tests and
    by RDFjoin to feed candidate subjects)."""

    def __init__(self, table: BindingTable, label: str = "materialized") -> None:
        self.table = table
        self.label = label

    def describe(self) -> str:
        return f"Materialized[{self.label}: {self.table.num_rows} rows]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        self._emitter = BatchEmitter(self.table)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        return self._emitter.next(context.batch_size)

    def _close(self, context: ExecutionContext) -> None:
        self._emitter = None


# -- helpers --------------------------------------------------------------------------


def _value_ranks(values: np.ndarray, context: ExecutionContext) -> np.ndarray:
    """Float sort keys that put post-watermark literals in value position.

    Pre-watermark OIDs keep their own value as key (OID order *is* value
    order for them — the baseline semantics); each tail literal is keyed
    fractionally between the value-ordered OIDs of its clean neighbours, so
    only the handful of post-watermark OIDs is ever decoded.
    """
    from ..model import Literal
    from ..model.terms import term_sort_key

    dictionary = context.dictionary
    watermark = dictionary.value_order_watermark
    keys = values.astype(np.float64)
    tail = sorted({int(v) for v in values if v >= watermark},
                  key=lambda oid: term_sort_key(dictionary.decode(oid)))
    counts: dict = {}
    denominator = float(len(tail) + 1)
    for oid in tail:
        term = dictionary.decode(oid)
        if not isinstance(term, Literal):
            continue  # non-literal tail terms keep raw-OID order, as the base does
        anchor = _tail_anchor(context, term)
        if anchor is None:
            continue
        counts[anchor] = counts.get(anchor, 0) + 1
        keys[values == oid] = anchor + counts[anchor] / denominator
    return keys


def _tail_anchor(context: ExecutionContext, literal) -> Optional[float]:
    """The value-ordered OID a tail literal should sort just after."""
    below = context.encoder.literal_range(None, literal, True, True)
    if below is not None and not below.is_empty_interval():
        return float(below.high)  # largest value-ordered literal OID <= value
    above = context.encoder.literal_range(literal, None, True, True)
    if above is not None and not above.is_empty_interval():
        return float(above.low) - 1.0  # just below the smallest clean literal
    return None  # no value-ordered literals at all: keep raw-OID order


def _apply_range(table: BindingTable, term: PatternTerm, oid_range: Optional[OidRange]) -> BindingTable:
    if oid_range is None or oid_range.is_unbounded() or not term.is_variable:
        return table
    if not table.has(term.var):
        return table
    values = table.column(term.var)
    return table.filter_mask(oid_range.mask(values))
