"""Tiny numeric expression trees for aggregation and value filters.

Aggregates such as TPC-H Q6's ``SUM(l_extendedprice * l_discount)`` need
arithmetic over the *values* behind OID columns.  Expressions are evaluated
against a :class:`~repro.engine.bindings.BindingTable` with the help of the
context's :class:`~repro.engine.values.ValueDecoder`; OID columns are
decoded to floats on demand, already-numeric (float64) columns are used as
is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..errors import ExecutionError
from .bindings import BindingTable


class Expression:
    """Base class of numeric expressions over binding-table rows."""

    def evaluate(self, table: BindingTable, decoder) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def variables(self) -> set[str]:
        return set()

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NumericVar(Expression):
    """The numeric value of a (possibly OID) column."""

    name: str

    def evaluate(self, table: BindingTable, decoder) -> np.ndarray:
        column = table.column(self.name)
        if column.dtype == np.float64:
            return column
        return decoder.numeric_column(column)

    def variables(self) -> set[str]:
        return {self.name}

    def describe(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class NumericConst(Expression):
    """A numeric constant."""

    value: float

    def evaluate(self, table: BindingTable, decoder) -> np.ndarray:
        return np.full(table.num_rows, float(self.value), dtype=np.float64)

    def describe(self) -> str:
        return repr(self.value)


_BINARY_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic combination of two expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ExecutionError(f"unsupported arithmetic operator {self.op!r}")

    def evaluate(self, table: BindingTable, decoder) -> np.ndarray:
        left = self.left.evaluate(table, decoder)
        right = self.right.evaluate(table, decoder)
        with np.errstate(divide="ignore", invalid="ignore"):
            return _BINARY_OPS[self.op](left, right)

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column: ``alias = func(expression)``."""

    func: str
    expression: Expression
    alias: str

    _FUNCS = ("sum", "count", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self._FUNCS:
            raise ExecutionError(f"unsupported aggregate function {self.func!r}")

    def compute(self, values: np.ndarray) -> float:
        if self.func == "count":
            return float(len(values))
        if len(values) == 0:
            return 0.0 if self.func == "sum" else float("nan")
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return 0.0 if self.func == "sum" else float("nan")
        if self.func == "sum":
            return float(finite.sum())
        if self.func == "avg":
            return float(finite.mean())
        if self.func == "min":
            return float(finite.min())
        return float(finite.max())

    def describe(self) -> str:
        return f"{self.alias}={self.func}({self.expression.describe()})"
