"""RDFscan and RDFjoin: the paper's star-pattern operators.

``RDFscan`` delivers the bindings of a whole star pattern (several
properties of one subject variable) in a single operator invocation.  Over
the CS-clustered store this is join-free: the properties of a characteristic
set are stored as aligned columns, so evaluating the star is a conjunction
of per-column predicates followed by a gather of the output columns.  Over
parse-order storage the operator falls back to a single merge pass across
the per-property PSO ranges — still one operator, but without the aligned
locality.

``RDFjoin`` is the variant that receives a stream of candidate subjects from
another operator (the paper relates it to the "Pivot Index Scan"): it
fetches the star's properties only for those subjects.

Both operators understand zone maps: when a property carries a range
constraint and its column has a zone map, only the zones whose ``[min,max]``
interval intersects the constraint are read.  The helpers at the bottom
implement the cross-table push-down used for RDF-H Q3 (restrict one CS's
subject range from a date predicate, push the restriction through the
foreign key into the other CS via its zone map).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..columnar import NULL_OID
from ..errors import ExecutionError
from ..storage.clustered import CSBlock, ClusteredStore
from ..storage.triple_table import TripleTable
from .bindings import Batch, BatchEmitter, BindingTable, join_tables
from .context import ExecutionContext
from .kernels import expand_ranges
from .mergescan import merge_property_pairs
from .plan import OidRange, PhysicalOperator, StarPattern, StarProperty


class RDFScanOp(PhysicalOperator):
    """Evaluate a full star pattern in one operator."""

    def __init__(self, star: StarPattern, use_zone_maps: bool = False,
                 force_index_path: bool = False) -> None:
        self.star = star
        self.use_zone_maps = use_zone_maps
        self.force_index_path = force_index_path

    def describe(self) -> str:
        flags = []
        if self.use_zone_maps:
            flags.append("zonemaps")
        if self.force_index_path:
            flags.append("index-path")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"RDFscan[{self.star.describe()}]{suffix}"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        if context.has_clustered_store() and not self.force_index_path:
            table = _scan_clustered(context, self.star, self.use_zone_maps)
        else:
            table = _scan_index_merge(context, self.star, candidate_subjects=None)
        self._emitter = BatchEmitter(table)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        return self._emitter.next(context.batch_size)

    def _close(self, context: ExecutionContext) -> None:
        self._emitter = None


class RDFJoinOp(PhysicalOperator):
    """Evaluate a star pattern for candidate subjects supplied by a child."""

    def __init__(self, child: PhysicalOperator, star: StarPattern,
                 use_zone_maps: bool = False, force_index_path: bool = False) -> None:
        self.child = child
        self.star = star
        self.use_zone_maps = use_zone_maps
        self.force_index_path = force_index_path

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"RDFjoin[{self.star.describe()}]"

    def _open(self, context: ExecutionContext) -> None:
        context.tracker.operator_invocations += 1
        context.tracker.join_operations += 1
        self.child.open(context)

    def _next_batch(self, context: ExecutionContext) -> Optional[Batch]:
        batch = self.child.next_batch(context)
        if batch is None:
            return None
        input_table = batch.compact()
        subject_var = self.star.subject_var
        if not input_table.has(subject_var):
            raise ExecutionError(f"RDFjoin expects ?{subject_var} from its child operator")
        candidates = np.unique(input_table.column(subject_var))
        if candidates.size == 0:
            star_table = BindingTable.empty(self.star.output_variables())
        elif context.has_clustered_store() and not self.force_index_path:
            star_table = _scan_clustered(context, self.star, self.use_zone_maps,
                                         candidate_subjects=candidates)
        else:
            star_table = _scan_index_merge(context, self.star, candidate_subjects=candidates)
        context.tracker.tuples_probed += int(candidates.size)
        join_vars = sorted(set(input_table.variables) & set(star_table.variables))
        # star side builds, input side probes: the output follows the input
        # row order, so results are identical for every batch size
        return Batch(join_tables(star_table, input_table, join_vars or [subject_var]))

    def _close(self, context: ExecutionContext) -> None:
        self.child.close(context)


# -- clustered-store evaluation -----------------------------------------------------


def _scan_clustered(context: ExecutionContext, star: StarPattern, use_zone_maps: bool,
                    candidate_subjects: Optional[np.ndarray] = None) -> BindingTable:
    store = context.require_clustered_store()
    delta = context.active_delta()
    predicates = star.predicate_oids()
    blocks = store.blocks_with_properties(predicates)

    results: List[BindingTable] = []
    residual_subjects = _irregular_star_subjects(store.irregular, predicates)
    # MergeScan: subjects with pending inserts or tombstones on a star
    # predicate can no longer be answered from their base block alone — route
    # them through the per-subject union path, which consults base ∪ delta −
    # tombstones.  This covers brand-new subjects (no CS) as well.
    if delta is not None:
        touched = delta.subjects_touching(predicates)
        if touched.size:
            residual_subjects = np.union1d(residual_subjects, touched)

    for block in blocks:
        table = _scan_block(context, block, star, use_zone_maps, candidate_subjects,
                            exclude_subjects=residual_subjects)
        if table.num_rows:
            results.append(table)

    # Residual path: subjects touched by irregular triples (spilled multi-values,
    # dirty data) or by pending writes are answered from the union of block +
    # irregular + delta data so that clustering never changes query answers.
    if residual_subjects.size:
        residual = _star_over_union(store, star, residual_subjects, candidate_subjects, delta)
        if residual.num_rows:
            results.append(residual)

    # Subjects that live only in the irregular store (no CS membership at all).
    irregular_only = _star_over_irregular_only(store, star, residual_subjects,
                                               candidate_subjects, delta)
    if irregular_only is not None and irregular_only.num_rows:
        results.append(irregular_only)

    output_vars = star.output_variables()
    if not results:
        return BindingTable.empty(output_vars)
    merged = results[0]
    for table in results[1:]:
        merged = merged.concat(table)
    return merged.project(output_vars)


def _scan_block(context: ExecutionContext, block: CSBlock, star: StarPattern,
                use_zone_maps: bool, candidate_subjects: Optional[np.ndarray],
                exclude_subjects: np.ndarray) -> BindingTable:
    n = len(block)
    if n == 0:
        return BindingTable.empty(star.output_variables())

    row_ranges: List[Tuple[int, int]] = [(0, n)]

    # subject-range restriction (zone-map push-down or FILTER on the subject)
    if star.subject_range is not None and not star.subject_range.is_unbounded():
        row_ranges = _intersect_ranges(row_ranges, [_subject_rows_for_range(block, star.subject_range)])

    # candidate subjects (RDFjoin): narrow to the smallest covering row range
    candidate_positions: Optional[np.ndarray] = None
    if candidate_subjects is not None:
        candidate_positions = block.positions_of_subjects(candidate_subjects)
        if candidate_positions.size == 0:
            return BindingTable.empty(star.output_variables())
        lo, hi = int(candidate_positions.min()), int(candidate_positions.max()) + 1
        row_ranges = _intersect_ranges(row_ranges, [(lo, hi)])

    # the clustering sub-order: a range predicate on a sorted column is a
    # binary search over the block, independent of zone maps
    for prop in star.properties:
        if prop.oid_range is None or prop.oid_range.is_unbounded():
            continue
        if prop.predicate_oid not in block.sorted_properties:
            continue
        column_data = block.column(prop.predicate_oid).data
        # the non-NULL values form the sorted prefix; trailing NULLs are excluded
        prefix_length = int(np.count_nonzero(column_data != NULL_OID))
        sorted_prefix = column_data[:prefix_length]
        lo = 0 if prop.oid_range.low is None else int(
            np.searchsorted(sorted_prefix, prop.oid_range.low, side="left"))
        hi = prefix_length if prop.oid_range.high is None else int(
            np.searchsorted(sorted_prefix, prop.oid_range.high, side="right"))
        row_ranges = _intersect_ranges(row_ranges, [(lo, max(lo, hi))])
        if not row_ranges:
            return BindingTable.empty(star.output_variables())

    # zone-map pruning on constrained properties
    if use_zone_maps:
        for prop in star.properties:
            if prop.oid_range is None or prop.oid_range.is_unbounded():
                continue
            zone_map = block.zone_map(prop.predicate_oid)
            if zone_map is None:
                continue
            candidate = zone_map.candidate_row_ranges(prop.oid_range.low, prop.oid_range.high)
            row_ranges = _intersect_ranges(row_ranges, candidate)
            if not row_ranges:
                return BindingTable.empty(star.output_variables())

    # evaluate constraints range-by-range, reading only constrained columns first
    surviving_positions: List[np.ndarray] = []
    constrained = [p for p in star.properties
                   if not p.object_term.is_variable
                   or (p.oid_range is not None and not p.oid_range.is_unbounded())
                   or p.required]
    for start, stop in row_ranges:
        if stop <= start:
            continue
        mask = np.ones(stop - start, dtype=bool)
        for prop in constrained:
            column = block.column(prop.predicate_oid)
            values = column.slice(start, stop)
            if prop.required:
                mask &= values != NULL_OID
            if not prop.object_term.is_variable:
                mask &= values == prop.object_term.oid
            if prop.oid_range is not None and not prop.oid_range.is_unbounded():
                mask &= prop.oid_range.mask(values)
        positions = np.nonzero(mask)[0] + start
        if positions.size:
            surviving_positions.append(positions)

    if not surviving_positions:
        return BindingTable.empty(star.output_variables())
    positions = np.concatenate(surviving_positions)

    if candidate_positions is not None:
        positions = np.intersect1d(positions, candidate_positions, assume_unique=False)
        if positions.size == 0:
            return BindingTable.empty(star.output_variables())

    subjects = block.subject_column.gather(positions)

    # residual subjects are answered elsewhere; drop them here to avoid duplicates
    if exclude_subjects.size:
        keep = ~np.isin(subjects, exclude_subjects)
        positions = positions[keep]
        subjects = subjects[keep]
        if positions.size == 0:
            return BindingTable.empty(star.output_variables())

    columns: Dict[str, np.ndarray] = {star.subject_var: subjects}
    for prop in star.properties:
        term = prop.object_term
        if not term.is_variable:
            continue
        if term.var in columns:
            # repeated variable (e.g. ``?x <p> ?x`` or two properties sharing
            # an object variable): every occurrence must bind the same OID
            values = block.column(prop.predicate_oid).gather(positions)
            keep = values == columns[term.var]
            if not prop.required:
                keep |= values == NULL_OID
            if not keep.all():
                positions = positions[keep]
                for name in columns:
                    columns[name] = columns[name][keep]
            if positions.size == 0:
                return BindingTable.empty(star.output_variables())
            continue
        column = block.column(prop.predicate_oid)
        values = column.gather(positions)
        if prop.required:
            # required but unconstrained variables must still be non-NULL
            keep = values != NULL_OID
            if not keep.all():
                positions = positions[keep]
                for name in columns:
                    columns[name] = columns[name][keep]
                values = values[keep]
        columns[term.var] = values
    return BindingTable(columns)


def _subject_rows_for_range(block: CSBlock, subject_range: OidRange) -> Tuple[int, int]:
    subjects = block.subject_column.data
    lo = 0 if subject_range.low is None else int(np.searchsorted(subjects, subject_range.low, side="left"))
    hi = len(subjects) if subject_range.high is None else int(
        np.searchsorted(subjects, subject_range.high, side="right"))
    return lo, max(lo, hi)


def _intersect_ranges(left: List[Tuple[int, int]],
                      right: List[Tuple[int, int]] | Tuple[int, int]) -> List[Tuple[int, int]]:
    if isinstance(right, tuple):
        right = [right]
    out: List[Tuple[int, int]] = []
    for a_start, a_stop in left:
        for b_start, b_stop in right:
            start, stop = max(a_start, b_start), min(a_stop, b_stop)
            if stop > start:
                out.append((start, stop))
    out.sort()
    return out


# -- residual / irregular evaluation ---------------------------------------------------


def _irregular_star_subjects(irregular: TripleTable, predicates: List[int]) -> np.ndarray:
    """Subjects having at least one irregular triple with a star predicate."""
    if len(irregular) == 0:
        return np.empty(0, dtype=np.int64)
    parts = []
    for predicate in predicates:
        rows = irregular.scan_prefix(predicate, fetch="s")
        if rows.size:
            parts.append(rows[:, 0])
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _star_over_union(store: ClusteredStore, star: StarPattern, subjects: np.ndarray,
                     candidate_subjects: Optional[np.ndarray],
                     delta=None) -> BindingTable:
    """Answer the star for specific subjects from block + irregular + delta data."""
    if candidate_subjects is not None:
        subjects = np.intersect1d(subjects, candidate_subjects)
    rows: Dict[str, List[int]] = {name: [] for name in star.output_variables()}
    for subject in subjects:
        subject = int(subject)
        if star.subject_range is not None and not star.subject_range.contains(subject):
            continue
        block = store.block_of_subject(subject)
        per_property: List[List[int]] = []
        satisfiable = True
        for prop in star.properties:
            values = _property_values_for_subject(store, block, subject, prop.predicate_oid,
                                                 delta)
            values = [v for v in values if _value_matches(v, prop)]
            if not values:
                if prop.required:
                    satisfiable = False
                    break
                values = [NULL_OID]
            per_property.append(values)
        if not satisfiable:
            continue
        _expand_product(rows, star, subject, per_property)
    return BindingTable({name: np.asarray(values, dtype=np.int64) for name, values in rows.items()})


def _star_over_irregular_only(store: ClusteredStore, star: StarPattern,
                              residual_subjects: np.ndarray,
                              candidate_subjects: Optional[np.ndarray],
                              delta=None) -> Optional[BindingTable]:
    """Answer the star for subjects that belong to no CS at all."""
    predicates = star.predicate_oids()
    subjects = _irregular_star_subjects(store.irregular, predicates)
    if subjects.size == 0:
        return None
    no_cs = np.asarray([s for s in subjects if store.schema.cs_of_subject(int(s)) is None],
                       dtype=np.int64)
    no_cs = np.setdiff1d(no_cs, residual_subjects)
    if no_cs.size == 0:
        return None
    return _star_over_union(store, star, no_cs, candidate_subjects, delta)


def _property_values_for_subject(store: ClusteredStore, block: Optional[CSBlock],
                                 subject: int, predicate: int,
                                 delta=None) -> List[int]:
    values: List[int] = []
    if block is not None and block.has_property(predicate):
        positions = block.positions_of_subjects(np.asarray([subject], dtype=np.int64))
        if positions.size:
            value = int(block.column(predicate).gather(positions)[0])
            if value != NULL_OID and not (delta is not None
                                          and delta.is_tombstoned(subject, predicate, value)):
                values.append(value)
    rows = store.irregular.scan_prefix(predicate, subject, fetch="o")
    if rows.size:
        values.extend(int(v) for v in rows[:, 0]
                      if not (delta is not None
                              and delta.is_tombstoned(subject, predicate, int(v))))
    if delta is not None:
        values.extend(delta.object_values(subject, predicate))
    return values


def _value_matches(value: int, prop: StarProperty) -> bool:
    if not prop.object_term.is_variable and value != prop.object_term.oid:
        return False
    if prop.oid_range is not None and not prop.oid_range.is_unbounded():
        if not prop.oid_range.contains(value):
            return False
    return True


def _expand_product(rows: Dict[str, List[int]], star: StarPattern, subject: int,
                    per_property: List[List[int]]) -> None:
    """Append the cartesian product of per-property values for one subject."""
    combos: List[Dict[str, int]] = [{star.subject_var: subject}]
    for prop, values in zip(star.properties, per_property):
        term = prop.object_term
        new_combos: List[Dict[str, int]] = []
        for combo in combos:
            for value in values:
                if term.is_variable:
                    if term.var in combo:
                        # repeated variable: a real value must match the prior
                        # binding; a missing optional value keeps it (mirrors
                        # the block path's NULL handling)
                        if value != NULL_OID and combo[term.var] != value:
                            continue
                        new_combos.append(dict(combo))
                        continue
                    extended = dict(combo)
                    extended[term.var] = value
                    new_combos.append(extended)
                else:
                    new_combos.append(dict(combo))
        combos = new_combos
    for combo in combos:
        for name in rows:
            rows[name].append(combo.get(name, NULL_OID))


# -- parse-order (index merge) evaluation ----------------------------------------------


def _scan_index_merge(context: ExecutionContext, star: StarPattern,
                      candidate_subjects: Optional[np.ndarray]) -> BindingTable:
    """Evaluate a star over the PSO/POS projections with one merge pass.

    Each property contributes a (subject, object) list sorted by subject;
    the lists are intersected pairwise.  This is RDFscan without clustered
    storage: a single operator, no repeated index probes, but it reads every
    property's full predicate range (minus pushed-down object ranges).
    """
    store = context.require_index_store()
    output_vars = star.output_variables()

    property_data: List[Tuple[StarProperty, np.ndarray, np.ndarray]] = []
    for prop in star.properties:
        subjects, objects = _property_pairs(context, store, prop, star.subject_range)
        if prop.required and subjects.size == 0:
            return BindingTable.empty(output_vars)
        property_data.append((prop, subjects, objects))

    # start from the most selective required property
    property_data.sort(key=lambda item: item[1].size if item[0].required else np.iinfo(np.int64).max)

    if property_data and any(prop.required for prop, _s, _o in property_data):
        first_prop, first_subjects, first_objects = property_data[0]
        table = BindingTable({star.subject_var: first_subjects})
        if first_prop.object_term.is_variable:
            table = table.with_column(first_prop.object_term.var, first_objects)
        remaining = property_data[1:]
    else:
        # all-optional star (the SQL view during pending writes): any subject
        # with at least one of the properties is a row, so seed from the
        # union and left-merge every property — anchoring on one property
        # would drop the subjects that lack it
        union = np.unique(np.concatenate([s for _p, s, _o in property_data])) \
            if property_data else np.empty(0, dtype=np.int64)
        table = BindingTable({star.subject_var: union})
        remaining = property_data

    if candidate_subjects is not None:
        mask = np.isin(table.column(star.subject_var), candidate_subjects)
        table = table.filter_mask(mask)

    for prop, subjects, objects in remaining:
        table = _merge_property(context, table, star.subject_var, prop, subjects, objects)
        if table.num_rows == 0 and prop.required:
            return BindingTable.empty(output_vars)

    for name in output_vars:
        if not table.has(name):
            table = table.with_column(name, np.full(table.num_rows, NULL_OID, dtype=np.int64))
    return table.project(output_vars)


def _property_pairs(context: ExecutionContext, store, prop: StarProperty,
                    subject_range: Optional[OidRange]) -> Tuple[np.ndarray, np.ndarray]:
    """Fetch the (subject, object) pairs of one property, sorted by subject."""
    if not prop.object_term.is_variable:
        rows = store.scan_pattern(p=prop.predicate_oid, o=prop.object_term.oid, fetch="so")
    elif prop.oid_range is not None and not prop.oid_range.is_unbounded() and "pos" in store.tables:
        table = store.table("pos")
        lo_row, hi_row = table.prefix_row_range(prop.predicate_oid)
        segment = table.column("o").data[lo_row:hi_row]
        start, stop = lo_row, hi_row
        if prop.oid_range.low is not None:
            start = lo_row + int(np.searchsorted(segment, prop.oid_range.low, side="left"))
        if prop.oid_range.high is not None:
            stop = lo_row + int(np.searchsorted(segment, prop.oid_range.high, side="right"))
        rows = table.fetch_rows(start, stop, fetch="so")
    else:
        rows = store.scan_pattern(p=prop.predicate_oid, fetch="so")
    if rows.size == 0:
        subjects = objects = np.empty(0, dtype=np.int64)
    else:
        subjects, objects = rows[:, 0], rows[:, 1]
    delta = context.active_delta()
    if delta is not None:
        constant = None if prop.object_term.is_variable else prop.object_term.oid
        subjects, objects = merge_property_pairs(delta, subjects, objects,
                                                 prop.predicate_oid, constant)
    if subjects.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if prop.oid_range is not None and not prop.oid_range.is_unbounded():
        mask = prop.oid_range.mask(objects)
        subjects, objects = subjects[mask], objects[mask]
    if subject_range is not None and not subject_range.is_unbounded():
        mask = subject_range.mask(subjects)
        subjects, objects = subjects[mask], objects[mask]
    order = np.argsort(subjects, kind="stable")
    return subjects[order], objects[order]


def _merge_property(context: ExecutionContext, table: BindingTable, subject_var: str,
                    prop: StarProperty, subjects: np.ndarray, objects: np.ndarray) -> BindingTable:
    """Join the current bindings with one property's (subject, object) pairs."""
    current = table.column(subject_var)
    lo = np.searchsorted(subjects, current, side="left")
    hi = np.searchsorted(subjects, current, side="right")
    context.tracker.tuples_probed += int(current.size)

    if prop.required:
        row_indices, positions = expand_ranges(lo, hi)
    else:
        # rows without a match contribute one placeholder position -1
        empty = hi <= lo
        row_indices, positions = expand_ranges(np.where(empty, -1, lo),
                                               np.where(empty, 0, hi))

    result = table.select_rows(row_indices)
    if prop.object_term.is_variable:
        if objects.size:
            values = np.where(positions >= 0, objects[np.maximum(positions, 0)], NULL_OID)
        else:
            values = np.full(positions.size, NULL_OID, dtype=np.int64)
        var = prop.object_term.var
        if result.has(var):
            mask = result.column(var) == values
            result = result.filter_mask(mask)
        else:
            result = result.with_column(var, values)
    return result


# -- zone-map push-down helpers ----------------------------------------------------------


def subject_range_for_property_range(block: CSBlock, predicate_oid: int,
                                     oid_range: OidRange) -> Optional[OidRange]:
    """Subject-OID bounds of the block rows whose property value is in range.

    Only meaningful when the block is sub-ordered on the property (which the
    clustering step arranges for the chosen sort key): the property column is
    then non-decreasing over its non-NULL prefix and the matching rows are
    contiguous, so the corresponding subject OIDs form one interval.
    Returns ``None`` when the column is not sorted that way.
    """
    if not block.has_property(predicate_oid):
        return None
    values = block.column(predicate_oid).data
    valid = values != NULL_OID
    prefix = values[valid]
    if prefix.size == 0:
        return None
    if not bool(np.all(prefix[:-1] <= prefix[1:])):
        return None
    valid_positions = np.nonzero(valid)[0]
    lo_idx = 0 if oid_range.low is None else int(np.searchsorted(prefix, oid_range.low, side="left"))
    hi_idx = prefix.size if oid_range.high is None else int(
        np.searchsorted(prefix, oid_range.high, side="right"))
    if hi_idx <= lo_idx:
        return OidRange(low=1, high=0)  # empty range: no subject can match
    subjects = block.subject_column.data
    low_subject = int(subjects[valid_positions[lo_idx]])
    high_subject = int(subjects[valid_positions[hi_idx - 1]])
    return OidRange(low=low_subject, high=high_subject)


def fk_range_from_zonemap(block: CSBlock, constrained_predicate: int, oid_range: OidRange,
                          fk_predicate: int) -> Optional[OidRange]:
    """Bounds of a foreign-key column over the rows surviving a zone-map prune.

    Given a range constraint on one property (e.g. LINEITEM ``shipdate``),
    use its zone map to find the candidate row ranges and return the min/max
    of the foreign-key column (e.g. the referenced ORDERS subject OIDs) over
    those rows — the restriction that can be pushed into the other CS.
    """
    zone_map = block.zone_map(constrained_predicate)
    if zone_map is None or not block.has_property(fk_predicate):
        return None
    fk_zone_map = block.zone_map(fk_predicate)
    ranges = zone_map.candidate_row_ranges(oid_range.low, oid_range.high)
    if not ranges:
        return OidRange(low=1, high=0)
    low: Optional[int] = None
    high: Optional[int] = None
    fk_values = block.column(fk_predicate).data
    for start, stop in ranges:
        if fk_zone_map is not None:
            bounds = fk_zone_map.value_bounds_for_rows(start, stop)
        else:
            chunk = fk_values[start:stop]
            chunk = chunk[chunk != NULL_OID]
            bounds = (int(chunk.min()), int(chunk.max())) if chunk.size else None
        if bounds is None:
            continue
        low = bounds[0] if low is None else min(low, bounds[0])
        high = bounds[1] if high is None else max(high, bounds[1])
    if low is None or high is None:
        return None
    return OidRange(low=low, high=high)
