"""Execution context: everything operators need at run time."""

from __future__ import annotations

import copy

from dataclasses import dataclass, field
from typing import Optional

from ..columnar import BufferPool, CostModel, CostTracker
from ..cs import EmergentSchema
from ..errors import ExecutionError
from ..model import TermDictionary
from ..obs import NULL_ACTIVE_QUERY, NULL_TRACER
from ..storage import ClusteredStore, ExhaustiveIndexStore
from .values import ValueDecoder, ValueEncoder


@dataclass
class ExecutionContext:
    """Shared state for one query execution.

    The context bundles the dictionary, the available physical stores, the
    buffer pool whose tracker collects cost counters, and the value
    encoder/decoder bridges.  Operators read from whichever store their plan
    scheme targets; the executor snapshots the tracker around the run.
    """

    dictionary: TermDictionary
    pool: BufferPool
    index_store: Optional[ExhaustiveIndexStore] = None
    clustered_store: Optional[ClusteredStore] = None
    schema: Optional[EmergentSchema] = None
    cost_model: CostModel = field(default_factory=CostModel)
    delta: Optional[object] = None
    """Pending-write overlay (a :class:`repro.updates.DeltaStore`), duck-typed
    so the engine layer stays import-free of the updates package.  Scans merge
    ``base ∪ delta − tombstones`` whenever a non-empty delta is attached."""
    batch_size: int = 1024
    """Rows per batch flowing between operators (from
    :attr:`repro.core.StoreConfig.batch_size`).  Size 1 degenerates to
    row-at-a-time execution; both sizes must produce identical answers."""
    tracer: object = NULL_TRACER
    """Per-query span recorder (:class:`repro.obs.QueryTrace`); the shared
    no-op :data:`repro.obs.NULL_TRACER` by default, so untraced runs pay one
    ``tracer.enabled`` attribute check per operator call."""
    metrics: Optional[object] = None
    """Optional :class:`repro.obs.MetricsRegistry` the executor feeds
    batch/row throughput counters into (``None`` disables them)."""
    active_query: object = NULL_ACTIVE_QUERY
    """Live registry handle (:class:`repro.obs.ActiveQuery`) for this run —
    carries the cooperative-cancellation flag and per-operator row counts;
    the shared no-op :data:`repro.obs.NULL_ACTIVE_QUERY` by default, so an
    unregistered run pays two attribute checks per operator call."""
    encoder: ValueEncoder = field(init=False)
    decoder: ValueDecoder = field(init=False)

    def __post_init__(self) -> None:
        self.encoder = ValueEncoder(self.dictionary)
        self.decoder = ValueDecoder(self.dictionary)

    def with_tracer(self, tracer) -> "ExecutionContext":
        """A shallow copy of this context with ``tracer`` attached.

        Shares the encoder/decoder (and every store reference) with the
        original, so dictionary-growth invalidation keeps propagating; only
        the tracer slot differs.
        """
        clone = copy.copy(self)
        clone.tracer = tracer
        return clone

    def with_observation(self, tracer=None, active=None) -> "ExecutionContext":
        """A shallow copy with a tracer and/or active-query handle attached.

        Like :meth:`with_tracer`, the clone shares every store reference
        with the original; only the observation slots differ.  ``None``
        leaves the corresponding slot at the original's value.
        """
        if tracer is None and active is None:
            return self
        clone = copy.copy(self)
        if tracer is not None:
            clone.tracer = tracer
        if active is not None:
            clone.active_query = active
        return clone

    @property
    def tracker(self) -> CostTracker:
        return self.pool.tracker

    def require_index_store(self) -> ExhaustiveIndexStore:
        if self.index_store is None:
            raise ExecutionError("this plan requires the exhaustive index store, which is not loaded")
        return self.index_store

    def require_clustered_store(self) -> ClusteredStore:
        if self.clustered_store is None:
            raise ExecutionError("this plan requires the clustered store, which is not built")
        return self.clustered_store

    def has_clustered_store(self) -> bool:
        return self.clustered_store is not None

    def has_pending_delta(self) -> bool:
        """Whether a non-empty write overlay is attached."""
        return self.delta is not None and not self.delta.is_empty()

    def active_delta(self):
        """The delta store when it has pending writes, else ``None``."""
        if self.has_pending_delta():
            return self.delta
        return None
