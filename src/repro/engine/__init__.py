"""Query engine: binding tables, batches, physical operators,
RDFscan/RDFjoin and the executor."""

from . import kernels
from .bindings import (
    Batch,
    BatchEmitter,
    BindingTable,
    concat_tables,
    cross_join,
    hash_join,
    join_tables,
)
from .context import ExecutionContext
from .executor import execute_plan, explain_plan
from .expressions import AggregateSpec, BinaryOp, Expression, NumericConst, NumericVar
from .operators import (
    AggregateOp,
    DistinctOp,
    ExtendOp,
    FilterEqualOp,
    FilterRangeOp,
    HashJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializedOp,
    NestedLoopIndexJoinOp,
    OrderByOp,
    ProjectOp,
)
from .plan import (
    OidRange,
    PatternTerm,
    PhysicalOperator,
    StarPattern,
    StarProperty,
    TriplePatternPlan,
)
from .rdfscan import (
    RDFJoinOp,
    RDFScanOp,
    fk_range_from_zonemap,
    subject_range_for_property_range,
)
from .values import ValueDecoder, ValueEncoder

__all__ = [
    "AggregateOp",
    "AggregateSpec",
    "Batch",
    "BatchEmitter",
    "BinaryOp",
    "BindingTable",
    "DistinctOp",
    "ExecutionContext",
    "Expression",
    "ExtendOp",
    "FilterEqualOp",
    "FilterRangeOp",
    "HashJoinOp",
    "IndexScanOp",
    "LimitOp",
    "MaterializedOp",
    "NestedLoopIndexJoinOp",
    "NumericConst",
    "NumericVar",
    "OidRange",
    "OrderByOp",
    "PatternTerm",
    "PhysicalOperator",
    "ProjectOp",
    "RDFJoinOp",
    "RDFScanOp",
    "StarPattern",
    "StarProperty",
    "TriplePatternPlan",
    "ValueDecoder",
    "ValueEncoder",
    "concat_tables",
    "cross_join",
    "execute_plan",
    "explain_plan",
    "fk_range_from_zonemap",
    "hash_join",
    "join_tables",
    "kernels",
    "subject_range_for_property_range",
]
