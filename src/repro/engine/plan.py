"""Physical plan building blocks: pattern terms, triple patterns, star
patterns and the operator base class.

A *star pattern* is the unit the paper's new operators work on: a set of
triple patterns sharing one subject variable.  The Default plan scheme turns
each property of the star into its own index scan plus join; the
RDFscan/RDFjoin scheme evaluates the whole star in one operator.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import PlanError
from . import kernels
from .bindings import Batch, BatchEmitter, BindingTable, concat_tables


@dataclass(frozen=True)
class PatternTerm:
    """One slot of a triple pattern: either a variable or a constant OID."""

    var: Optional[str] = None
    oid: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.var is None) == (self.oid is None):
            raise PlanError("a pattern term is either a variable or a constant OID")

    @classmethod
    def variable(cls, name: str) -> "PatternTerm":
        return cls(var=name)

    @classmethod
    def constant(cls, oid: int) -> "PatternTerm":
        return cls(oid=int(oid))

    @property
    def is_variable(self) -> bool:
        return self.var is not None

    def describe(self) -> str:
        return f"?{self.var}" if self.is_variable else f"#{self.oid}"


@dataclass(frozen=True)
class OidRange:
    """An inclusive OID interval used for pushed-down range predicates.

    ``extra_oids`` carries literal OIDs that satisfy the predicate in *value*
    space but fall outside the interval in *OID* space: literals appended by
    updates after the last value-ordering pass live at the end of the
    dictionary regardless of their value, so a value range maps to one
    contiguous interval over the value-ordered region plus this explicit set
    for the tail.  Base columns only ever hold value-ordered OIDs, so the
    interval alone stays exact for them; merged delta rows are checked
    against the full predicate via :meth:`contains` / :meth:`mask`.
    """

    low: Optional[int] = None
    high: Optional[int] = None
    extra_oids: frozenset = frozenset()

    def is_unbounded(self) -> bool:
        return self.low is None and self.high is None and not self.extra_oids

    def is_empty_interval(self) -> bool:
        """Whether the ``[low, high]`` interval itself matches nothing.

        The conventional empty sentinel is ``OidRange(1, 0)``; extras may
        still match even when the interval is empty.
        """
        return self.low is not None and self.high is not None and self.high < self.low

    def _interval_contains(self, value: int) -> bool:
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def intersect(self, other: "OidRange") -> "OidRange":
        low = self.low if other.low is None else (other.low if self.low is None else max(self.low, other.low))
        high = self.high if other.high is None else (other.high if self.high is None else min(self.high, other.high))

        def in_interval(oid: int) -> bool:
            return (low is None or oid >= low) and (high is None or oid <= high)

        extras = frozenset(
            oid for oid in (self.extra_oids | other.extra_oids)
            if self.contains(oid) and other.contains(oid) and not in_interval(oid))
        return OidRange(low, high, extras)

    def contains(self, value: int) -> bool:
        if self._interval_contains(value):
            return True
        return value in self.extra_oids

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over a NumPy OID array."""
        extras = np.asarray(sorted(self.extra_oids), dtype=np.int64) if self.extra_oids else None
        return kernels.range_mask(values, self.low, self.high, extras)

    def describe(self) -> str:
        text = f"[{self.low if self.low is not None else '-inf'}, {self.high if self.high is not None else '+inf'}]"
        if self.extra_oids:
            text += f"+{len(self.extra_oids)}oids"
        return text


@dataclass(frozen=True)
class TriplePatternPlan:
    """A physical triple pattern: (subject, predicate, object) slots."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[str]:
        return [t.var for t in (self.subject, self.predicate, self.object) if t.var is not None]

    def describe(self) -> str:
        return f"{self.subject.describe()} {self.predicate.describe()} {self.object.describe()}"


@dataclass
class StarProperty:
    """One property of a star pattern.

    ``object_term`` binds the object slot (variable or constant); an
    additional OID range can be attached (from a FILTER or a zone-map
    push-down).  ``required`` distinguishes mandatory properties from
    OPTIONAL-like ones (not used by the paper's queries but kept for
    completeness).
    """

    predicate_oid: int
    object_term: PatternTerm
    oid_range: Optional[OidRange] = None
    required: bool = True

    def describe(self) -> str:
        parts = [f"p{self.predicate_oid} -> {self.object_term.describe()}"]
        if self.oid_range is not None and not self.oid_range.is_unbounded():
            parts.append(self.oid_range.describe())
        return " ".join(parts)


@dataclass
class StarPattern:
    """A set of properties sharing one subject variable."""

    subject_var: str
    properties: List[StarProperty] = field(default_factory=list)
    subject_range: Optional[OidRange] = None

    def predicate_oids(self) -> List[int]:
        return [prop.predicate_oid for prop in self.properties]

    def output_variables(self) -> List[str]:
        names = [self.subject_var]
        for prop in self.properties:
            if prop.object_term.is_variable and prop.object_term.var not in names:
                names.append(prop.object_term.var)
        return names

    def property_for(self, predicate_oid: int) -> Optional[StarProperty]:
        for prop in self.properties:
            if prop.predicate_oid == predicate_oid:
                return prop
        return None

    def describe(self) -> str:
        inner = "; ".join(prop.describe() for prop in self.properties)
        suffix = f" subj{self.subject_range.describe()}" if self.subject_range else ""
        return f"star(?{self.subject_var}: {inner}){suffix}"


_EXEC_LOCK_GUARD = threading.Lock()


class PhysicalOperator:
    """Base class of every physical operator.

    Execution is batched (Volcano-style, but a column batch at a time):
    :meth:`open` prepares the operator, :meth:`next_batch` yields
    :class:`~repro.engine.bindings.Batch` objects until ``None``, and
    :meth:`close` tears down.  Subclasses implement ``_open`` /
    ``_next_batch`` / ``_close``; operators that predate the batch protocol
    may instead implement the legacy ``_execute`` (full materialization) and
    inherit a default ``_open``/``_next_batch`` that slices its result into
    batches.  Every stream emits at least one (possibly empty) batch, so
    downstream operators always learn their input schema.

    The public :meth:`execute` drains the whole stream into one binding
    table — the entry point :func:`~repro.engine.executor.execute_plan`
    uses, and what nested blocking operators call on their children.  The
    base class records each operator's *actual* output cardinality (rows,
    never batches), so a plan that has run once shows estimated vs. actual
    row counts in :meth:`explain` (the ``EXPLAIN ANALYZE`` of this engine).
    The optimizer annotates :attr:`estimated_rows` at planning time.
    """

    estimated_rows: Optional[float] = None
    """Optimizer-estimated output rows (``None`` until a plan is annotated)."""
    actual_rows: Optional[int] = None
    """Output rows observed by the last execution (``None`` before any run)."""

    # -- batched execution protocol ----------------------------------------------

    def open(self, context) -> None:
        """Prepare the operator for a new run (resets row accounting)."""
        self._rows_emitted = 0
        tracer = context.tracer
        if tracer.enabled:
            span = tracer.enter(self, self.describe())
            try:
                self._open(context)
            finally:
                tracer.exit(span)
        else:
            self._open(context)

    def next_batch(self, context) -> Optional[Batch]:
        """The next output batch, or ``None`` when the stream is exhausted.

        Cooperative cancellation rides this boundary: when the run's
        :class:`~repro.obs.ActiveQuery` handle has ``cancel_requested``
        set, the call raises :class:`~repro.errors.QueryCancelledError`
        instead of producing — every operator level checks, so a cancel
        lands within one batch regardless of plan depth.
        """
        active = context.active_query
        if active.cancel_requested:
            active.raise_cancelled()
        tracer = context.tracer
        if tracer.enabled:
            span = tracer.enter(self, self.describe())
            batch = None
            try:
                batch = self._next_batch(context)
            finally:
                if batch is not None:
                    tracer.exit(span, rows=batch.live_count(), batches=1,
                                bytes=batch.payload_bytes())
                else:
                    tracer.exit(span)
        else:
            batch = self._next_batch(context)
        if batch is not None:
            self._rows_emitted += batch.live_count()
            if active.enabled:
                active.on_batch(self, batch.live_count())
        return batch

    def close(self, context) -> None:
        """Release per-run state and publish the observed cardinality.

        ``actual_rows`` is a most-recent-run convenience for interactive
        ``explain(analyze=True)``; cached plans are shared across snapshots,
        so concurrent executions race on it.  Per-run accounting that must
        not be clobbered belongs on the execution's
        :class:`~repro.obs.QueryTrace` (see ``context.tracer``), which is
        private to each run.
        """
        tracer = context.tracer
        if tracer.enabled:
            span = tracer.enter(self, self.describe())
            try:
                self._close(context)
            finally:
                tracer.exit(span)
        else:
            self._close(context)
        self.actual_rows = int(getattr(self, "_rows_emitted", 0))

    def _open(self, context) -> None:
        # legacy fallback: operators that only implement _execute() are
        # materialized once and their result is sliced into batches
        self._fallback_emitter = BatchEmitter(self._execute(context))

    def _next_batch(self, context) -> Optional[Batch]:
        emitter = getattr(self, "_fallback_emitter", None)
        if emitter is None:
            return None
        return emitter.next(context.batch_size)

    def _close(self, context) -> None:
        self.__dict__.pop("_fallback_emitter", None)

    def execute(self, context) -> BindingTable:
        """Run the operator to completion and return all live rows.

        Serialized per plan instance: cached plans may be shared between
        concurrent read snapshots, and the batch protocol keeps per-run
        state on the operators.
        """
        with self._execution_lock():
            self.open(context)
            tables: List[BindingTable] = []
            batches = 0
            rows = 0
            try:
                while True:
                    batch = self.next_batch(context)
                    if batch is None:
                        break
                    batches += 1
                    rows += batch.live_count()
                    tables.append(batch.compact())
            finally:
                self.close(context)
        metrics = context.metrics
        if metrics is not None:
            metrics.counter(
                "batches_emitted_total",
                "Batches emitted by root plan operators.").inc(batches)
            metrics.counter(
                "rows_emitted_total",
                "Rows emitted by root plan operators.").inc(rows)
        return concat_tables(tables)

    def _execution_lock(self) -> threading.Lock:
        lock = self.__dict__.get("_exec_lock")
        if lock is None:
            with _EXEC_LOCK_GUARD:
                lock = self.__dict__.setdefault("_exec_lock", threading.Lock())
        return lock

    def _execute(self, context) -> BindingTable:  # pragma: no cover - interface
        raise NotImplementedError

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return self.name()

    # -- plan inspection ---------------------------------------------------------

    def cardinality_note(self) -> str:
        """``est=… actual=…`` annotation used by :meth:`explain` (may be empty)."""
        parts = []
        if self.estimated_rows is not None:
            parts.append(f"est={self.estimated_rows:.0f}")
        if self.actual_rows is not None:
            parts.append(f"actual={self.actual_rows}")
        return " ".join(parts)

    def explain(self, indent: int = 0, trace=None) -> str:
        """Indented plan tree, one operator per line.

        Each line carries the operator's :meth:`describe` string plus, when
        available, its estimated and last-observed actual row counts.  When
        a :class:`~repro.obs.QueryTrace` from a run of this plan is passed,
        each line also gets a ``time=`` token with the operator's *self*
        wall time (child time excluded) — the ``EXPLAIN ANALYZE`` timing
        column.  Spans from a :class:`~repro.obs.QueryProfile` additionally
        contribute ``pages=`` (self buffer-pool reads) and, with memory
        sampling on, ``mem=`` columns via their ``explain_tokens`` hook.
        """
        note = self.cardinality_note()
        if trace is not None:
            span = trace.span_for(self)
            if span is not None:
                timing = f"time={span.self_seconds * 1000.0:.3f}ms"
                tokens = getattr(span, "explain_tokens", None)
                if tokens is not None:
                    timing = f"{timing} {tokens()}"
                note = f"{note} {timing}" if note else timing
        suffix = f"  ({note})" if note else ""
        lines = [("  " * indent) + self.describe() + suffix]
        for child in self.children():
            lines.append(child.explain(indent + 1, trace))
        return "\n".join(lines)

    def count_operators(self) -> int:
        """Total number of operators in the subtree (for Fig. 4 style stats)."""
        return 1 + sum(child.count_operators() for child in self.children())

    def count_joins(self) -> int:
        """Number of join operators in the subtree."""
        from .operators import HashJoinOp, NestedLoopIndexJoinOp  # local to avoid cycle
        from .rdfscan import RDFJoinOp

        own = 1 if isinstance(self, (HashJoinOp, NestedLoopIndexJoinOp, RDFJoinOp)) else 0
        return own + sum(child.count_joins() for child in self.children())

    def operator_names(self) -> Dict[str, int]:
        """Histogram of operator class names in the subtree."""
        histogram: Dict[str, int] = {self.name(): 1}
        for child in self.children():
            for name, count in child.operator_names().items():
                histogram[name] = histogram.get(name, 0) + count
        return histogram
