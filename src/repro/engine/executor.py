"""Plan execution with wall-clock and simulated cost measurement."""

from __future__ import annotations

import time
from typing import Tuple

from ..columnar import QueryCost
from .bindings import BindingTable
from .context import ExecutionContext
from .plan import PhysicalOperator


def execute_plan(plan: PhysicalOperator, context: ExecutionContext) -> Tuple[BindingTable, QueryCost]:
    """Execute a physical plan and return its result with cost accounting.

    The buffer-pool tracker is *not* reset, so repeated executions against a
    warm pool naturally show the cold/hot difference; the returned counters
    are the delta caused by this execution only.
    """
    baseline = context.tracker.snapshot()
    started = time.perf_counter()
    result = plan.execute(context)
    elapsed = time.perf_counter() - started
    if context.tracer.enabled:
        context.tracer.finish(elapsed)
    counters = context.tracker.diff(baseline)
    simulated = context.cost_model.simulated_seconds(counters)
    return result, QueryCost(wall_seconds=elapsed, counters=counters, simulated_seconds=simulated)


def explain_plan(plan: PhysicalOperator) -> str:
    """Return the indented operator tree of a plan."""
    return plan.explain()
