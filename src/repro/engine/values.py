"""Value handling between the OID world and the value world.

The engine executes on OIDs for as long as possible.  Two bridges to actual
values are needed:

* **range predicates**: because literal OIDs are assigned in value order at
  load time (see ``value_order_literals``), a value range such as
  ``"1994-01-01" <= ?d < "1995-01-01"`` corresponds to one contiguous OID
  interval; :class:`ValueEncoder` computes that interval by binary search
  over the value-ordered literal OID sequence, so the predicate can run as a
  cheap integer comparison (and feed zone maps);
* **arithmetic / aggregation**: SUM(?price * ?discount) needs the numeric
  values behind the OIDs; :class:`ValueDecoder` materializes a float for
  each OID, with caching.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Optional

import numpy as np

from ..model import Literal, Term, TermDictionary
from ..model.terms import term_sort_key
from .plan import OidRange


class ValueEncoder:
    """Maps value-space constants and ranges to OID-space equivalents."""

    def __init__(self, dictionary: TermDictionary) -> None:
        self.dictionary = dictionary
        self._literal_oids: Optional[list[int]] = None
        self._literal_keys: Optional[list[tuple]] = None

    def _ensure_literal_index(self) -> None:
        if self._literal_oids is not None:
            return
        oids = self.dictionary.sorted_literal_oids()
        self._literal_oids = oids
        self._literal_keys = [term_sort_key(self.dictionary.decode(oid)) for oid in oids]

    def invalidate(self) -> None:
        """Drop cached indexes (call after the dictionary is remapped)."""
        self._literal_oids = None
        self._literal_keys = None

    def term_oid(self, term: Term) -> Optional[int]:
        """OID of an exact term, or ``None`` if it does not occur in the data."""
        return self.dictionary.lookup_term(term)

    def _range_indexes(self, low: Optional[Literal], high: Optional[Literal],
                       low_inclusive: bool, high_inclusive: bool) -> tuple[int, int]:
        """Bounds of a value range inside the value-sorted literal index."""
        self._ensure_literal_index()
        assert self._literal_keys is not None
        keys = self._literal_keys
        lo_idx = 0
        hi_idx = len(keys)
        if low is not None:
            key = term_sort_key(low)
            lo_idx = bisect_left(keys, key) if low_inclusive else bisect_right(keys, key)
        if high is not None:
            key = term_sort_key(high)
            hi_idx = bisect_right(keys, key) if high_inclusive else bisect_left(keys, key)
        return lo_idx, hi_idx

    def literal_range(
        self,
        low: Optional[Literal],
        high: Optional[Literal],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Optional[OidRange]:
        """Translate a literal value range to an :class:`OidRange`.

        Literal OIDs below the dictionary's value-order watermark form one
        contiguous OID interval per value range (exact for every base
        column).  Literals appended by updates after the last value-ordering
        pass are out of OID order, so the ones whose *value* falls in range
        are carried individually in :attr:`OidRange.extra_oids`; merged
        delta scans check them explicitly.  Returns ``None`` when no stored
        literal satisfies the range at all.
        """
        lo_idx, hi_idx = self._range_indexes(low, high, low_inclusive, high_inclusive)
        if hi_idx <= lo_idx:
            return None
        assert self._literal_oids is not None
        watermark = self.dictionary.value_order_watermark
        in_range = self._literal_oids[lo_idx:hi_idx]
        clean = [oid for oid in in_range if oid < watermark]
        extras = frozenset(oid for oid in in_range if oid >= watermark)
        if clean:
            # clean OIDs are value-ordered, so the value slice is one OID run
            return OidRange(clean[0], clean[-1], extras)
        # nothing in the value-ordered region: an empty interval plus extras
        return OidRange(1, 0, extras)


class ValueDecoder:
    """Materializes numeric / python values behind OIDs, with caching."""

    def __init__(self, dictionary: TermDictionary) -> None:
        self.dictionary = dictionary
        self._numeric_cache: Dict[int, float] = {}

    def numeric(self, oid: int) -> float:
        """Numeric value of an OID (NaN for non-numeric or unknown terms)."""
        cached = self._numeric_cache.get(oid)
        if cached is not None:
            return cached
        value = float("nan")
        if oid >= 0:
            term = self.dictionary.decode(oid)
            if isinstance(term, Literal):
                python_value = term.to_python()
                if isinstance(python_value, bool):
                    value = 1.0 if python_value else 0.0
                elif isinstance(python_value, (int, float)):
                    value = float(python_value)
        self._numeric_cache[oid] = value
        return value

    def numeric_column(self, oids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`numeric` over an OID column."""
        out = np.empty(len(oids), dtype=np.float64)
        for i, oid in enumerate(oids):
            out[i] = self.numeric(int(oid))
        return out

    def python_value(self, oid: int):
        """Decoded Python value of an OID (IRI string, literal value, ...).

        ``NULL_OID`` (any negative OID) decodes to ``None`` — the SQL view
        produces NULL bindings for absent 0..1 columns.
        """
        if oid < 0:
            return None
        term = self.dictionary.decode(int(oid))
        if isinstance(term, Literal):
            return term.to_python()
        return str(term)

    def term(self, oid: int) -> Term:
        """The decoded term itself."""
        return self.dictionary.decode(int(oid))
