"""Binding tables: the tuple streams flowing between physical operators.

A :class:`BindingTable` is a small column-oriented relation: a mapping from
variable name to a NumPy array, all of equal length.  OID columns are
``int64``; computed value columns (aggregation inputs/outputs) are
``float64``.  Operators consume and produce binding tables, mirroring how a
column store passes BATs between operators rather than row tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ExecutionError
from . import kernels


class BindingTable:
    """An ordered set of named columns of equal length."""

    def __init__(self, columns: Mapping[str, np.ndarray] | None = None) -> None:
        self.columns: Dict[str, np.ndarray] = {}
        if columns:
            for name, values in columns.items():
                self.columns[name] = np.asarray(values)
        self._validate()

    def _validate(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"binding table columns have unequal lengths: {lengths}")

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(cls, names: Iterable[str] = ()) -> "BindingTable":
        return cls({name: np.empty(0, dtype=np.int64) for name in names})

    @classmethod
    def single_column(cls, name: str, values: np.ndarray | Sequence[int]) -> "BindingTable":
        return cls({name: np.asarray(values)})

    def copy(self) -> "BindingTable":
        return BindingTable({name: values.copy() for name, values in self.columns.items()})

    # -- shape ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return int(len(next(iter(self.columns.values()))))

    @property
    def variables(self) -> List[str]:
        return list(self.columns)

    def has(self, name: str) -> bool:
        return name in self.columns

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise ExecutionError(f"unknown binding variable {name!r}; have {sorted(self.columns)}")
        return self.columns[name]

    # -- transformations ----------------------------------------------------------

    def with_column(self, name: str, values: np.ndarray) -> "BindingTable":
        """Return a new table with an added/replaced column."""
        values = np.asarray(values)
        if self.columns and len(values) != self.num_rows:
            raise ExecutionError(
                f"column {name!r} has {len(values)} rows, table has {self.num_rows}")
        merged = dict(self.columns)
        merged[name] = values
        return BindingTable(merged)

    def select_rows(self, positions: np.ndarray) -> "BindingTable":
        """Return a new table keeping only the given row positions."""
        return BindingTable({name: values[positions] for name, values in self.columns.items()})

    def filter_mask(self, mask: np.ndarray) -> "BindingTable":
        """Return a new table keeping rows where ``mask`` is True."""
        return BindingTable({name: values[mask] for name, values in self.columns.items()})

    def project(self, names: Sequence[str]) -> "BindingTable":
        """Return a new table containing only the named columns (in order)."""
        return BindingTable({name: self.column(name) for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "BindingTable":
        """Return a new table with columns renamed according to ``mapping``."""
        return BindingTable({mapping.get(name, name): values for name, values in self.columns.items()})

    def concat(self, other: "BindingTable") -> "BindingTable":
        """Vertical union of two tables with identical variables."""
        if not self.columns:
            return other.copy()
        if not other.columns:
            return self.copy()
        if set(self.columns) != set(other.columns):
            raise ExecutionError(
                f"cannot concatenate tables with different variables: "
                f"{sorted(self.columns)} vs {sorted(other.columns)}")
        return BindingTable({
            name: np.concatenate([self.columns[name], other.columns[name]])
            for name in self.columns
        })

    def distinct(self) -> "BindingTable":
        """Return a new table with duplicate rows removed (order not preserved)."""
        if not self.columns or self.num_rows == 0:
            return self.copy()
        names = sorted(self.columns)
        stacked = np.column_stack([np.asarray(self.columns[name], dtype=np.float64) for name in names])
        _, idx = np.unique(stacked, axis=0, return_index=True)
        return self.select_rows(np.sort(idx))

    def sort_permutation(self, keys: Sequence[tuple[str, bool]]) -> np.ndarray:
        """The row permutation that sorts this table by ``(column, descending)``
        keys, first key primary.  Exposed so a caller can sort *another*
        aligned table by this one's keys (ORDER BY re-ranks key columns when
        literal OIDs are temporarily out of value order)."""
        order = np.arange(self.num_rows)
        if self.num_rows == 0 or not keys:
            return order
        # apply keys from least to most significant for a stable lexsort-like result
        for name, descending in reversed(list(keys)):
            values = self.column(name)[order]
            if descending:
                # negate instead of reversing so that ties keep their prior order
                positions = np.argsort(-values.astype(np.float64), kind="stable")
            else:
                positions = np.argsort(values, kind="stable")
            order = order[positions]
        return order

    def sort_by(self, keys: Sequence[tuple[str, bool]]) -> "BindingTable":
        """Sort rows by ``(column, descending)`` keys, first key primary."""
        if self.num_rows == 0 or not keys:
            return self.copy()
        return self.select_rows(self.sort_permutation(keys))

    def head(self, limit: int) -> "BindingTable":
        """Return the first ``limit`` rows."""
        return self.select_rows(np.arange(min(limit, self.num_rows)))

    def slice(self, start: int, stop: int) -> "BindingTable":
        """Return rows ``[start, stop)`` as NumPy views (no copies)."""
        return BindingTable({name: values[start:stop] for name, values in self.columns.items()})

    # -- output -------------------------------------------------------------------

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Iterate rows as dictionaries (materializes Python objects)."""
        names = self.variables
        for i in range(self.num_rows):
            yield {name: self.columns[name][i].item() for name in names}

    def to_set(self, names: Sequence[str] | None = None) -> set[tuple]:
        """Return rows as a set of tuples (for order-insensitive comparison)."""
        names = list(names) if names else self.variables
        if self.num_rows == 0:
            return set()
        arrays = [self.column(name) for name in names]
        return {tuple(array[i].item() for array in arrays) for i in range(self.num_rows)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BindingTable(vars={self.variables}, rows={self.num_rows})"


def cross_join(left: BindingTable, right: BindingTable) -> BindingTable:
    """Cartesian product of two binding tables with disjoint variables."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise ExecutionError(f"cross join requires disjoint variables; shared: {sorted(overlap)}")
    n_left, n_right = left.num_rows, right.num_rows
    left_idx = np.repeat(np.arange(n_left), n_right)
    right_idx = np.tile(np.arange(n_right), n_left)
    columns: Dict[str, np.ndarray] = {}
    for name, values in left.columns.items():
        columns[name] = values[left_idx]
    for name, values in right.columns.items():
        columns[name] = values[right_idx]
    return BindingTable(columns)


def join_tables(build: BindingTable, probe: BindingTable,
                join_vars: Sequence[str]) -> BindingTable:
    """Equi-join with fixed build/probe roles (vectorized).

    The output is probe-major with build rows in input order inside one probe
    row, so a streaming join that feeds probe batches through this function
    produces the same row order regardless of how the probe side is batched.
    """
    if not join_vars:
        return cross_join(probe, build)
    build_idx, probe_idx = kernels.hash_join_indices(
        [build.column(name) for name in join_vars],
        [probe.column(name) for name in join_vars])
    build_sel = build.select_rows(build_idx)
    probe_sel = probe.select_rows(probe_idx)
    columns = dict(build_sel.columns)
    for name, values in probe_sel.columns.items():
        if name not in columns:
            columns[name] = values
    return BindingTable(columns)


def hash_join(left: BindingTable, right: BindingTable, join_vars: Sequence[str]) -> BindingTable:
    """Equi-join two binding tables on shared variables (hash based).

    Builds on the smaller side; the row loops of the original implementation
    are replaced by the vectorized :func:`~repro.engine.kernels.hash_join_indices`
    kernel, preserving the original output order (probe-major).
    """
    if not join_vars:
        return cross_join(left, right)
    for name in join_vars:
        left.column(name)
        right.column(name)
    # build on the smaller side
    build, probe = (left, right) if left.num_rows <= right.num_rows else (right, left)
    return join_tables(build, probe, join_vars)


def concat_tables(tables: Sequence[BindingTable]) -> BindingTable:
    """Single-pass vertical union of many tables with identical variables.

    Unlike chained :meth:`BindingTable.concat` this copies every column once,
    which keeps draining a size-1 batch stream linear instead of quadratic.
    """
    live = [table for table in tables if table.num_rows]
    if not live:
        return tables[0] if tables else BindingTable.empty()
    if len(live) == 1:
        return live[0]
    names = live[0].variables
    return BindingTable({
        name: np.concatenate([table.column(name) for table in live])
        for name in names
    })


class Batch:
    """One slice of a binding stream: a table plus an optional validity mask.

    ``valid`` marks live rows; ``None`` means all rows are live.  Filters AND
    their predicate into the mask instead of copying survivors, so a chain of
    filters over one batch touches each column once at :meth:`compact` time.
    """

    __slots__ = ("table", "valid")

    def __init__(self, table: BindingTable, valid: Optional[np.ndarray] = None) -> None:
        self.table = table
        if valid is not None:
            valid = np.asarray(valid, dtype=bool)
            if len(valid) != table.num_rows:
                raise ExecutionError(
                    f"validity mask has {len(valid)} rows, batch has {table.num_rows}")
            if valid.all():
                valid = None
        self.valid = valid

    @property
    def variables(self) -> List[str]:
        return self.table.variables

    def live_count(self) -> int:
        """Number of valid rows in the batch."""
        if self.valid is None:
            return self.table.num_rows
        return int(np.count_nonzero(self.valid))

    def payload_bytes(self) -> int:
        """Bytes of live binding data carried by the batch.

        Live rows times the per-row width of the table's columns (8-byte
        OIDs / float64 values) — what a downstream operator actually
        consumes, used by the profiler's per-operator byte accounting.
        """
        row_bytes = sum(values.dtype.itemsize
                        for values in self.table.columns.values())
        return self.live_count() * row_bytes

    def mask_valid(self, mask: np.ndarray) -> "Batch":
        """AND an additional predicate mask into the batch (no row copies)."""
        combined = mask if self.valid is None else (self.valid & mask)
        return Batch(self.table, combined)

    def compact(self) -> BindingTable:
        """Materialize the live rows as a plain binding table."""
        if self.valid is None:
            return self.table
        return self.table.filter_mask(self.valid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch(vars={self.variables}, rows={self.table.num_rows}, live={self.live_count()})"


class BatchEmitter:
    """Emit a materialized table as a sequence of batch-sized slices.

    Blocking operators (scans, sorts, aggregates) compute their full output
    in ``_open`` and stream it out through one of these.  At least one batch
    is always emitted — an empty result still yields one schema-complete
    empty batch, which downstream operators rely on to learn their input
    variables.
    """

    def __init__(self, table: BindingTable) -> None:
        self.table = table
        self._offset = 0
        self._emitted = False

    def next(self, batch_size: int) -> Optional[Batch]:
        total = self.table.num_rows
        if self._offset >= total:
            if self._emitted:
                return None
            self._emitted = True
            return Batch(self.table.slice(0, 0))
        start = self._offset
        stop = min(total, start + batch_size)
        self._offset = stop
        self._emitted = True
        return Batch(self.table.slice(start, stop))
