"""MergeScan: the read-side of the write path.

Every physical access path — index scans over the exhaustive permutation
store, the per-property probes of nested-loop index joins, RDFscan's merged
property pairs and the clustered CS-block scans — must see the same logical
graph: ``base ∪ delta − tombstones``.  The base structures stay immutable;
this module supplies the small merge helpers the operators call when the
execution context carries a pending :class:`~repro.updates.DeltaStore`.

The delta object is duck-typed (the engine layer does not import the
updates package): it only needs ``scan_pattern``, ``tombstone_mask``,
``pair_tombstone_mask``, ``subjects_touching``, ``object_values``,
``delta_subjects`` and ``is_tombstoned``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .kernels import expand_ranges


def merge_pattern_rows(delta, rows: np.ndarray,
                       s: Optional[int], p: Optional[int], o: Optional[int]) -> np.ndarray:
    """Merge one triple pattern's base rows with the pending delta.

    ``rows`` is the base scan's ``(n, 3)`` S/P/O result; tombstoned rows are
    dropped and matching delta inserts appended.  Range constraints need no
    special handling here — callers apply them to the merged rows exactly as
    they would to base rows.
    """
    if rows.size:
        mask = delta.tombstone_mask(rows, predicate=p)
        if mask.any():
            rows = rows[~mask]
    extra = delta.scan_pattern(s=s, p=p, o=o, fetch="spo")
    if extra.size == 0:
        return rows
    if rows.size == 0:
        return extra
    return np.vstack([rows, extra])


def merge_property_pairs(delta, subjects: np.ndarray, objects: np.ndarray,
                         predicate: int, constant_object: Optional[int] = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Merge one star property's base ``(subject, object)`` pairs with the delta.

    Used by the parse-order RDFscan path: the caller re-sorts by subject and
    applies its object/subject ranges after the merge, so ordering and
    filtering stay uniform across base and delta pairs.
    """
    if subjects.size:
        mask = delta.pair_tombstone_mask(predicate, subjects, objects)
        if mask.any():
            keep = ~mask
            subjects, objects = subjects[keep], objects[keep]
    extra = delta.scan_pattern(p=predicate, o=constant_object, fetch="so")
    if extra.size == 0:
        return subjects, objects
    return (np.concatenate([subjects, extra[:, 0]]),
            np.concatenate([objects, extra[:, 1]]))


def merged_subject_objects(delta, predicate: int, subjects: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Delta ``(input_row, object)`` matches for a vector of probe subjects.

    Returns parallel arrays: the index into ``subjects`` of each match and
    the matching object OID — the delta half of a nested-loop index probe.
    """
    pairs = delta.scan_pattern(p=predicate, fetch="so")
    if pairs.size == 0 or subjects.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    delta_subjects, delta_objects = pairs[:, 0], pairs[:, 1]
    order = np.argsort(delta_subjects, kind="stable")
    delta_subjects, delta_objects = delta_subjects[order], delta_objects[order]
    lo = np.searchsorted(delta_subjects, subjects, side="left")
    hi = np.searchsorted(delta_subjects, subjects, side="right")
    input_rows, positions = expand_ranges(lo, hi)
    if input_rows.size == 0:
        return input_rows, np.empty(0, dtype=np.int64)
    return input_rows, delta_objects[positions]
