"""Persistence: on-disk snapshots, the write-ahead log and lazy loading.

The paper's host system is a full database engine, so durability comes for
free there; this package supplies it for the reproduction.  Three pieces:

* **snapshots** (:mod:`repro.persist.snapshot`) — a versioned directory
  format serializing the dictionary, emergent schema, base triple matrix,
  clustered column matrices, permutation projections, per-column statistics
  and zone maps, all under a checksummed manifest;
* **write-ahead log** (:mod:`repro.persist.wal`) — framed, CRC-protected
  records of the ``RDFStore.update()`` requests applied since the snapshot,
  replayed at open so acknowledged writes survive crashes;
* **lazy loading** — reopened columns and projections register with the
  buffer pool and materialize from their array files on first scan, so
  ``RDFStore.open()`` is metadata-speed regardless of database size.

Entry points live on the store: ``RDFStore.save(path)``,
``RDFStore.open(path)`` and ``store.checkpoint()``.  See
``docs/persistence.md`` for the format layout and crash semantics.
"""

from .io import array_shape, read_array, write_array
from .snapshot import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILE,
    SnapshotInfo,
    SnapshotReader,
    write_snapshot,
)
from .wal import WriteAheadLog

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "SnapshotInfo",
    "SnapshotReader",
    "WriteAheadLog",
    "array_shape",
    "read_array",
    "write_array",
    "write_snapshot",
]
