"""JSON codec for the emergent schema.

The schema is the one structure that is genuinely expensive to recreate —
it is the output of characteristic-set discovery — so the snapshot persists
it in full: every table with its property specs and member subjects, the
foreign-key graph, coverage accounting and the irregular-subject list.
``subject_to_cs`` is not stored; it is exactly the inverse of the tables'
subject lists and is rebuilt on decode.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cs import EmergentSchema
from ..cs.schema_model import (
    CharacteristicSet,
    ForeignKey,
    Multiplicity,
    PropertyKind,
    PropertySpec,
    SchemaCoverage,
)
from ..errors import PersistenceError


def schema_to_dict(schema: EmergentSchema) -> dict:
    """Serialize an :class:`EmergentSchema` to a JSON-ready dictionary."""
    return {
        "tables": [_table_to_dict(table) for table in schema.tables.values()],
        "foreign_keys": [
            {
                "source_cs": fk.source_cs,
                "predicate_oid": fk.predicate_oid,
                "target_cs": fk.target_cs,
                "confidence": fk.confidence,
            }
            for fk in schema.foreign_keys
        ],
        "coverage": {
            "total_triples": schema.coverage.total_triples,
            "covered_triples": schema.coverage.covered_triples,
            "total_subjects": schema.coverage.total_subjects,
            "covered_subjects": schema.coverage.covered_subjects,
        },
        "irregular_subjects": list(schema.irregular_subjects),
    }


def schema_from_dict(payload: dict) -> EmergentSchema:
    """Rebuild a schema persisted by :func:`schema_to_dict`."""
    try:
        schema = EmergentSchema()
        for table_payload in payload["tables"]:
            table = _table_from_dict(table_payload)
            schema.tables[table.cs_id] = table
            for subject in table.subjects:
                schema.subject_to_cs[subject] = table.cs_id
        schema.foreign_keys = [
            ForeignKey(
                source_cs=int(fk["source_cs"]),
                predicate_oid=int(fk["predicate_oid"]),
                target_cs=int(fk["target_cs"]),
                confidence=float(fk["confidence"]),
            )
            for fk in payload["foreign_keys"]
        ]
        coverage = payload["coverage"]
        schema.coverage = SchemaCoverage(
            total_triples=int(coverage["total_triples"]),
            covered_triples=int(coverage["covered_triples"]),
            total_subjects=int(coverage["total_subjects"]),
            covered_subjects=int(coverage["covered_subjects"]),
        )
        schema.irregular_subjects = [int(s) for s in payload["irregular_subjects"]]
        return schema
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed schema payload: {exc}") from exc


# -- tables -------------------------------------------------------------------


def _table_to_dict(table: CharacteristicSet) -> dict:
    return {
        "cs_id": table.cs_id,
        "label": table.label,
        "support": table.support,
        "indirect_support": table.indirect_support,
        "merged_from": list(table.merged_from),
        "type_signature": list(table.type_signature),
        "subjects": [int(s) for s in table.subjects],
        "properties": [_spec_to_dict(spec) for spec in table.properties.values()],
    }


def _table_from_dict(payload: dict) -> CharacteristicSet:
    properties: Dict[int, PropertySpec] = {}
    for spec_payload in payload["properties"]:
        spec = _spec_from_dict(spec_payload)
        properties[spec.predicate_oid] = spec
    return CharacteristicSet(
        cs_id=int(payload["cs_id"]),
        properties=properties,
        subjects=[int(s) for s in payload["subjects"]],
        support=int(payload["support"]),
        indirect_support=int(payload["indirect_support"]),
        label=str(payload["label"]),
        merged_from=[int(m) for m in payload["merged_from"]],
        type_signature=tuple(tuple(e) if isinstance(e, list) else e
                             for e in payload["type_signature"]),
    )


def _spec_to_dict(spec: PropertySpec) -> dict:
    return {
        "predicate_oid": spec.predicate_oid,
        "multiplicity": spec.multiplicity.value,
        "kind": spec.kind.value,
        "presence": spec.presence,
        "mean_multiplicity": spec.mean_multiplicity,
        "fk_target_cs": spec.fk_target_cs,
        "fk_confidence": spec.fk_confidence,
        "label": spec.label,
    }


def _spec_from_dict(payload: dict) -> PropertySpec:
    return PropertySpec(
        predicate_oid=int(payload["predicate_oid"]),
        multiplicity=Multiplicity(payload["multiplicity"]),
        kind=PropertyKind(payload["kind"]),
        presence=float(payload["presence"]),
        mean_multiplicity=float(payload["mean_multiplicity"]),
        fk_target_cs=_opt_int(payload["fk_target_cs"]),
        fk_confidence=float(payload["fk_confidence"]),
        label=str(payload["label"]),
    )


def _opt_int(value) -> Optional[int]:
    return None if value is None else int(value)
