"""Checksummed binary array files and manifest I/O primitives.

Every numeric structure in a snapshot (triple matrices, clustered columns,
zone-map tables) is one *array file*: a fixed header followed by raw
little-endian int64 data.

Header layout (32 bytes, little-endian)::

    magic   4s   b"RCOL"
    version u32  format version (1)
    rows    u64  first dimension
    cols    u64  second dimension (1 for one-dimensional arrays)
    crc32   u32  CRC-32 of the data bytes
    flags   u32  reserved (0)

The CRC is verified on every read — including lazy reads at first scan —
so a corrupt or truncated column file surfaces as a
:class:`~repro.errors.PersistenceError` instead of silently wrong query
answers.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..errors import PersistenceError

ARRAY_MAGIC = b"RCOL"
ARRAY_VERSION = 1
_HEADER = struct.Struct("<4sIQQII")


def write_array(path: Path, array: np.ndarray) -> int:
    """Write an int64 array (1-D or 2-D) to ``path``; returns the data CRC."""
    data = np.ascontiguousarray(np.asarray(array, dtype=np.int64))
    if data.ndim == 1:
        rows, cols = data.shape[0], 1
    elif data.ndim == 2:
        rows, cols = data.shape
    else:
        raise PersistenceError(f"cannot persist a {data.ndim}-dimensional array")
    # serialize explicitly little-endian: the format (and read_array) is
    # defined as "<i8" regardless of the host's native byte order
    payload = data.astype("<i8", copy=False).tobytes(order="C")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = _HEADER.pack(ARRAY_MAGIC, ARRAY_VERSION, rows, cols, crc, 0)
    with open(path, "wb") as sink:
        sink.write(header)
        sink.write(payload)
        sink.flush()
        os.fsync(sink.fileno())
    return crc


def read_array(path: Path, expect_crc: Optional[int] = None) -> np.ndarray:
    """Read an array file, verifying magic, version and checksum.

    ``expect_crc`` optionally cross-checks the manifest's recorded CRC
    against the file's embedded one (defense against a manifest/file
    mismatch after a partially overwritten snapshot).
    """
    try:
        with open(path, "rb") as source:
            raw_header = source.read(_HEADER.size)
            if len(raw_header) < _HEADER.size:
                raise PersistenceError(f"truncated array file {path}")
            magic, version, rows, cols, crc, _flags = _HEADER.unpack(raw_header)
            if magic != ARRAY_MAGIC:
                raise PersistenceError(f"{path} is not a repro array file (bad magic)")
            if version != ARRAY_VERSION:
                raise PersistenceError(
                    f"{path} uses array format v{version}; this build reads v{ARRAY_VERSION}")
            payload = source.read()
    except OSError as exc:
        raise PersistenceError(f"cannot read array file {path}: {exc}") from exc
    expected_bytes = rows * cols * 8
    if len(payload) != expected_bytes:
        raise PersistenceError(
            f"{path} holds {len(payload)} data bytes, header promises {expected_bytes}")
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != crc:
        raise PersistenceError(f"checksum mismatch in {path}: file is corrupt")
    if expect_crc is not None and actual_crc != (expect_crc & 0xFFFFFFFF):
        raise PersistenceError(
            f"{path} does not match its manifest entry (snapshot partially overwritten?)")
    data = np.frombuffer(payload, dtype="<i8").astype(np.int64, copy=True)
    if cols == 1:
        return data
    return data.reshape(rows, cols)


def array_shape(path: Path) -> Tuple[int, int]:
    """Read only the header of an array file: ``(rows, cols)``."""
    try:
        with open(path, "rb") as source:
            raw_header = source.read(_HEADER.size)
    except OSError as exc:
        raise PersistenceError(f"cannot read array file {path}: {exc}") from exc
    if len(raw_header) < _HEADER.size:
        raise PersistenceError(f"truncated array file {path}")
    magic, _version, rows, cols, _crc, _flags = _HEADER.unpack(raw_header)
    if magic != ARRAY_MAGIC:
        raise PersistenceError(f"{path} is not a repro array file (bad magic)")
    return int(rows), int(cols)


# -- text + manifest files ----------------------------------------------------


def write_text(path: Path, text: str) -> int:
    """Write a UTF-8 text file (fsynced); returns the CRC-32 of its bytes."""
    payload = text.encode("utf-8")
    with open(path, "wb") as sink:
        sink.write(payload)
        sink.flush()
        os.fsync(sink.fileno())
    return zlib.crc32(payload) & 0xFFFFFFFF


def fsync_dir(path: Path) -> None:
    """Flush a directory's entries to stable storage (best-effort on
    platforms whose filesystems do not support directory fsync)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_text(path: Path, expect_crc: Optional[int] = None) -> str:
    """Read a UTF-8 text file, optionally verifying its manifest CRC."""
    try:
        payload = Path(path).read_bytes()
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    if expect_crc is not None:
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != (expect_crc & 0xFFFFFFFF):
            raise PersistenceError(f"checksum mismatch in {path}: file is corrupt")
    return payload.decode("utf-8")


def write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via a temporary file + rename so readers never see a
    half-written manifest; the parent directory is fsynced so the rename
    itself survives power loss."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    tmp = Path(str(path) + ".tmp")
    with open(tmp, "w", encoding="utf-8") as sink:
        sink.write(text)
        sink.flush()
        os.fsync(sink.fileno())
    os.replace(tmp, path)
    fsync_dir(Path(path).parent)


def read_json(path: Path) -> dict:
    """Read a JSON file, mapping I/O and syntax errors to PersistenceError."""
    try:
        with open(path, "r", encoding="utf-8") as source:
            return json.load(source)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{path} is not valid JSON: {exc}") from exc
