"""Snapshot writer and reader: the versioned on-disk database format.

A *database directory* holds a manifest pointing at the current snapshot
**generation** — a subdirectory named after the snapshot epoch::

    <db>/
      MANIFEST.json          -- format version, config, checksums, metadata,
                             -- and the name of the live generation
      gen-<epoch>/
        dictionary.nt        -- one Term.n3() line per OID, in OID order
        schema.json          -- emergent schema (tables, FKs, coverage)
        matrix.bin           -- base (n, 3) triple matrix, storage order
        wal.log              -- write-ahead log (see repro.persist.wal)
        columns/             -- one checksummed array file per column
          hsp.<order>.bin    -- the six sorted permutation projections
          clustered.cs<I>.subject.bin
          clustered.cs<I>.p<P>.bin
          clustered.irregular.bin
        zonemaps/
          cs<I>.p<P>.bin     -- (zones, 4) start/end/min/max tables

A save writes the complete new generation first (every file fsynced),
publishes it by atomically rewriting the manifest, and only then removes
superseded generations.  The previous snapshot — including its WAL and
every acknowledged update in it — therefore survives intact until the new
one is fully durable: a crash at any point leaves either the old
generation or the new one openable, never a torn mixture.  Every array
file additionally embeds a CRC that is verified when the file is read —
eagerly at open for small metadata, lazily at first scan for columns.

The reader rebuilds every structure **without recomputation**: the
dictionary is re-enumerated (not re-encoded), the schema is decoded (not
re-discovered), projections and clustered columns are registered as lazy
loaders (not re-sorted or re-clustered), and per-column statistics, zone
maps and predicate counts come straight from the manifest so the
cost-based optimizer prices plans exactly as it did before the save.
"""

from __future__ import annotations

import dataclasses
import shutil
import uuid
from datetime import datetime, timezone
from json import dumps as json_dumps, loads as json_loads
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..columnar import BufferPool, Column, ZoneMap
from ..columnar.stats import ColumnStats
from ..cs import EmergentSchema
from ..errors import PersistenceError
from ..model import TermDictionary
from ..rio import parse_term
from ..storage import ClusteredStore, ExhaustiveIndexStore, TripleTable
from ..storage.clustered import CSBlock
from .io import (
    fsync_dir,
    read_array,
    read_json,
    read_text,
    write_array,
    write_json_atomic,
    write_text,
)
from .schema_codec import schema_from_dict, schema_to_dict
from .wal import WriteAheadLog

FORMAT_NAME = "repro-db"
FORMAT_VERSION = 1
MANIFEST_FILE = "MANIFEST.json"
DICTIONARY_FILE = "dictionary.nt"
SCHEMA_FILE = "schema.json"
MATRIX_FILE = "matrix.bin"
WAL_FILE = "wal.log"
COLUMNS_DIR = "columns"
ZONEMAPS_DIR = "zonemaps"
GENERATION_PREFIX = "gen-"


def generation_dir(root: Path | str, manifest: dict) -> Path:
    """The live generation directory named by a manifest."""
    name = manifest.get("generation")
    if not isinstance(name, str) or not name.startswith(GENERATION_PREFIX):
        raise PersistenceError(f"manifest of {root} names no valid generation")
    return Path(root) / name


def wal_path(root: Path | str) -> Path:
    """The live WAL file of a database directory (reads the manifest)."""
    root = Path(root)
    manifest = read_json(root / MANIFEST_FILE)
    return generation_dir(root, manifest) / manifest["wal_file"]


@dataclasses.dataclass(frozen=True)
class SnapshotInfo:
    """What one save produced: location, identity and rough size."""

    path: str
    epoch: str
    generation: str
    triples: int
    terms: int
    files: int
    data_bytes: int
    pending_updates_logged: int

    def wal_path(self) -> Path:
        """The WAL file belonging to this snapshot generation."""
        return Path(self.path) / self.generation / WAL_FILE


# -- writing ------------------------------------------------------------------


def write_snapshot(store, path: Path | str, attach: bool = False) -> SnapshotInfo:
    """Serialize a store's base state (and journal) into a database directory.

    The delta overlay is *not* serialized as data: pending update requests
    are appended to the fresh WAL instead, and replay at open reproduces
    the delta exactly.  See :mod:`repro.updates.journal`.

    The new generation is written completely before the manifest publishes
    it; superseded generations are removed only afterwards, so a crash at
    any point leaves an openable database.

    With ``attach=True`` the freshly created WAL handle is attached to the
    store's journal (what ``RDFStore.save`` wants); the default leaves the
    store untouched, which is what tests snapshotting shared fixtures rely
    on.
    """
    root = Path(path)
    _prepare_directory(root)
    previous_generation = None
    if (root / MANIFEST_FILE).exists():
        try:
            previous_generation = read_json(root / MANIFEST_FILE).get("generation")
        except PersistenceError:
            previous_generation = None
    epoch = uuid.uuid4().hex
    generation = f"{GENERATION_PREFIX}{epoch[:12]}"
    gen_dir = root / generation
    columns_dir = gen_dir / COLUMNS_DIR
    zonemaps_dir = gen_dir / ZONEMAPS_DIR
    columns_dir.mkdir(parents=True)
    zonemaps_dir.mkdir()

    files = 0
    data_bytes = 0

    def _note(file_path: Path) -> None:
        nonlocal files, data_bytes
        files += 1
        data_bytes += file_path.stat().st_size

    # dictionary: one n3 line per OID
    term_lines = "".join(term.n3() + "\n" for term in store.dictionary.terms())
    dict_crc = write_text(gen_dir / DICTIONARY_FILE, term_lines)
    _note(gen_dir / DICTIONARY_FILE)

    # base matrix
    matrix = np.asarray(store.matrix, dtype=np.int64).reshape(-1, 3)
    matrix_crc = write_array(gen_dir / MATRIX_FILE, matrix)
    _note(gen_dir / MATRIX_FILE)

    # schema
    schema_entry = None
    if store.schema is not None:
        schema_text = json_dumps(schema_to_dict(store.schema), indent=2, sort_keys=True)
        schema_crc = write_text(gen_dir / SCHEMA_FILE, schema_text)
        _note(gen_dir / SCHEMA_FILE)
        schema_entry = {"file": SCHEMA_FILE, "crc": schema_crc}

    index_entry = _write_index_store(store.index_store, columns_dir, _note)
    clustered_entry = _write_clustered_store(store.clustered_store, columns_dir,
                                             zonemaps_dir, _note)

    # a fresh WAL for this snapshot generation, seeded with any updates that
    # are still pending (so a save with an uncompacted delta loses nothing)
    wal = WriteAheadLog.create(gen_dir / WAL_FILE, epoch)
    pending_texts = store.journal.texts() if store.has_pending_updates() else []
    for text in pending_texts:
        wal.append(text)
    _note(gen_dir / WAL_FILE)

    # make the generation's directory entries durable before publishing it
    for directory in (columns_dir, zonemaps_dir, gen_dir):
        fsync_dir(directory)

    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "epoch": epoch,
        "generation": generation,
        "wal_file": WAL_FILE,
        "config": _config_to_dict(store.config),
        "triples": int(matrix.shape[0]),
        "terms": len(store.dictionary),
        "value_order_watermark": store.dictionary.value_order_watermark,
        "clustered": bool(store.is_clustered),
        "plan_cache_generation": int(store.plan_cache.generation),
        "wal_seeded_records": len(pending_texts),
        "dictionary": {"file": DICTIONARY_FILE, "crc": dict_crc,
                       "terms": len(store.dictionary)},
        "matrix": {"file": MATRIX_FILE, "crc": matrix_crc,
                   "rows": int(matrix.shape[0])},
        "schema": schema_entry,
        "reduced_schemas": (store.catalog.reduced_schemas_state()
                            if store.catalog is not None else {}),
        "index": index_entry,
        "clustered_store": clustered_entry,
    }
    write_json_atomic(root / MANIFEST_FILE, manifest)  # the publish point
    _note(root / MANIFEST_FILE)

    _remove_superseded_generations(
        root, keep={generation, previous_generation} - {None})

    if attach:
        store.journal.attach_wal(wal)

    return SnapshotInfo(
        path=str(root),
        epoch=epoch,
        generation=generation,
        triples=int(matrix.shape[0]),
        terms=len(store.dictionary),
        files=files,
        data_bytes=data_bytes,
        pending_updates_logged=len(pending_texts),
    )


def _prepare_directory(root: Path) -> None:
    """Create the target directory, refusing to clobber foreign content.

    A directory is writable when it is empty, is a published database
    (has a manifest), or holds nothing but this format's own debris —
    generation directories and a leftover manifest temp file, which is
    what an interrupted first ``save()`` leaves behind.  Anything else is
    someone else's data and is never touched.
    """
    if root.exists():
        if not root.is_dir():
            raise PersistenceError(f"{root} exists and is not a directory")
        foreign = [entry.name for entry in root.iterdir()
                   if not _is_own_entry(entry)]
        if foreign:
            raise PersistenceError(
                f"{root} holds non-database content ({', '.join(sorted(foreign)[:5])}); "
                "refusing to overwrite a directory that is not a repro database")
    else:
        root.mkdir(parents=True)


def _is_own_entry(entry: Path) -> bool:
    if entry.name in (MANIFEST_FILE, MANIFEST_FILE + ".tmp"):
        return True
    return entry.is_dir() and entry.name.startswith(GENERATION_PREFIX)


def _remove_superseded_generations(root: Path, keep: set) -> None:
    """Delete generation directories not in ``keep`` (the newly published
    generation and the one the previous manifest named).

    Runs only *after* the manifest publish, so a crash at any earlier
    point leaves the previous generation (snapshot + WAL) fully intact.
    The immediately preceding *published* generation is kept on disk one
    cycle longer: another store handle opened against it may still hold
    unmaterialized lazy loaders into its files, and deleting it under that
    handle would turn its next scan into a ``PersistenceError``.  (A
    database is still meant to have one writer; retention just bounds the
    blast radius of a concurrent reader to *two* checkpoints instead of
    one.)  Debris from interrupted saves — generation directories no
    manifest ever named — is removed outright.  Removal failures are
    ignored: an orphaned generation is garbage, not corruption, and the
    next save retries.
    """
    for entry in root.iterdir():
        if entry.is_dir() and entry.name.startswith(GENERATION_PREFIX) \
                and entry.name not in keep:
            shutil.rmtree(entry, ignore_errors=True)
    fsync_dir(root)


def _write_index_store(index_store, columns_dir: Path, note) -> Optional[dict]:
    if index_store is None:
        return None
    orders: Dict[str, dict] = {}
    for order, table in index_store.tables.items():
        file_name = f"hsp.{order}.bin"
        crc = write_array(columns_dir / file_name, table.raw())
        note(columns_dir / file_name)
        orders[order] = {"file": file_name, "rows": len(table), "crc": crc}
    return {
        "name": index_store.name,
        "orders": orders,
        "predicate_counts": {str(p): int(c)
                             for p, c in index_store.predicate_counts().items()},
    }


def _write_clustered_store(clustered, columns_dir: Path, zonemaps_dir: Path,
                           note) -> Optional[dict]:
    if clustered is None:
        return None
    blocks: List[dict] = []
    for block in clustered.blocks:
        subject_file = f"clustered.cs{block.cs_id}.subject.bin"
        subject_crc = write_array(columns_dir / subject_file, block.subject_column.data)
        note(columns_dir / subject_file)
        columns: Dict[str, dict] = {}
        for predicate_oid, column in block.property_columns.items():
            file_name = f"clustered.cs{block.cs_id}.p{predicate_oid}.bin"
            crc = write_array(columns_dir / file_name, column.data)
            note(columns_dir / file_name)
            columns[str(predicate_oid)] = {
                "file": file_name,
                "crc": crc,
                "stats": ColumnStats.from_values(column.data).to_dict(),
            }
        zone_maps: Dict[str, dict] = {}
        for predicate_oid, zone_map in block.zone_maps.items():
            file_name = f"cs{block.cs_id}.p{predicate_oid}.bin"
            crc = write_array(zonemaps_dir / file_name, zone_map.to_array())
            note(zonemaps_dir / file_name)
            zone_maps[str(predicate_oid)] = {
                "file": file_name,
                "crc": crc,
                "zone_size": zone_map.zone_size,
                "total_rows": zone_map.total_rows,
            }
        blocks.append({
            "cs_id": block.cs_id,
            "label": block.label,
            "rows": len(block),
            "subject": {
                "file": subject_file,
                "crc": subject_crc,
                "stats": ColumnStats.from_values(block.subject_column.data).to_dict(),
            },
            "columns": columns,
            "zone_maps": zone_maps,
            "sorted_properties": sorted(int(p) for p in block.sorted_properties),
        })
    irregular_file = "clustered.irregular.bin"
    irregular_crc = write_array(columns_dir / irregular_file, clustered.irregular.raw())
    note(columns_dir / irregular_file)
    return {
        "name": "clustered",
        "blocks": blocks,
        "irregular": {"file": irregular_file,
                      "rows": len(clustered.irregular),
                      "crc": irregular_crc},
    }


def _config_to_dict(config) -> dict:
    return {
        "buffer_pool_pages": config.buffer_pool_pages,
        "page_size": config.page_size,
        "zone_size": config.zone_size,
        "build_exhaustive_indexes": config.build_exhaustive_indexes,
        "build_zone_maps": config.build_zone_maps,
        "plan_cache_size": config.plan_cache_size,
        "cost_model": dataclasses.asdict(config.cost_model),
    }


# -- reading ------------------------------------------------------------------


class SnapshotReader:
    """Decode one database directory into live (lazily loading) structures.

    The reader is deliberately store-agnostic: it returns plain components
    (dictionary, matrix, schema, stores, WAL) and ``RDFStore.open``
    assembles them.  That keeps this package importable from the storage
    layer without a cycle through :mod:`repro.core`.
    """

    def __init__(self, path: Path | str) -> None:
        self.root = Path(path)
        manifest_path = self.root / MANIFEST_FILE
        if not manifest_path.exists():
            raise PersistenceError(
                f"{self.root} is not a repro database (no {MANIFEST_FILE})")
        self.manifest = read_json(manifest_path)
        if self.manifest.get("format") != FORMAT_NAME:
            raise PersistenceError(f"{manifest_path} is not a {FORMAT_NAME} manifest")
        version = self.manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise PersistenceError(
                f"database format v{version} is not supported by this build "
                f"(expected v{FORMAT_VERSION})")
        self.base = generation_dir(self.root, self.manifest)
        if not self.base.is_dir():
            raise PersistenceError(
                f"database {self.root} names generation {self.base.name} but the "
                "directory is missing; the database is incomplete")

    # -- components -----------------------------------------------------------

    def config_dict(self) -> dict:
        """The saved store configuration (flat fields + cost model)."""
        return dict(self.manifest["config"])

    def read_dictionary(self) -> TermDictionary:
        entry = self.manifest["dictionary"]
        text = read_text(self.base / entry["file"], expect_crc=entry["crc"])
        terms = [parse_term(line, lineno=lineno)
                 for lineno, line in enumerate(text.split("\n"), start=1)
                 if line.strip()]
        if len(terms) != entry["terms"]:
            raise PersistenceError(
                f"dictionary file holds {len(terms)} terms, manifest promises "
                f"{entry['terms']}")
        return TermDictionary.restore(
            terms, value_order_watermark=int(self.manifest["value_order_watermark"]))

    def matrix_rows(self) -> int:
        """Row count of the base matrix (manifest metadata, no I/O)."""
        return int(self.manifest["matrix"]["rows"])

    def matrix_loader(self):
        """A deferred loader for the base matrix.

        Queries never touch the base matrix — they go through the clustered
        store and the projections — so the store materializes it lazily,
        only when compaction / re-clustering / re-discovery needs it.
        """
        entry = self.manifest["matrix"]
        path = self.base / entry["file"]
        expect_crc = entry["crc"]
        return lambda: read_array(path, expect_crc=expect_crc).reshape(-1, 3)

    def read_schema(self) -> Optional[EmergentSchema]:
        entry = self.manifest.get("schema")
        if entry is None:
            return None
        text = read_text(self.base / entry["file"], expect_crc=entry["crc"])
        return schema_from_dict(json_loads(text))

    def build_index_store(self, pool: Optional[BufferPool]) -> Optional[ExhaustiveIndexStore]:
        entry = self.manifest.get("index")
        if entry is None:
            return None
        name = entry.get("name", "hsp")
        tables: Dict[str, TripleTable] = {}
        for order, table_entry in entry["orders"].items():
            tables[order] = TripleTable.lazy(
                loader=self._array_loader(COLUMNS_DIR, table_entry),
                length=int(table_entry["rows"]),
                order=order,
                pool=pool,
                name=f"{name}.{order}",
            )
        store = ExhaustiveIndexStore.from_tables(tables, pool=pool, name=name)
        store.set_predicate_counts({int(p): c
                                    for p, c in entry["predicate_counts"].items()})
        return store

    def build_clustered_store(self, pool: Optional[BufferPool],
                              schema: Optional[EmergentSchema]) -> Optional[ClusteredStore]:
        entry = self.manifest.get("clustered_store")
        if entry is None:
            return None
        if schema is None:
            raise PersistenceError("manifest has a clustered store but no schema")
        name = entry.get("name", "clustered")
        blocks: List[CSBlock] = []
        for block_entry in entry["blocks"]:
            blocks.append(self._build_block(block_entry, name, pool))
        irregular_entry = entry["irregular"]
        irregular = TripleTable.lazy(
            loader=self._array_loader(COLUMNS_DIR, irregular_entry),
            length=int(irregular_entry["rows"]),
            order="pso",
            pool=pool,
            name=f"{name}.irregular",
        )
        return ClusteredStore(blocks=blocks, irregular=irregular,
                              schema=schema, pool=pool)

    def _build_block(self, entry: dict, name: str, pool: Optional[BufferPool]) -> CSBlock:
        cs_id = int(entry["cs_id"])
        rows = int(entry["rows"])
        subject_entry = entry["subject"]
        subject_column = Column.lazy(
            segment_id=f"{name}.cs{cs_id}.subject",
            loader=self._array_loader(COLUMNS_DIR, subject_entry),
            length=rows,
            sorted_ascending=True,
            pool=pool,
        )
        subject_column.stats = ColumnStats.from_dict(subject_entry["stats"])
        property_columns: Dict[int, Column] = {}
        for predicate_text, column_entry in entry["columns"].items():
            predicate_oid = int(predicate_text)
            column = Column.lazy(
                segment_id=f"{name}.cs{cs_id}.p{predicate_oid}",
                loader=self._array_loader(COLUMNS_DIR, column_entry),
                length=rows,
                sorted_ascending=False,
                pool=pool,
            )
            column.stats = ColumnStats.from_dict(column_entry["stats"])
            property_columns[predicate_oid] = column
        zone_maps = {}
        for predicate_text, zm_entry in entry["zone_maps"].items():
            zone_rows = read_array(self.base / ZONEMAPS_DIR / zm_entry["file"],
                                   expect_crc=zm_entry["crc"])
            zone_maps[int(predicate_text)] = ZoneMap.from_array(
                zone_rows, zone_size=int(zm_entry["zone_size"]),
                total_rows=int(zm_entry["total_rows"]))
        return CSBlock(
            cs_id=cs_id,
            label=str(entry["label"]),
            subject_column=subject_column,
            property_columns=property_columns,
            zone_maps=zone_maps,
            sorted_properties=frozenset(int(p) for p in entry["sorted_properties"]),
        )

    def _array_loader(self, subdir: str, entry: dict):
        path = self.base / subdir / entry["file"]
        expect_crc = entry["crc"]
        return lambda: read_array(path, expect_crc=expect_crc)

    # -- the WAL --------------------------------------------------------------

    def wal(self) -> WriteAheadLog:
        """The database's write-ahead log, epoch-checked against the manifest.

        An epoch mismatch means the snapshot and the log belong to
        different generations (e.g. a checkpoint crashed between truncating
        the log and publishing the manifest); replaying would corrupt the
        store, so it is refused outright.
        """
        wal_path = self.base / self.manifest["wal_file"]
        if not wal_path.exists():
            raise PersistenceError(
                f"database {self.root} has no WAL ({self.manifest['wal_file']}); "
                "the directory is incomplete")
        wal = WriteAheadLog.open(wal_path)
        if wal.epoch != self.manifest["epoch"]:
            raise PersistenceError(
                f"WAL epoch {wal.epoch} does not match snapshot epoch "
                f"{self.manifest['epoch']}: the database is torn between two "
                "generations; restore from a consistent snapshot")
        return wal
