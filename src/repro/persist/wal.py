"""The write-ahead log: crash-durable SPARQL Update records.

The log is a single append-only file.  It starts with a header naming the
snapshot *epoch* it belongs to, followed by zero or more framed records::

    header:  magic 8s  b"RWAL\\x00\\x01\\x00\\x00"
             epoch_len u32, epoch bytes (utf-8)
    record:  magic 4s  b"WREC"
             length u32   payload byte count
             crc32  u32   CRC-32 of the payload
             payload      utf-8 JSON {"seq": n, "text": "..."}

Records are *logical*: the payload is the text of one successful
``RDFStore.update()`` request.  Replay re-executes the texts in order
against the snapshotted base state, which reproduces the delta store
exactly (update application is deterministic).

Crash semantics:

* a record is appended and fsynced before ``update()`` returns — once
  acknowledged, a request survives a crash;
* a crash mid-append leaves a torn record at the tail; :meth:`open`
  performs *recovery truncation* — the file is cut back to the last intact
  record — so later appends can never land behind garbage and be skipped
  by a future replay;
* before appending, a handle re-validates the on-disk tail whenever the
  file size moved under it: intact records another handle appended are
  adopted (never truncated away), and only genuinely torn bytes are cut.
  A database is still meant to have one writer at a time, but a second
  handle degrades to interleaved appends rather than silent destruction
  of acknowledged records;
* the epoch ties the log to one snapshot generation: ``RDFStore.open``
  replays the log only when its epoch matches the manifest's, which makes
  a half-finished checkpoint fail safe instead of double-applying records.

A handle caches the record texts it has scanned or appended, so replay and
:meth:`record_count` do not re-read the file while the handle is the sole
writer.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import BinaryIO, List, Optional, Tuple

from ..errors import PersistenceError
from ..obs import default_registry

WAL_MAGIC = b"RWAL\x00\x01\x00\x00"
RECORD_MAGIC = b"WREC"
_RECORD_HEADER = struct.Struct("<4sII")
_EPOCH_LEN = struct.Struct("<I")

# WAL handles come and go with snapshots/checkpoints, so their counters live
# on the process-global registry rather than any single store's.
_WAL_APPENDS = default_registry().counter(
    "wal_appends_total", "WAL records appended (one per durable update).")
_WAL_FSYNCS = default_registry().counter(
    "wal_fsyncs_total", "fsync() calls issued by the WAL (appends + creates).")
_WAL_BYTES = default_registry().counter(
    "wal_bytes_written_total", "Bytes of record framing + payload appended to WALs.")


class WriteAheadLog:
    """Append/replay interface over one WAL file.

    The file handle is not kept open between operations: each append opens,
    writes, fsyncs and closes, which keeps the object trivially safe to
    share and to abandon (no ``close()`` discipline needed) at the price of
    an open per write — appropriate for a simulator whose updates are
    batched requests, not OLTP point writes.
    """

    def __init__(self, path: Path | str, epoch: str) -> None:
        self.path = Path(path)
        self.epoch = epoch
        self._lock = threading.RLock()
        """Serializes append/scan through one handle.  The store's writer
        lock already guarantees one update at a time; this lock keeps the
        handle itself coherent for auxiliary readers (``record_count`` from
        a monitoring thread while the writer appends)."""
        self._next_seq = 0
        self._cached_texts: Optional[List[str]] = None
        self._valid_end: Optional[int] = None
        """End offset of the last intact record (or the header).  Appends
        seek here — after re-validating that the file has not grown with
        intact records from elsewhere — and truncate only torn bytes."""

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, path: Path | str, epoch: str) -> "WriteAheadLog":
        """Create (or truncate) the log file with a fresh epoch header."""
        wal = cls(path, epoch)
        epoch_bytes = epoch.encode("utf-8")
        try:
            with open(wal.path, "wb") as sink:
                sink.write(WAL_MAGIC)
                sink.write(_EPOCH_LEN.pack(len(epoch_bytes)))
                sink.write(epoch_bytes)
                sink.flush()
                os.fsync(sink.fileno())
        except OSError as exc:
            raise PersistenceError(f"cannot create WAL {wal.path}: {exc}") from exc
        _WAL_FSYNCS.inc()
        wal._cached_texts = []
        wal._valid_end = len(WAL_MAGIC) + _EPOCH_LEN.size + len(epoch_bytes)
        return wal

    @classmethod
    def open(cls, path: Path | str) -> "WriteAheadLog":
        """Open an existing log: read the header, scan the intact records
        and truncate any torn tail a crash mid-append left behind.

        Recovery truncation is what keeps the append path safe: without
        it, a record written after a torn one would sit behind garbage and
        be silently skipped by every future replay.
        """
        wal = cls(path, epoch="")
        wal._refresh_from_disk()
        try:
            if wal.path.stat().st_size > wal._valid_end:
                with open(wal.path, "rb+") as sink:
                    sink.truncate(wal._valid_end)
                    sink.flush()
                    os.fsync(sink.fileno())
        except OSError as exc:
            raise PersistenceError(f"cannot recover WAL {path}: {exc}") from exc
        return wal

    @classmethod
    def peek(cls, path: Path | str) -> "WriteAheadLog":
        """Open a log strictly read-only: no recovery truncation.

        For inspection tools (``repro_db info``) that must not mutate a
        database — possibly on read-only media or owned by another
        process.  Appending through a peeked handle is not supported.
        """
        wal = cls(path, epoch="")
        wal._refresh_from_disk()
        return wal

    # -- appending -----------------------------------------------------------

    def append(self, text: str) -> int:
        """Append one update-request record; fsynced before returning.

        Returns the record's sequence number.  Raises
        :class:`PersistenceError` when the write cannot be made durable —
        callers treat that as the request having failed.
        """
        with self._lock:
            return self._append_locked(text)

    def _append_locked(self, text: str) -> int:
        if self._valid_end is None:
            self._refresh_from_disk()
        try:
            size = self.path.stat().st_size
        except OSError as exc:
            raise PersistenceError(f"cannot append to WAL {self.path}: {exc}") from exc
        if size != self._valid_end:
            # the file moved under this handle: adopt intact records another
            # handle appended (never truncate them away); only bytes past
            # the last intact record — a torn append — may be cut below
            self._refresh_from_disk()
        seq = self._next_seq
        payload = json.dumps({"seq": seq, "text": text}).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        try:
            with open(self.path, "r+b") as sink:
                sink.seek(self._valid_end)
                sink.truncate()
                sink.write(_RECORD_HEADER.pack(RECORD_MAGIC, len(payload), crc))
                sink.write(payload)
                sink.flush()
                os.fsync(sink.fileno())
                self._valid_end = sink.tell()
        except OSError as exc:
            raise PersistenceError(f"cannot append to WAL {self.path}: {exc}") from exc
        _WAL_APPENDS.inc()
        _WAL_FSYNCS.inc()
        _WAL_BYTES.inc(_RECORD_HEADER.size + len(payload))
        self._next_seq = seq + 1
        if self._cached_texts is not None:
            self._cached_texts.append(text)
        return seq

    # -- replay --------------------------------------------------------------

    def replay_texts(self) -> List[str]:
        """The fully written records' texts, in append order.

        Replay is *tolerant at the tail*: a truncated or checksum-corrupt
        record ends the scan (everything before it is returned), because
        that is exactly what a crash mid-append leaves behind.  A corrupt
        *header* is not tolerated — that is a different file, not a torn
        write.
        """
        with self._lock:
            if self._cached_texts is None:
                self._refresh_from_disk()
            return list(self._cached_texts)

    def record_count(self) -> int:
        """Number of intact records currently in the log."""
        return len(self.replay_texts())

    # -- scanning ------------------------------------------------------------

    def _refresh_from_disk(self) -> None:
        """Re-read epoch, record texts and the end-of-valid-data offset."""
        epoch, texts, valid_end = self._scan()
        self.epoch = epoch
        self._cached_texts = texts
        self._next_seq = len(texts)
        self._valid_end = valid_end

    def _scan(self) -> Tuple[str, List[str], int]:
        """One pass over the file: ``(epoch, texts, end_of_last_intact)``."""
        texts: List[str] = []
        try:
            with open(self.path, "rb") as source:
                epoch = self._read_header(source)
                valid_end = source.tell()
                while True:
                    header = source.read(_RECORD_HEADER.size)
                    if len(header) < _RECORD_HEADER.size:
                        return epoch, texts, valid_end  # clean EOF or torn header
                    rec_magic, length, crc = _RECORD_HEADER.unpack(header)
                    if rec_magic != RECORD_MAGIC:
                        return epoch, texts, valid_end  # garbage at record start
                    payload = source.read(length)
                    if len(payload) < length:
                        return epoch, texts, valid_end  # torn payload
                    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                        return epoch, texts, valid_end  # bit rot / partial write
                    try:
                        record = json.loads(payload.decode("utf-8"))
                        texts.append(str(record["text"]))
                    except (ValueError, KeyError):
                        return epoch, texts, valid_end
                    valid_end = source.tell()
        except (OSError, struct.error) as exc:
            raise PersistenceError(f"cannot read WAL {self.path}: {exc}") from exc

    def _read_header(self, source: BinaryIO) -> str:
        """Parse the file header; the stream is left at the first record."""
        magic = source.read(len(WAL_MAGIC))
        if magic != WAL_MAGIC:
            raise PersistenceError(f"{self.path} is not a repro WAL (bad magic)")
        (epoch_len,) = _EPOCH_LEN.unpack(source.read(_EPOCH_LEN.size))
        return source.read(epoch_len).decode("utf-8")
