"""Physical storage: triple tables, exhaustive indexes and the clustered store."""

from .clustered import CSBlock, ClusteredStore
from .loader import (
    ClusteringPlan,
    LoadedDataset,
    apply_oid_mapping,
    build_triple_table,
    cluster_subjects,
    encode_graph,
    plan_subject_clustering,
    value_order_literals,
)
from .permutation_index import ExhaustiveIndexStore
from .triple_table import ORDERS, TripleTable, deduplicate_triples

__all__ = [
    "CSBlock",
    "ClusteredStore",
    "ClusteringPlan",
    "ExhaustiveIndexStore",
    "LoadedDataset",
    "ORDERS",
    "TripleTable",
    "apply_oid_mapping",
    "build_triple_table",
    "cluster_subjects",
    "deduplicate_triples",
    "encode_graph",
    "plan_subject_clustering",
    "value_order_literals",
]
