"""Bulk loading and subject clustering.

The loading pipeline mirrors the paper's architecture:

1. parse / generate decoded triples;
2. dictionary-encode them in parse order (``encode_graph``);
3. optionally reassign literal OIDs so OID order equals value order
   (``value_order_literals``) — this is what lets range predicates run on
   OIDs directly;
4. discover the emergent schema (:mod:`repro.cs`);
5. *subject clustering*: re-assign subject OIDs so that the members of each
   characteristic set occupy one contiguous stretch, optionally sub-ordered
   on a chosen property's value (``cluster_subjects``);
6. build physical stores: the exhaustive-permutation baseline and/or the
   CS-clustered store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..columnar import BufferPool
from ..cs import EmergentSchema
from ..errors import StorageError
from ..model import Graph, TermDictionary, Triple
from ..model.terms import term_sort_key
from .clustered import ClusteredStore
from .permutation_index import ExhaustiveIndexStore
from .triple_table import TripleTable


def encode_graph(graph: Graph | Iterable[Triple],
                 dictionary: Optional[TermDictionary] = None) -> Tuple[TermDictionary, np.ndarray]:
    """Dictionary-encode decoded triples in parse order.

    Returns the dictionary and an ``(n, 3)`` encoded S/P/O matrix.  Exact
    duplicate triples are dropped (RDF graphs are sets).
    """
    dictionary = dictionary or TermDictionary()
    seen: set[Tuple[int, int, int]] = set()
    rows: List[Tuple[int, int, int]] = []
    for triple in graph:
        encoded = dictionary.encode_triple(triple)
        key = (encoded.s, encoded.p, encoded.o)
        if key in seen:
            continue
        seen.add(key)
        rows.append(key)
    matrix = np.asarray(rows, dtype=np.int64).reshape(-1, 3) if rows else np.empty((0, 3), dtype=np.int64)
    return dictionary, matrix


def apply_oid_mapping(matrix: np.ndarray, mapping: Dict[int, int]) -> np.ndarray:
    """Rewrite every OID in the matrix according to ``mapping`` (old -> new)."""
    if not mapping or matrix.size == 0:
        return matrix.copy()
    max_oid = int(matrix.max())
    lookup = np.arange(max(max_oid + 1, max(mapping) + 1), dtype=np.int64)
    for old, new in mapping.items():
        if old < lookup.shape[0]:
            lookup[old] = new
    return lookup[matrix]


def value_order_literals(matrix: np.ndarray, dictionary: TermDictionary) -> np.ndarray:
    """Permute literal OIDs into value order; returns the rewritten matrix."""
    mapping = dictionary.reassign_value_ordered_literals()
    if not mapping:
        return matrix.copy()
    return apply_oid_mapping(matrix, mapping)


# -- subject clustering -----------------------------------------------------------


@dataclass
class ClusteringPlan:
    """The subject-OID permutation chosen by :func:`plan_subject_clustering`."""

    mapping: Dict[int, int]
    cs_order: List[int]
    sort_keys: Dict[int, Optional[int]] = field(default_factory=dict)

    def is_identity(self) -> bool:
        return all(old == new for old, new in self.mapping.items())


def plan_subject_clustering(
    matrix: np.ndarray,
    dictionary: TermDictionary,
    schema: EmergentSchema,
    sort_keys: Optional[Dict[int, int]] = None,
) -> ClusteringPlan:
    """Compute the subject-OID permutation that clusters subjects by CS.

    The permutation only shuffles the OIDs of subjects that belong to some
    CS *among themselves*: the set of OID values is unchanged, but after the
    permutation the numeric order of those OIDs follows (CS, sort key, old
    OID).  Because the reassigned values are the sorted original values, all
    other terms keep their OIDs and the mapping is a bijection.

    ``sort_keys`` optionally maps a CS id to the predicate OID whose value
    should sub-order the members (e.g. LINEITEM on ``shipdate``).  Members
    lacking the key keep their relative position at the end of the block.
    """
    sort_keys = sort_keys or {}
    member_subjects: List[int] = []
    for table in schema.tables.values():
        member_subjects.extend(table.subjects)
    member_subjects = sorted(set(member_subjects))
    if not member_subjects:
        return ClusteringPlan(mapping={}, cs_order=[], sort_keys=dict(sort_keys))

    # value of the sort-key property per subject, when requested
    key_values = _subject_key_values(matrix, schema, sort_keys, dictionary)

    cs_order = [table.cs_id for table in schema.tables_by_support()]
    cs_rank = {cs_id: rank for rank, cs_id in enumerate(cs_order)}

    def order_key(subject: int) -> tuple:
        cs_id = schema.subject_to_cs[subject]
        return (cs_rank[cs_id], key_values.get(subject, _MISSING_KEY), subject)

    desired = sorted(member_subjects, key=order_key)
    available = member_subjects  # already sorted ascending
    mapping = {old: new for old, new in zip(desired, available)}
    return ClusteringPlan(mapping=mapping, cs_order=cs_order, sort_keys=dict(sort_keys))


_MISSING_KEY: tuple = (9, "", "")
"""Sort key ranking after every real value (see ``term_sort_key`` ranks 0-3)."""


def _subject_key_values(
    matrix: np.ndarray,
    schema: EmergentSchema,
    sort_keys: Dict[int, int],
    dictionary: TermDictionary,
) -> Dict[int, tuple]:
    """For each member subject of a CS with a sort key, the key's value rank."""
    if not sort_keys:
        return {}
    wanted: Dict[int, int] = {}
    for cs_id, predicate in sort_keys.items():
        table = schema.tables.get(cs_id)
        if table is None:
            continue
        for subject in table.subjects:
            wanted[subject] = predicate
    values: Dict[int, tuple] = {}
    for s, p, o in matrix:
        s_int, p_int = int(s), int(p)
        if wanted.get(s_int) != p_int or s_int in values:
            continue
        values[s_int] = term_sort_key(dictionary.decode(int(o)))
    return values


def cluster_subjects(
    matrix: np.ndarray,
    dictionary: TermDictionary,
    schema: EmergentSchema,
    sort_keys: Optional[Dict[int, int]] = None,
) -> Tuple[np.ndarray, ClusteringPlan]:
    """Apply subject clustering: permute subject OIDs in both the dictionary
    and the triple matrix, and rewrite the schema's subject references.

    Returns the rewritten matrix and the applied plan.
    """
    plan = plan_subject_clustering(matrix, dictionary, schema, sort_keys)
    if not plan.mapping or plan.is_identity():
        return matrix.copy(), plan
    dictionary.remap(plan.mapping)
    new_matrix = apply_oid_mapping(matrix, plan.mapping)
    _rewrite_schema_subjects(schema, plan.mapping)
    return new_matrix, plan


def _rewrite_schema_subjects(schema: EmergentSchema, mapping: Dict[int, int]) -> None:
    new_subject_to_cs: Dict[int, int] = {}
    for table in schema.tables.values():
        table.subjects = sorted(mapping.get(s, s) for s in table.subjects)
        for subject in table.subjects:
            new_subject_to_cs[subject] = table.cs_id
    schema.subject_to_cs = new_subject_to_cs
    schema.irregular_subjects = sorted(mapping.get(s, s) for s in schema.irregular_subjects)


# -- dataset bundle ------------------------------------------------------------------


@dataclass
class LoadedDataset:
    """Everything the engine needs about one loaded data set."""

    dictionary: TermDictionary
    matrix: np.ndarray
    pool: BufferPool
    schema: Optional[EmergentSchema] = None
    index_store: Optional[ExhaustiveIndexStore] = None
    clustered_store: Optional[ClusteredStore] = None
    clustering_plan: Optional[ClusteringPlan] = None

    def triple_count(self) -> int:
        return int(self.matrix.shape[0])

    def require_index_store(self) -> ExhaustiveIndexStore:
        if self.index_store is None:
            raise StorageError("dataset has no exhaustive index store")
        return self.index_store

    def require_clustered_store(self) -> ClusteredStore:
        if self.clustered_store is None:
            raise StorageError("dataset has no clustered store")
        return self.clustered_store

    def warm(self) -> None:
        """Pre-load every store's pages (hot state)."""
        if self.index_store is not None:
            self.index_store.warm()
        if self.clustered_store is not None:
            self.clustered_store.warm()

    def reset_cold(self) -> None:
        """Drop all cached pages (cold state)."""
        self.pool.reset_cold()


def build_triple_table(matrix: np.ndarray, pool: Optional[BufferPool] = None,
                       order: str = "pso", name: str = "triples") -> TripleTable:
    """Convenience wrapper building a single ordered triple table."""
    return TripleTable(matrix, order=order, pool=pool, name=name)
