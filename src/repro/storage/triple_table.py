"""The basic triple table: three parallel columns in a chosen sort order.

MonetDB's RDF prototype keeps triples as BATs sorted in PSO order.  The
:class:`TripleTable` generalizes this to any of the six permutations of
(S, P, O): the triples are sorted by the permutation's components and each
component is stored as a :class:`~repro.columnar.Column`.  Range scans on a
prefix of the sort order are binary searches followed by sequential reads —
the access path that exhaustive-indexing RDF stores rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..columnar import BufferPool, Column
from ..errors import StorageError
from ..model import EncodedTriple

ORDERS = ("spo", "sop", "pso", "pos", "osp", "ops")
"""The six permutations of subject, predicate, object."""

_COMPONENT_INDEX = {"s": 0, "p": 1, "o": 2}


class TripleTable:
    """Encoded triples stored column-wise, sorted by a component order."""

    def __init__(
        self,
        triples: Iterable[EncodedTriple] | np.ndarray,
        order: str = "pso",
        pool: Optional[BufferPool] = None,
        name: str = "triples",
    ) -> None:
        if order not in ORDERS:
            raise StorageError(f"unknown triple order {order!r}; expected one of {ORDERS}")
        self.order = order
        self.name = name
        self.pool = pool
        matrix = _as_matrix(triples)
        matrix = _sort_matrix(matrix, order)
        self._matrix_data: Optional[np.ndarray] = matrix
        self._matrix_loader: Optional[Callable[[], np.ndarray]] = None
        self._row_count = int(matrix.shape[0])
        self._columns: Dict[str, Column] = {}
        for component in "spo":
            sorted_flag = order[0] == component
            self._columns[component] = Column(
                segment_id=f"{name}.{order}.{component}",
                values=matrix[:, _COMPONENT_INDEX[component]],
                sorted_ascending=sorted_flag,
                pool=pool,
            )

    @classmethod
    def lazy(
        cls,
        loader: Callable[[], np.ndarray],
        length: int,
        order: str = "pso",
        pool: Optional[BufferPool] = None,
        name: str = "triples",
    ) -> "TripleTable":
        """Create a table whose sorted matrix loads from disk on first access.

        The loader must produce an ``(length, 3)`` matrix **already sorted**
        in ``order`` (the snapshot writer persists the sorted form, so no
        sort happens at load).  All three component columns share the one
        matrix; materializing any of them materializes the table, which is
        reported to the buffer pool once under the table's segment name.
        """
        if order not in ORDERS:
            raise StorageError(f"unknown triple order {order!r}; expected one of {ORDERS}")
        table = cls.__new__(cls)
        table.order = order
        table.name = name
        table.pool = pool
        table._matrix_data = None
        table._matrix_loader = loader
        table._row_count = int(length)
        table._columns = {}
        if pool is not None:
            pool.register_lazy_segment(f"{name}.{order}", int(length) * 3)
        for component in "spo":
            index = _COMPONENT_INDEX[component]
            table._columns[component] = Column.lazy(
                segment_id=f"{name}.{order}.{component}",
                loader=(lambda t=table, i=index: t._matrix[:, i]),
                length=int(length),
                sorted_ascending=order[0] == component,
                pool=pool,
                notify_pool=False,  # the shared matrix is accounted once, below
            )
        return table

    @property
    def _matrix(self) -> np.ndarray:
        """The sorted ``(n, 3)`` matrix, materialized from disk on demand."""
        if self._matrix_data is None:
            loaded = np.asarray(self._matrix_loader(), dtype=np.int64).reshape(-1, 3)
            if loaded.shape[0] != self._row_count:
                raise StorageError(
                    f"table {self.name!r} loader produced {loaded.shape[0]} rows, "
                    f"expected {self._row_count}")
            self._matrix_data = loaded
            if self.pool is not None:
                self.pool.note_materialized(f"{self.name}.{self.order}",
                                            int(loaded.size))
        return self._matrix_data

    @property
    def is_materialized(self) -> bool:
        """Whether the sorted matrix is resident (always true when eager)."""
        return self._matrix_data is not None

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def column(self, component: str) -> Column:
        """Return the column for component ``'s'``, ``'p'`` or ``'o'``."""
        if component not in self._columns:
            raise StorageError(f"unknown component {component!r}")
        return self._columns[component]

    def attach_pool(self, pool: Optional[BufferPool]) -> None:
        """Attach a buffer pool to all three columns."""
        self.pool = pool
        for col in self._columns.values():
            col.attach_pool(pool)

    def raw(self) -> np.ndarray:
        """Return the underlying ``(n, 3)`` S/P/O matrix (no accounting)."""
        return self._matrix

    def iter_triples(self) -> Iterable[EncodedTriple]:
        """Iterate over encoded triples in table order (no accounting)."""
        for s, p, o in self._matrix:
            yield EncodedTriple(int(s), int(p), int(o))

    def warm(self) -> None:
        """Pre-load all pages of the table into the buffer pool."""
        if self.pool is None:
            return
        for col in self._columns.values():
            self.pool.warm(col.segment_id, len(col))

    # -- access paths ---------------------------------------------------------

    def _prefix_range(self, *values: int) -> Tuple[int, int]:
        """Row range matching a prefix of the sort order (binary searches)."""
        lo, hi = 0, len(self)
        for depth, value in enumerate(values):
            component = self.order[depth]
            data = self._matrix[lo:hi, _COMPONENT_INDEX[component]]
            lo_off = int(np.searchsorted(data, value, side="left"))
            hi_off = int(np.searchsorted(data, value, side="right"))
            lo, hi = lo + lo_off, lo + hi_off
            if self.pool is not None:
                self.pool.tracker.tuples_probed += 2
            if lo >= hi:
                return lo, lo
        return lo, hi

    def prefix_row_range(self, *values: int) -> Tuple[int, int]:
        """Public wrapper over the prefix binary search (no page reads yet)."""
        return self._prefix_range(*values)

    def scan_prefix(self, *values: int, fetch: str = "spo") -> np.ndarray:
        """Scan rows matching a prefix of the sort order.

        ``fetch`` selects which components to materialize; the returned array
        has one row per match and one column per requested component, in the
        requested order.  Page accounting covers only the fetched columns
        over the matched row range.
        """
        lo, hi = self._prefix_range(*values)
        return self.fetch_rows(lo, hi, fetch=fetch)

    def fetch_rows(self, lo: int, hi: int, fetch: str = "spo") -> np.ndarray:
        """Materialize components for the positional row range ``[lo, hi)``."""
        if hi <= lo:
            return np.empty((0, len(fetch)), dtype=np.int64)
        parts = []
        for component in fetch:
            parts.append(self._columns[component].slice(lo, hi))
        return np.column_stack(parts)

    def lookup(self, *values: int) -> int:
        """Number of rows matching a full or partial prefix (point probe)."""
        lo, hi = self._prefix_range(*values)
        return hi - lo

    def contains(self, triple: EncodedTriple) -> bool:
        """Exact triple membership test (three binary searches)."""
        ordered = triple.reordered(self.order)
        lo, hi = self._prefix_range(*ordered)
        return hi > lo

    # -- statistics ----------------------------------------------------------

    def predicate_counts(self) -> Dict[int, int]:
        """Triple count per predicate OID (metadata op, no accounting)."""
        pred = self._matrix[:, _COMPONENT_INDEX["p"]]
        values, counts = np.unique(pred, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def distinct_subjects(self) -> np.ndarray:
        """Distinct subject OIDs (metadata op, no accounting)."""
        return np.unique(self._matrix[:, _COMPONENT_INDEX["s"]])

    def subject_property_sets(self) -> Dict[int, frozenset[int]]:
        """Map each subject OID to the frozenset of its predicate OIDs.

        This is the raw input of characteristic-set detection.
        """
        subj = self._matrix[:, _COMPONENT_INDEX["s"]]
        pred = self._matrix[:, _COMPONENT_INDEX["p"]]
        order = np.lexsort((pred, subj))
        result: Dict[int, frozenset[int]] = {}
        current_subject: Optional[int] = None
        current_props: List[int] = []
        for idx in order:
            s = int(subj[idx])
            p = int(pred[idx])
            if s != current_subject:
                if current_subject is not None:
                    result[current_subject] = frozenset(current_props)
                current_subject = s
                current_props = [p]
            else:
                if not current_props or current_props[-1] != p:
                    current_props.append(p)
        if current_subject is not None:
            result[current_subject] = frozenset(current_props)
        return result

    def subject_property_multiplicities(self) -> Dict[int, Dict[int, int]]:
        """Map subject OID -> {predicate OID -> number of objects}."""
        subj = self._matrix[:, _COMPONENT_INDEX["s"]]
        pred = self._matrix[:, _COMPONENT_INDEX["p"]]
        result: Dict[int, Dict[int, int]] = {}
        for s, p in zip(subj, pred):
            props = result.setdefault(int(s), {})
            props[int(p)] = props.get(int(p), 0) + 1
        return result


# -- helpers ------------------------------------------------------------------


def _as_matrix(triples: Iterable[EncodedTriple] | np.ndarray) -> np.ndarray:
    if isinstance(triples, np.ndarray):
        matrix = np.asarray(triples, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != 3:
            raise StorageError("triple matrix must have shape (n, 3)")
        return matrix.copy()
    rows = [(t.s, t.p, t.o) for t in triples]
    if not rows:
        return np.empty((0, 3), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def _sort_matrix(matrix: np.ndarray, order: str) -> np.ndarray:
    if matrix.shape[0] == 0:
        return matrix
    # np.lexsort sorts by the *last* key first, so feed components reversed.
    keys = tuple(matrix[:, _COMPONENT_INDEX[c]] for c in reversed(order))
    permutation = np.lexsort(keys)
    return matrix[permutation]


def deduplicate_triples(triples: Sequence[EncodedTriple]) -> List[EncodedTriple]:
    """Return triples with exact duplicates removed, preserving first-seen order."""
    seen: set[Tuple[int, int, int]] = set()
    unique: List[EncodedTriple] = []
    for t in triples:
        key = (t.s, t.p, t.o)
        if key not in seen:
            seen.add(key)
            unique.append(t)
    return unique
