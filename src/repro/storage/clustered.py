"""CS-clustered storage: the paper's self-organizing physical design.

After schema discovery, the triples of every characteristic set are stored
*CS-wise*: the member subjects form one contiguous stretch of subject OIDs
and each property of the CS is one aligned column over that stretch (missing
0..1 values are SQL NULLs).  A whole star pattern over one CS then reads a
few aligned column ranges instead of performing one self-join per property.

Triples that do not fit — subjects outside every CS, properties not in the
subject's CS, multi-valued (``0..n``) properties, and second/third values of
nominally single-valued properties in dirty data — stay behind in a basic
PSO triple table (the *irregular* store), exactly as Figure 3 of the paper
shows.  Queries consult both parts, so no data is ever lost by clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..columnar import BufferPool, Column, NULL_OID, ZoneMap
from ..cs import EmergentSchema, Multiplicity
from ..errors import StorageError
from ..model import EncodedTriple
from .triple_table import TripleTable


@dataclass
class CSBlock:
    """One characteristic set's physical block: subjects plus aligned columns."""

    cs_id: int
    label: str
    subject_column: Column
    property_columns: Dict[int, Column] = field(default_factory=dict)
    zone_maps: Dict[int, ZoneMap] = field(default_factory=dict)
    sorted_properties: frozenset = frozenset()
    """Predicates whose column is non-decreasing over its non-NULL prefix —
    the result of sub-ordering the CS on that property at clustering time.
    Range predicates on these columns can binary-search instead of scanning."""

    def __len__(self) -> int:
        return len(self.subject_column)

    def subject_bounds(self) -> Tuple[int, int]:
        """Smallest and largest subject OID in the block (inclusive)."""
        bounds = self.subject_column.min_max()
        if bounds is None:
            return (0, -1)
        return bounds

    def has_property(self, predicate_oid: int) -> bool:
        return predicate_oid in self.property_columns

    def column(self, predicate_oid: int) -> Column:
        if predicate_oid not in self.property_columns:
            raise StorageError(f"CS block {self.cs_id} has no column for predicate {predicate_oid}")
        return self.property_columns[predicate_oid]

    def zone_map(self, predicate_oid: int) -> Optional[ZoneMap]:
        return self.zone_maps.get(predicate_oid)

    def positions_of_subjects(self, subject_oids: np.ndarray) -> np.ndarray:
        """Row positions of the given subject OIDs (missing ones dropped).

        The subject column is sorted ascending, so this is a vectorized
        binary search.
        """
        subjects = self.subject_column.data
        positions = np.searchsorted(subjects, subject_oids)
        positions = np.clip(positions, 0, len(subjects) - 1) if len(subjects) else positions
        if len(subjects) == 0:
            return np.empty(0, dtype=np.int64)
        valid = subjects[positions] == subject_oids
        return positions[valid].astype(np.int64)


def _is_sorted_ignoring_nulls(values: np.ndarray) -> bool:
    """True when the non-NULL values form a non-decreasing prefix of the column."""
    valid = values != NULL_OID
    if not valid.any():
        return False
    last_valid = int(np.nonzero(valid)[0][-1])
    if not valid[: last_valid + 1].all():
        return False  # NULL holes in the middle break positional binary search
    prefix = values[: last_valid + 1]
    if prefix.size <= 1:
        return True
    return bool(np.all(prefix[:-1] <= prefix[1:]))


class ClusteredStore:
    """The full clustered physical design: CS blocks plus the irregular table."""

    def __init__(
        self,
        blocks: List[CSBlock],
        irregular: TripleTable,
        schema: EmergentSchema,
        pool: Optional[BufferPool] = None,
    ) -> None:
        self.blocks = blocks
        self.irregular = irregular
        self.schema = schema
        self.pool = pool
        self._by_cs: Dict[int, CSBlock] = {block.cs_id: block for block in blocks}

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        triple_matrix: np.ndarray,
        schema: EmergentSchema,
        pool: Optional[BufferPool] = None,
        zone_map_properties: Optional[Dict[int, Iterable[int]]] = None,
        zone_size: int = 1024,
        name: str = "clustered",
    ) -> "ClusteredStore":
        """Build the clustered store from an encoded triple matrix and schema.

        ``zone_map_properties`` optionally maps a CS id to the predicate OIDs
        that should receive zone maps (including the implicit subject column
        when the predicate OID is ``-1``... the subject column always gets a
        zone map since it is sorted).
        """
        matrix = np.asarray(triple_matrix, dtype=np.int64).reshape(-1, 3)
        blocks: List[CSBlock] = []
        irregular_rows: List[np.ndarray] = []

        subject_cs = schema.subject_to_cs
        cs_rows: Dict[int, List[int]] = {cs_id: [] for cs_id in schema.tables}
        irregular_mask = np.zeros(matrix.shape[0], dtype=bool)

        for row_idx in range(matrix.shape[0]):
            s = int(matrix[row_idx, 0])
            p = int(matrix[row_idx, 1])
            cs_id = subject_cs.get(s)
            if cs_id is None:
                irregular_mask[row_idx] = True
                continue
            table = schema.tables[cs_id]
            spec = table.properties.get(p)
            if spec is None or spec.multiplicity is Multiplicity.MANY:
                irregular_mask[row_idx] = True
                continue
            cs_rows[cs_id].append(row_idx)

        for cs_id in sorted(cs_rows):
            table = schema.tables[cs_id]
            rows = cs_rows[cs_id]
            block, spilled = cls._build_block(
                matrix, rows, table, pool, zone_map_properties, zone_size, name,
            )
            blocks.append(block)
            if spilled.size:
                irregular_rows.append(spilled)

        irregular_matrix = matrix[irregular_mask]
        if irregular_rows:
            irregular_matrix = np.vstack([irregular_matrix] + irregular_rows) if irregular_matrix.size \
                else np.vstack(irregular_rows)
        irregular = TripleTable(irregular_matrix, order="pso", pool=pool, name=f"{name}.irregular")
        return cls(blocks=blocks, irregular=irregular, schema=schema, pool=pool)

    @staticmethod
    def _build_block(
        matrix: np.ndarray,
        row_indexes: List[int],
        table,
        pool: Optional[BufferPool],
        zone_map_properties: Optional[Dict[int, Iterable[int]]],
        zone_size: int,
        name: str,
    ) -> Tuple[CSBlock, np.ndarray]:
        """Build one CS block; returns the block and any spilled (extra) rows."""
        subjects = np.asarray(sorted(table.subjects), dtype=np.int64)
        position_of = {int(s): i for i, s in enumerate(subjects)}
        width = len(subjects)

        column_props = [p for p, spec in table.properties.items()
                        if spec.multiplicity is not Multiplicity.MANY]
        data: Dict[int, np.ndarray] = {
            p: np.full(width, NULL_OID, dtype=np.int64) for p in column_props
        }
        spilled: List[Tuple[int, int, int]] = []

        for row_idx in row_indexes:
            s, p, o = (int(v) for v in matrix[row_idx])
            position = position_of.get(s)
            if position is None:
                spilled.append((s, p, o))
                continue
            column = data.get(p)
            if column is None:
                spilled.append((s, p, o))
                continue
            if column[position] == NULL_OID:
                column[position] = o
            else:
                # second value of a nominally single-valued property: spill
                spilled.append((s, p, o))

        label = table.label or f"cs{table.cs_id}"
        subject_column = Column(
            segment_id=f"{name}.cs{table.cs_id}.subject",
            values=subjects,
            sorted_ascending=True,
            pool=pool,
        )
        property_columns = {
            p: Column(
                segment_id=f"{name}.cs{table.cs_id}.p{p}",
                values=values,
                sorted_ascending=False,
                pool=pool,
            )
            for p, values in data.items()
        }
        zone_maps: Dict[int, ZoneMap] = {}
        wanted_zone_props = set()
        if zone_map_properties and table.cs_id in zone_map_properties:
            wanted_zone_props = set(zone_map_properties[table.cs_id])
        for p in wanted_zone_props:
            if p in property_columns:
                zone_maps[p] = ZoneMap.build(property_columns[p].data, zone_size=zone_size)

        sorted_properties = frozenset(
            p for p, values in data.items() if _is_sorted_ignoring_nulls(values)
        )

        block = CSBlock(
            cs_id=table.cs_id,
            label=label,
            subject_column=subject_column,
            property_columns=property_columns,
            zone_maps=zone_maps,
            sorted_properties=sorted_properties,
        )
        spilled_matrix = np.asarray(spilled, dtype=np.int64).reshape(-1, 3) if spilled \
            else np.empty((0, 3), dtype=np.int64)
        return block, spilled_matrix

    # -- access -------------------------------------------------------------------

    def block(self, cs_id: int) -> CSBlock:
        if cs_id not in self._by_cs:
            raise StorageError(f"no clustered block for CS {cs_id}")
        return self._by_cs[cs_id]

    def block_of_subject(self, subject_oid: int) -> Optional[CSBlock]:
        cs_id = self.schema.subject_to_cs.get(subject_oid)
        if cs_id is None:
            return None
        return self._by_cs.get(cs_id)

    def blocks_with_properties(self, predicate_oids: Iterable[int]) -> List[CSBlock]:
        """Blocks whose CS contains every one of the given predicates."""
        wanted = list(predicate_oids)
        return [block for block in self.blocks
                if all(block.has_property(p) or self._cs_has_many(block.cs_id, p) for p in wanted)
                and all(block.has_property(p) for p in wanted)]

    def _cs_has_many(self, cs_id: int, predicate_oid: int) -> bool:
        table = self.schema.tables.get(cs_id)
        if table is None:
            return False
        spec = table.properties.get(predicate_oid)
        return spec is not None and spec.multiplicity is Multiplicity.MANY

    def attach_pool(self, pool: Optional[BufferPool]) -> None:
        """Attach a buffer pool to every column of every block."""
        self.pool = pool
        for block in self.blocks:
            block.subject_column.attach_pool(pool)
            for column in block.property_columns.values():
                column.attach_pool(pool)
        self.irregular.attach_pool(pool)

    def warm(self) -> None:
        """Pre-load every page of the clustered store (hot state)."""
        if self.pool is None:
            return
        for block in self.blocks:
            self.pool.warm(block.subject_column.segment_id, len(block.subject_column))
            for column in block.property_columns.values():
                self.pool.warm(column.segment_id, len(column))
        self.irregular.warm()

    # -- integrity / reconstruction ------------------------------------------------

    def reconstruct_triples(self) -> np.ndarray:
        """Rebuild the full (unordered) triple matrix from blocks + irregular.

        Used by equivalence tests: clustering must never lose or invent
        triples.
        """
        parts: List[np.ndarray] = []
        for block in self.blocks:
            subjects = block.subject_column.data
            for p, column in block.property_columns.items():
                mask = column.data != NULL_OID
                if not mask.any():
                    continue
                rows = np.column_stack([
                    subjects[mask],
                    np.full(int(mask.sum()), p, dtype=np.int64),
                    column.data[mask],
                ])
                parts.append(rows)
        if len(self.irregular):
            parts.append(self.irregular.raw())
        if not parts:
            return np.empty((0, 3), dtype=np.int64)
        return np.vstack(parts)

    def triple_count(self) -> int:
        """Total triples represented (blocks plus irregular)."""
        total = len(self.irregular)
        for block in self.blocks:
            for column in block.property_columns.values():
                total += len(column) - column.null_count()
        return total

    def regular_fraction(self) -> float:
        """Fraction of triples stored in aligned CS columns."""
        total = self.triple_count()
        if total == 0:
            return 0.0
        return (total - len(self.irregular)) / total

    def iter_encoded(self) -> Iterable[EncodedTriple]:
        """Iterate every stored triple as :class:`EncodedTriple`."""
        for s, p, o in self.reconstruct_triples():
            yield EncodedTriple(int(s), int(p), int(o))
