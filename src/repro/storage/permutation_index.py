"""Exhaustive-permutation index store (the MonetDB+HSP / RDF-3X baseline).

State-of-the-art triple stores such as RDF-3X and the MonetDB+HSP prototype
the paper measures keep the triple set in *all six* component orders, so any
triple pattern with any combination of bound components has a matching
clustered access path.  The paper's critique is that this "abundance of
access paths does not create any of the access locality that a relational
clustered index offers": answering a star pattern still requires one index
lookup join per additional property, each hopping all over the PSO index.

:class:`ExhaustiveIndexStore` reproduces that baseline faithfully: six
:class:`~repro.storage.triple_table.TripleTable` instances sharing one
buffer pool, plus the access-path selection logic (pick the permutation
whose sort-order prefix covers the bound components of a pattern).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..columnar import BufferPool
from ..errors import StorageError
from ..model import EncodedTriple
from .triple_table import ORDERS, TripleTable


class ExhaustiveIndexStore:
    """Six ordered triple projections sharing a buffer pool."""

    def __init__(
        self,
        triples: Iterable[EncodedTriple] | np.ndarray,
        pool: Optional[BufferPool] = None,
        orders: Tuple[str, ...] = ORDERS,
        name: str = "hsp",
    ) -> None:
        matrix = triples if isinstance(triples, np.ndarray) else np.asarray(
            [(t.s, t.p, t.o) for t in triples], dtype=np.int64
        ).reshape(-1, 3)
        self.name = name
        self.pool = pool
        self._predicate_counts_cache: Optional[Dict[int, int]] = None
        self.tables: Dict[str, TripleTable] = {}
        for order in orders:
            self.tables[order] = TripleTable(matrix, order=order, pool=pool, name=f"{name}.{order}")

    @classmethod
    def from_tables(
        cls,
        tables: Dict[str, TripleTable],
        pool: Optional[BufferPool] = None,
        name: str = "hsp",
    ) -> "ExhaustiveIndexStore":
        """Wrap prebuilt (typically lazily loading) projections into a store.

        Used by the snapshot reader: the six sorted projections already live
        on disk, so the store must not re-sort anything at open time.
        """
        if not tables:
            raise StorageError("an index store needs at least one projection")
        store = cls.__new__(cls)
        store.name = name
        store.pool = pool
        store._predicate_counts_cache = None
        store.tables = dict(tables)
        return store

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        first = next(iter(self.tables.values()))
        return len(first)

    def table(self, order: str) -> TripleTable:
        """Return the projection sorted in ``order``."""
        if order not in self.tables:
            raise StorageError(f"store does not maintain order {order!r}")
        return self.tables[order]

    def attach_pool(self, pool: Optional[BufferPool]) -> None:
        """Attach a buffer pool to every projection."""
        self.pool = pool
        for table in self.tables.values():
            table.attach_pool(pool)

    def warm(self) -> None:
        """Load every projection's pages into the buffer pool (hot state)."""
        for table in self.tables.values():
            table.warm()

    # -- access-path selection -------------------------------------------------

    def best_order(self, bound: str) -> str:
        """Pick the maintained order whose prefix covers the bound components.

        ``bound`` is a subset of ``"spo"`` naming the bound components of a
        triple pattern (e.g. ``"p"`` for ``?s <p> ?o``, ``"po"`` for
        ``?s <p> "x"``).  Prefers orders that additionally sort the next
        unbound component usefully (longer matching prefix first).
        """
        bound_set = set(bound)
        best: Optional[str] = None
        best_prefix = -1
        for order in self.tables:
            prefix = 0
            for component in order:
                if component in bound_set:
                    prefix += 1
                else:
                    break
            if prefix == len(bound_set) and prefix > best_prefix:
                best = order
                best_prefix = prefix
        if best is None:
            # fall back to any maintained order; pattern needs a full scan
            best = next(iter(self.tables))
        return best

    def scan_pattern(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
        fetch: str = "spo",
    ) -> np.ndarray:
        """Scan the best projection for a triple pattern with optional bounds.

        Returns an ``(n, len(fetch))`` array of the requested components for
        every matching triple.
        """
        bound_map = {"s": s, "p": p, "o": o}
        bound = "".join(c for c in "spo" if bound_map[c] is not None)
        order = self.best_order(bound)
        table = self.tables[order]
        prefix_values = [bound_map[c] for c in order if bound_map[c] is not None]
        # ensure the bound components really are a prefix of the chosen order
        usable = 0
        for component in order:
            if bound_map[component] is not None:
                usable += 1
            else:
                break
        if usable == len(prefix_values):
            return table.scan_prefix(*prefix_values, fetch=fetch)
        # no covering prefix: scan everything and filter
        rows = table.fetch_rows(0, len(table), fetch="spo")
        mask = np.ones(rows.shape[0], dtype=bool)
        for idx, component in enumerate("spo"):
            value = bound_map[component]
            if value is not None:
                mask &= rows[:, idx] == value
        selected = rows[mask]
        columns = {"s": 0, "p": 1, "o": 2}
        return selected[:, [columns[c] for c in fetch]]

    def count_pattern(self, s: Optional[int] = None, p: Optional[int] = None, o: Optional[int] = None) -> int:
        """Number of triples matching the pattern (uses binary search only)."""
        bound_map = {"s": s, "p": p, "o": o}
        bound = "".join(c for c in "spo" if bound_map[c] is not None)
        order = self.best_order(bound)
        table = self.tables[order]
        prefix_values = []
        for component in order:
            if bound_map[component] is not None:
                prefix_values.append(bound_map[component])
            else:
                break
        if len(prefix_values) == len(bound):
            lo, hi = table.prefix_row_range(*prefix_values)
            return hi - lo
        return int(self.scan_pattern(s=s, p=p, o=o, fetch="s").shape[0])

    def contains(self, triple: EncodedTriple) -> bool:
        """Exact membership check through the SPO projection."""
        order = self.best_order("spo")
        return self.tables[order].contains(triple)

    def object_lookup(self, subject: int, predicate: int) -> np.ndarray:
        """All object OIDs for (subject, predicate) — a PSO/SPO point probe."""
        return self.scan_pattern(s=subject, p=predicate, fetch="o")[:, 0]

    def predicate_counts(self) -> Dict[int, int]:
        """Triple counts per predicate (metadata, no accounting).

        Cached: the counts are immutable for the store's lifetime, and a
        snapshot reader can pre-seed the cache so optimizer statistics never
        force a lazy projection to materialize.
        """
        if self._predicate_counts_cache is None:
            self._predicate_counts_cache = self.table(self.best_order("p")).predicate_counts()
        return self._predicate_counts_cache

    def set_predicate_counts(self, counts: Dict[int, int]) -> None:
        """Pre-seed the predicate-count cache (snapshot restore path)."""
        self._predicate_counts_cache = {int(p): int(c) for p, c in counts.items()}
