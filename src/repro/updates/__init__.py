"""The write path: SPARQL Update application, delta storage and compaction.

The paper's emergent-schema store is built bulk-first: load, discover,
cluster.  This package makes the result *writable* without rebuilding:

* :class:`DeltaStore` — dictionary-encoded inserted triples (routed to an
  existing characteristic set by property-set match, else to the leftover
  bucket) plus a tombstone set for deleted base triples;
* :class:`UpdateApplier` — executes parsed ``INSERT DATA`` / ``DELETE DATA``
  / ``DELETE WHERE`` requests against a store;
* :func:`compact_store` — merges the delta into the base storage,
  incrementally maintains the emergent schema (new subjects join a matching
  CS or the irregular table; emptied subjects leave), and restores the
  value-ordered literal OID invariant;
* :class:`UpdateJournal` — the durability hook: texts of the requests
  applied since the last compaction, optionally mirrored to an on-disk
  write-ahead log (:mod:`repro.persist.wal`) so acknowledged writes
  survive crashes and ``RDFStore.open`` can replay them;
* :class:`UndoLog` / :class:`FrozenDelta` — the concurrency primitives:
  per-request undo logs make request atomicity O(touched keys), and frozen
  delta views give MVCC read snapshots an immutable state to query while
  the live delta keeps mutating (see ``docs/concurrency.md``).

Queries between writes and compactions stay correct because every access
path in :mod:`repro.engine` merges ``base ∪ delta − tombstones`` (the
MergeScan layer); see ``docs/updates.md`` and ``docs/persistence.md``.
"""

from .apply import UpdateApplier, UpdateResult
from .compaction import CompactionReport, compact_store
from .delta import DeltaStore, FrozenDelta, UndoLog
from .journal import UpdateJournal

__all__ = [
    "CompactionReport",
    "DeltaStore",
    "FrozenDelta",
    "UndoLog",
    "UpdateApplier",
    "UpdateJournal",
    "UpdateResult",
    "compact_store",
]
