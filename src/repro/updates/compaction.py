"""Compaction: fold the delta into base storage and maintain the schema.

``RDFStore.compact()`` delegates here.  Compaction is the *explicit* heavy
step of the write path — it rebuilds physical structures from the merged
triple set — but it deliberately does **not** re-run characteristic-set
discovery or subject clustering.  Schema maintenance is incremental, the way
the paper's emergent schema is meant to absorb change:

* new subjects whose (merged) property set matches an existing CS — exactly,
  or as a subset of one CS's properties — join that CS table;
* new subjects matching nothing fall into the irregular (leftover) bucket;
* subjects whose last triple was deleted leave their CS;
* affected tables get their per-property presence / multiplicity statistics
  refreshed, and schema coverage is recomputed;
* literal OIDs appended by updates are folded back into value order, so
  pushed-down range predicates regain their exact OID-interval translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from ..cs.schema_model import classify_multiplicity
from .delta import match_characteristic_set


@dataclass
class CompactionReport:
    """What one :meth:`repro.core.RDFStore.compact` call did."""

    merged_inserts: int = 0
    applied_deletes: int = 0
    subjects_assigned: int = 0
    """New subjects that joined an existing characteristic set."""
    subjects_leftover: int = 0
    """New subjects routed to the irregular (leftover) bucket."""
    subjects_removed: int = 0
    """Subjects dropped from their CS because every triple was deleted."""
    assignments: Dict[int, int] = field(default_factory=dict)
    """CS id -> number of subjects admitted into that table."""

    def describe(self) -> str:
        return (f"compaction: +{self.merged_inserts} triples, "
                f"-{self.applied_deletes} triples, "
                f"{self.subjects_assigned} subjects joined a CS, "
                f"{self.subjects_leftover} to leftover, "
                f"{self.subjects_removed} removed")


def merge_matrices(base: np.ndarray, delta) -> tuple[np.ndarray, int, int]:
    """``base − tombstones + inserts``; returns (merged, inserted, deleted)."""
    kept = base
    applied_deletes = 0
    if delta.tombstone_count():
        mask = delta.tombstone_mask(base)
        applied_deletes = int(mask.sum())
        if applied_deletes:
            kept = base[~mask]
    inserts = delta.matrix()
    if inserts.size:
        merged = np.vstack([kept, inserts]) if kept.size else inserts.copy()
    else:
        merged = kept.copy()
    return merged, int(inserts.shape[0]), applied_deletes


def compact_store(store) -> CompactionReport:
    """Merge the store's delta into its base matrix and maintain the schema.

    The caller (:meth:`repro.core.RDFStore.compact`) rebuilds the physical
    stores and refreshes catalog/statistics afterwards; this function owns
    the matrix merge and the incremental schema bookkeeping.
    """
    report = CompactionReport()
    delta = store.delta
    if delta is None or delta.is_empty():
        # a no-op compaction (inserts and deletes cancelled out) still
        # settles the journal: the base state reflects every recorded
        # request, so a later save() must not re-seed dead texts
        _clear_journal(store)
        return report

    delta_subjects = [int(s) for s in delta.delta_subjects()]
    tombstone_subjects = {int(s) for s in delta.tombstone_matrix()[:, 0]} \
        if delta.tombstone_count() else set()

    merged, report.merged_inserts, report.applied_deletes = merge_matrices(store.matrix, delta)

    schema = store.schema
    if schema is not None:
        merged_subject_set: Set[int] = set(int(s) for s in np.unique(merged[:, 0])) \
            if merged.size else set()
        affected_cs = _remove_emptied_subjects(schema, tombstone_subjects,
                                               merged_subject_set, report)
        affected_cs |= _assign_new_subjects(schema, merged, delta_subjects, report)
        # statistics drift wherever members gained or lost triples
        affected_cs |= {schema.subject_to_cs[s] for s in tombstone_subjects
                        if s in schema.subject_to_cs}
        affected_cs |= {schema.subject_to_cs[s] for s in delta_subjects
                        if s in schema.subject_to_cs}
        _refresh_table_statistics(schema, merged, affected_cs)
        _refresh_coverage(schema, merged)

    store.matrix = merged
    delta.clear()
    # only now that the merge succeeded: the journal's texts are reflected
    # in the base matrix, so save() no longer needs to seed them into a
    # fresh WAL.  Clearing any earlier would lose acknowledged updates from
    # the next snapshot if compaction failed midway.
    _clear_journal(store)
    return report


def _clear_journal(store) -> None:
    journal = getattr(store, "journal", None)
    if journal is not None:
        journal.clear()


# -- schema maintenance ------------------------------------------------------------


def _remove_emptied_subjects(schema, tombstone_subjects: Set[int],
                             merged_subjects: Set[int], report: CompactionReport) -> Set[int]:
    affected: Set[int] = set()
    gone = {s for s in tombstone_subjects if s not in merged_subjects}
    if not gone:
        return affected
    # batch the removals per table: one filter pass each, not one per subject
    by_table: Dict[int, Set[int]] = {}
    irregular_gone: Set[int] = set()
    for subject in gone:
        cs_id = schema.subject_to_cs.get(subject)
        if cs_id is not None:
            by_table.setdefault(cs_id, set()).add(subject)
        elif subject in schema.irregular_subjects:
            irregular_gone.add(subject)
    for cs_id, removed in by_table.items():
        table = schema.tables[cs_id]
        table.subjects = [s for s in table.subjects if s not in removed]
        table.support = len(table.subjects)
        for subject in removed:
            del schema.subject_to_cs[subject]
        affected.add(cs_id)
        report.subjects_removed += len(removed)
    if irregular_gone:
        schema.irregular_subjects = [s for s in schema.irregular_subjects
                                     if s not in irregular_gone]
        report.subjects_removed += len(irregular_gone)
    return affected


def _assign_new_subjects(schema, merged: np.ndarray, delta_subjects: List[int],
                         report: CompactionReport) -> Set[int]:
    """Route delta subjects that have no CS yet: exact/subset match or leftover."""
    affected: Set[int] = set()
    candidates = [s for s in delta_subjects if s not in schema.subject_to_cs]
    if not candidates:
        return affected
    property_sets = _property_sets_of(merged, candidates)
    irregular = set(schema.irregular_subjects)
    additions: Dict[int, Set[int]] = {}
    for subject in candidates:
        props = property_sets.get(subject)
        if not props:  # inserted then fully deleted again before compaction
            continue
        cs_id = match_characteristic_set(schema, props)
        if cs_id is None:
            if subject not in irregular:
                irregular.add(subject)
                report.subjects_leftover += 1
            continue
        additions.setdefault(cs_id, set()).add(subject)
        schema.subject_to_cs[subject] = cs_id
        irregular.discard(subject)
        report.subjects_assigned += 1
        report.assignments[cs_id] = report.assignments.get(cs_id, 0) + 1
    # batch per table: one merge-and-sort each, not one per subject
    for cs_id, subjects in additions.items():
        table = schema.tables[cs_id]
        table.subjects = sorted(set(table.subjects) | subjects)
        table.support = len(table.subjects)
        affected.add(cs_id)
    schema.irregular_subjects = sorted(irregular)
    return affected


def _property_sets_of(matrix: np.ndarray, subjects: List[int]) -> Dict[int, Set[int]]:
    if matrix.size == 0 or not subjects:
        return {}
    wanted = np.asarray(sorted(set(subjects)), dtype=np.int64)
    rows = matrix[np.isin(matrix[:, 0], wanted)]
    out: Dict[int, Set[int]] = {}
    for s, p in zip(rows[:, 0], rows[:, 1]):
        out.setdefault(int(s), set()).add(int(p))
    return out


def _refresh_table_statistics(schema, merged: np.ndarray, cs_ids: Set[int]) -> None:
    """Recompute presence / mean multiplicity / multiplicity class per column."""
    for cs_id in cs_ids:
        table = schema.tables.get(cs_id)
        if table is None or not table.subjects:
            continue
        members = np.asarray(table.subjects, dtype=np.int64)
        rows = merged[np.isin(merged[:, 0], members)] if merged.size else merged
        predicates = rows[:, 1] if rows.size else np.empty(0, dtype=np.int64)
        for predicate_oid, spec in table.properties.items():
            prop_rows = rows[predicates == predicate_oid] if rows.size else rows
            triple_count = int(prop_rows.shape[0])
            subject_count = int(np.unique(prop_rows[:, 0]).size) if triple_count else 0
            spec.presence = subject_count / table.support if table.support else 0.0
            spec.mean_multiplicity = triple_count / subject_count if subject_count else 1.0
            spec.multiplicity = classify_multiplicity(spec.presence, spec.mean_multiplicity)


def _refresh_coverage(schema, merged: np.ndarray) -> None:
    """Recount schema coverage over the merged matrix in O(n log m).

    One vectorized pass: each row's subject is resolved to its CS through a
    sorted lookup, and (CS, predicate) membership is tested with a single
    ``np.isin`` over packed keys — not one full-matrix scan per table,
    which would make every compaction O(tables × triples).
    """
    coverage = schema.coverage
    coverage.total_triples = int(merged.shape[0])
    subjects = np.unique(merged[:, 0]) if merged.size else np.empty(0, dtype=np.int64)
    coverage.total_subjects = int(subjects.size)
    if not merged.size or not schema.subject_to_cs:
        coverage.covered_subjects = 0
        coverage.covered_triples = 0
        return
    covered_arr = np.asarray(sorted(schema.subject_to_cs), dtype=np.int64)
    cs_of_covered = np.asarray([schema.subject_to_cs[int(s)] for s in covered_arr],
                               dtype=np.int64)
    coverage.covered_subjects = int(np.isin(subjects, covered_arr,
                                            assume_unique=True).sum())
    positions = np.searchsorted(covered_arr, merged[:, 0])
    positions = np.clip(positions, 0, covered_arr.size - 1)
    row_covered = covered_arr[positions] == merged[:, 0]
    if not row_covered.any():
        coverage.covered_triples = 0
        return
    row_cs = cs_of_covered[positions[row_covered]]
    row_pred = merged[row_covered, 1]
    base = int(max(row_pred.max(),
                   max((max(cs.property_oids(), default=0)
                        for cs in schema.tables.values()), default=0))) + 1
    table_keys = np.asarray(
        [cs.cs_id * base + p for cs in schema.tables.values()
         for p in cs.property_oids()],
        dtype=np.int64)
    coverage.covered_triples = int(np.isin(row_cs * base + row_pred,
                                           table_keys).sum())
