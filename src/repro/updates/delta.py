"""The delta store: pending inserts, tombstones and CS routing.

Writes never touch the immutable base structures (clustered CS blocks, the
irregular triple table, the six permutation indexes).  Instead they
accumulate here:

* **inserts** — dictionary-encoded triples not present in the base store,
  kept in first-write order and exposed through a small exhaustive
  permutation index so every engine access path can merge them in;
* **tombstones** — base triples marked deleted; scans filter them out;
* **routing** — each inserted subject is assigned to the characteristic set
  whose property set matches its own (exact match first, then the smallest
  superset), or to the leftover bucket when nothing matches.  Routing is
  metadata: query correctness never depends on it, but compaction uses it to
  admit new subjects into CS blocks and the store surfaces it in summaries.

Deleting a triple that only exists in the delta simply removes the insert;
re-inserting a tombstoned base triple removes the tombstone (resurrection).
The delta index is rebuilt lazily after mutations — deltas are small by
design, and :func:`repro.updates.compaction.compact_store` folds them into
the base before they grow large.

Two concurrency-facing mechanisms live here as well:

* **per-request undo logs** — ``RDFStore.update`` brackets each request with
  :meth:`DeltaStore.begin_request` / :meth:`DeltaStore.commit_request`.
  Every mutation records its *inverse* in the active :class:`UndoLog`, so a
  failed request is rolled back by replaying only the keys it touched —
  O(touched), not O(pending) — which keeps a burst of N uncompacted updates
  linear instead of quadratic;
* **frozen views** — :meth:`DeltaStore.freeze` captures the current delta
  state as an immutable :class:`FrozenDelta` that MVCC read snapshots query
  while the live delta keeps mutating.  Frozen views share the (immutable)
  per-version permutation index; versions still referenced by a pinned
  snapshot keep their buffer-pool pages until the pin is released
  (:meth:`DeltaStore.pin_version` / :meth:`DeltaStore.unpin_version`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import StorageError
from ..storage import ExhaustiveIndexStore

TripleKey = Tuple[int, int, int]

#: Routing key for inserts whose subject matches no characteristic set.
LEFTOVER = None

_INT64_MAX = (1 << 63) - 1
"""Packed-key membership tests use per-component bases (``max+1`` of each
column over both operands); packing applies whenever the bases' product fits
in an int64, which holds for any realistic dictionary since the predicate
component is tiny."""


def match_characteristic_set(schema, props: Set[int]) -> Optional[int]:
    """The single CS-routing rule shared by insert routing and compaction.

    Exact property-set match wins; otherwise the tightest superset CS
    (fewest extra properties, ties broken by support then id); ``None``
    (the leftover bucket) when nothing fits.
    """
    if schema is None or not props:
        return LEFTOVER
    exact: Optional[int] = None
    best: Optional[Tuple[int, int, int]] = None
    for cs in schema.tables.values():
        cs_props = cs.property_oids()
        if cs_props == props:
            exact = cs.cs_id if exact is None else min(exact, cs.cs_id)
        elif props <= cs_props:
            candidate = (len(cs_props - props), -cs.total_support(), cs.cs_id)
            if best is None or candidate < best:
                best = candidate
    if exact is not None:
        return exact
    if best is not None:
        return best[2]
    return LEFTOVER


class UndoLog:
    """The inverse operations of one in-flight update request.

    Each entry is ``(op, key)`` where ``op`` names what the request *did* to
    ``key``; :meth:`DeltaStore.abort_request` replays the entries backwards
    to restore the pre-request state.  The log grows with the keys the
    request actually touched, never with the number of pending writes — this
    is what makes request atomicity O(touched) instead of O(pending)."""

    __slots__ = ("ops",)

    #: The request added ``key`` to the pending inserts.
    INSERTED = "inserted"
    #: The request removed ``key`` from the pending inserts (delta-only delete).
    INSERT_REMOVED = "insert_removed"
    #: The request tombstoned the base triple ``key``.
    TOMBSTONED = "tombstoned"
    #: The request resurrected ``key`` (dropped its tombstone).
    TOMBSTONE_REMOVED = "tombstone_removed"

    def __init__(self) -> None:
        self.ops: List[Tuple[str, TripleKey]] = []

    def record(self, op: str, key: TripleKey) -> None:
        self.ops.append((op, key))

    def __len__(self) -> int:
        return len(self.ops)


class DeltaStore:
    """Pending writes over an immutable base store, in OID space."""

    def __init__(self, schema=None, pool=None, name: str = "delta") -> None:
        self.schema = schema
        self.pool = pool
        self.name = name
        self._inserts: Dict[TripleKey, None] = {}  # ordered set
        self._tombstones: Set[TripleKey] = set()
        self._subject_props: Dict[int, Set[int]] = {}
        self._subject_inserts: Dict[int, Set[TripleKey]] = {}
        self._routes: Dict[int, Optional[int]] = {}
        self._index: Optional[ExhaustiveIndexStore] = None
        self._tombstones_by_p: Optional[Dict[int, List[TripleKey]]] = None
        self.version = 0
        self._undo: Optional[UndoLog] = None
        self._pin_lock = threading.Lock()
        """Guards the pin/deferred-drop bookkeeping: snapshots release their
        pins from reader threads while the writer may be superseding the
        version they pinned."""
        self._pins: Dict[int, int] = {}
        """Pin counts per delta version held by open read snapshots."""
        self._deferred_drops: Set[int] = set()
        """Superseded versions whose index pages are still pinned."""

    # -- mutation -----------------------------------------------------------------

    def insert(self, s: int, p: int, o: int, in_base: bool) -> bool:
        """Record one inserted triple; returns ``True`` when state changed.

        ``in_base`` tells whether the triple exists in the base store.  A
        tombstoned base triple is resurrected (tombstone dropped); a triple
        already present (base or delta) is a no-op — RDF graphs are sets.
        """
        key = (int(s), int(p), int(o))
        if key in self._tombstones:
            self._tombstones.discard(key)
            self._record_undo(UndoLog.TOMBSTONE_REMOVED, key)
            self._dirty()
            return True
        if in_base or key in self._inserts:
            return False
        self._inserts[key] = None
        self._note_subject_insert(key)
        self._record_undo(UndoLog.INSERTED, key)
        self._dirty()
        return True

    def delete(self, s: int, p: int, o: int, in_base: bool) -> bool:
        """Record one deleted triple; returns ``True`` when state changed.

        A delta-only triple is removed from the delta; a base triple gains a
        tombstone; anything else is a no-op.
        """
        key = (int(s), int(p), int(o))
        if key in self._inserts:
            del self._inserts[key]
            self._drop_subject_insert(key)
            self._record_undo(UndoLog.INSERT_REMOVED, key)
            self._dirty()
            return True
        if key in self._tombstones or not in_base:
            return False
        self._tombstones.add(key)
        self._record_undo(UndoLog.TOMBSTONED, key)
        self._dirty()
        return True

    # -- request atomicity (per-request undo log) -----------------------------------

    def begin_request(self) -> UndoLog:
        """Open an undo log for one update request.

        Every mutation until :meth:`commit_request` / :meth:`abort_request`
        records its inverse in the returned log.  Requests cannot nest — the
        store's single-writer lock guarantees one request at a time, and a
        second ``begin_request`` is a programming error, not a race.
        """
        if self._undo is not None:
            raise StorageError("an update request is already in flight")
        self._undo = UndoLog()
        return self._undo

    def commit_request(self, undo: UndoLog) -> None:
        """Close a request's undo log, keeping its effects."""
        if undo is not self._undo:
            raise StorageError("commit_request called with a stale undo log")
        self._undo = None

    def abort_request(self, undo: UndoLog) -> None:
        """Roll back one request by replaying its undo log backwards.

        Only the keys the request touched are visited.  A re-added insert
        lands at the end of the insert order; that order only affects the
        matrix layout at the next compaction, never query results (RDF
        graphs are sets).
        """
        if undo is not self._undo:
            raise StorageError("abort_request called with a stale undo log")
        self._undo = None
        for op, key in reversed(undo.ops):
            if op == UndoLog.INSERTED:
                self._inserts.pop(key, None)
                self._drop_subject_insert(key)
            elif op == UndoLog.INSERT_REMOVED:
                self._inserts[key] = None
                self._note_subject_insert(key)
            elif op == UndoLog.TOMBSTONED:
                self._tombstones.discard(key)
            elif op == UndoLog.TOMBSTONE_REMOVED:
                self._tombstones.add(key)
            else:  # pragma: no cover - the four ops above are exhaustive
                raise StorageError(f"unknown undo operation {op!r}")
        if undo.ops:
            self._dirty()

    def _record_undo(self, op: str, key: TripleKey) -> None:
        if self._undo is not None:
            self._undo.record(op, key)

    def attach_schema(self, schema) -> None:
        """Attach (or replace) the schema used for CS routing."""
        self.schema = schema
        self._routes.clear()

    def clear(self) -> None:
        """Drop all pending writes (after compaction or a full reload)."""
        self._inserts.clear()
        self._tombstones.clear()
        self._subject_props.clear()
        self._subject_inserts.clear()
        self._routes.clear()
        self._dirty()

    def _dirty(self) -> None:
        if self.pool is not None:
            # the index is rebuilt under a new versioned segment name; evict
            # the superseded generation's pages so they stop counting toward
            # pool capacity and cold/hot accounting.  A version pinned by an
            # open read snapshot is *not* evicted — its frozen view still
            # scans those segments — only queued for reclaim at unpin time.
            # The deferred set can also hold the *current* version: a frozen
            # view may have built (and released) index pages the live store
            # never did (see unpin_version).
            with self._pin_lock:
                stale_pages = (self._index is not None
                               or self.version in self._deferred_drops)
                if stale_pages:
                    if self._pins.get(self.version):
                        self._deferred_drops.add(self.version)
                    else:
                        self._deferred_drops.discard(self.version)
                        self.pool.drop_segments(self._segment_prefix(self.version))
        self._index = None
        self._tombstones_by_p = None
        self.version += 1

    def _segment_prefix(self, version: int) -> str:
        """Buffer-pool segment prefix of one version's permutation index.

        The trailing separator keeps ``v1`` from also matching ``v10``."""
        return f"{self.name}.v{version}."

    # -- snapshot pinning ------------------------------------------------------------

    def pin_version(self) -> int:
        """Pin the current version (an open read snapshot references it).

        While a version is pinned, superseding it does not evict its index
        pages from the buffer pool — a frozen view may still be scanning
        them.  Returns the pinned version for :meth:`unpin_version`.
        """
        with self._pin_lock:
            self._pins[self.version] = self._pins.get(self.version, 0) + 1
            return self.version

    def unpin_version(self, version: int) -> None:
        """Release one pin; reclaim the version's pages once unreferenced."""
        with self._pin_lock:
            remaining = self._pins.get(version, 0) - 1
            if remaining > 0:
                self._pins[version] = remaining
                return
            self._pins.pop(version, None)
            if version == self.version:
                # the version is still current: its pages must never be
                # dropped here — the live index (if built) is in active use.
                # When only a frozen view built pages (live _index is None),
                # queue them so the next supersession's _dirty() reclaims
                # them instead of leaking them in the pool.
                if self._index is None:
                    self._deferred_drops.add(version)
                return
            self._deferred_drops.discard(version)
        if self.pool is not None:
            # superseded and unreferenced — whether the drop was deferred at
            # supersession time or the pages were built by a frozen view the
            # live store never queued a drop for, sweep them now
            self.pool.drop_segments(self._segment_prefix(version))

    def pinned_versions(self) -> Set[int]:
        """Versions currently referenced by open read snapshots."""
        with self._pin_lock:
            return set(self._pins)

    def deferred_reclaim_depth(self) -> int:
        """Versions whose page reclamation is queued behind open pins.

        A persistently nonzero depth under a read-heavy workload means
        snapshot pins are outliving writes and superseded delta index pages
        are accumulating in the buffer pool.
        """
        with self._pin_lock:
            return len(self._deferred_drops)

    # -- frozen views (MVCC read epochs) -----------------------------------------------

    def freeze(self) -> "FrozenDelta":
        """An immutable view of the current delta state.

        The view copies the insert/tombstone bookkeeping (O(pending), done
        once per read epoch, typically cached by the snapshot registry) and
        *shares* the already-built permutation index — index objects are
        immutable per version; mutations always build a new one.
        """
        return FrozenDelta(self)

    def _note_subject_insert(self, key: TripleKey) -> None:
        subject, predicate = key[0], key[1]
        self._subject_props.setdefault(subject, set()).add(predicate)
        self._subject_inserts.setdefault(subject, set()).add(key)
        self._routes.pop(subject, None)

    def _drop_subject_insert(self, key: TripleKey) -> None:
        """Forget one insert, recomputing only that subject's property set."""
        subject = key[0]
        remaining = self._subject_inserts.get(subject, set())
        remaining.discard(key)
        if remaining:
            self._subject_props[subject] = {p for (_s, p, _o) in remaining}
        else:
            self._subject_inserts.pop(subject, None)
            self._subject_props.pop(subject, None)
        self._routes.pop(subject, None)

    # -- inspection ---------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._inserts and not self._tombstones

    def insert_count(self) -> int:
        return len(self._inserts)

    def tombstone_count(self) -> int:
        return len(self._tombstones)

    def contains_insert(self, s: int, p: int, o: int) -> bool:
        return (int(s), int(p), int(o)) in self._inserts

    def is_tombstoned(self, s: int, p: int, o: int) -> bool:
        return (int(s), int(p), int(o)) in self._tombstones

    def matrix(self) -> np.ndarray:
        """The pending inserts as an ``(n, 3)`` S/P/O matrix (insert order)."""
        if not self._inserts:
            return np.empty((0, 3), dtype=np.int64)
        return np.asarray(list(self._inserts), dtype=np.int64)

    def tombstone_matrix(self) -> np.ndarray:
        """The tombstones as an ``(n, 3)`` S/P/O matrix (unordered)."""
        if not self._tombstones:
            return np.empty((0, 3), dtype=np.int64)
        return np.asarray(sorted(self._tombstones), dtype=np.int64)

    def delta_subjects(self) -> np.ndarray:
        """Distinct subject OIDs with at least one pending insert."""
        if not self._subject_props:
            return np.empty(0, dtype=np.int64)
        return np.asarray(sorted(self._subject_props), dtype=np.int64)

    def subjects_touching(self, predicates: Iterable[int]) -> np.ndarray:
        """Subjects with an insert *or* tombstone on any given predicate.

        These are the subjects whose star-pattern answers can no longer be
        read from the base CS block alone; the clustered scan routes them
        through its per-subject union path.
        """
        wanted = set(int(p) for p in predicates)
        touched: Set[int] = set()
        for s, p, _o in self._inserts:
            if p in wanted:
                touched.add(s)
        for s, p, _o in self._tombstones:
            if p in wanted:
                touched.add(s)
        if not touched:
            return np.empty(0, dtype=np.int64)
        return np.asarray(sorted(touched), dtype=np.int64)

    # -- merge-scan access paths ----------------------------------------------------

    def index(self) -> ExhaustiveIndexStore:
        """A small exhaustive permutation index over the pending inserts.

        Rebuilt lazily after mutations; the segment names carry the delta
        version so buffer-pool accounting never confuses two generations of
        delta pages.
        """
        if self._index is None:
            self._index = ExhaustiveIndexStore(
                self.matrix(), pool=self.pool, name=f"{self.name}.v{self.version}")
        return self._index

    def scan_pattern(self, s: Optional[int] = None, p: Optional[int] = None,
                     o: Optional[int] = None, fetch: str = "spo") -> np.ndarray:
        """Pattern scan over the pending inserts (same shape as the base API)."""
        if not self._inserts:
            return np.empty((0, len(fetch)), dtype=np.int64)
        return self.index().scan_pattern(s=s, p=p, o=o, fetch=fetch)

    def object_values(self, subject: int, predicate: int) -> List[int]:
        """Pending object values of ``(subject, predicate)``."""
        if not self._inserts:
            return []
        rows = self.scan_pattern(s=subject, p=predicate, fetch="o")
        return [int(v) for v in rows[:, 0]]

    def _grouped_tombstones(self) -> Dict[int, List[TripleKey]]:
        if self._tombstones_by_p is None:
            grouped: Dict[int, List[TripleKey]] = {}
            for key in self._tombstones:
                grouped.setdefault(key[1], []).append(key)
            self._tombstones_by_p = grouped
        return self._tombstones_by_p

    def tombstone_mask(self, rows: np.ndarray,
                       predicate: Optional[int] = None) -> np.ndarray:
        """Boolean mask of tombstoned rows in an ``(n, 3)`` S/P/O array.

        ``predicate`` narrows the tombstones consulted when every row is
        known to carry that predicate.  Membership is tested with one
        ``np.isin`` over packed ``(s, p, o)`` int64 keys — a single
        ``DELETE WHERE`` can create thousands of tombstones, so the check
        must stay ``O((n + T) log T)``, not ``O(n · T)``.
        """
        mask = np.zeros(rows.shape[0], dtype=bool)
        if not self._tombstones or rows.size == 0:
            return mask
        if predicate is not None:
            candidates = self._grouped_tombstones().get(int(predicate), [])
        else:
            candidates = list(self._tombstones)
        if not candidates:
            return mask
        tombs = np.asarray(candidates, dtype=np.int64)
        base_p = max(int(rows[:, 1].max()), int(tombs[:, 1].max())) + 1
        base_o = max(int(rows[:, 2].max()), int(tombs[:, 2].max())) + 1
        base_s = max(int(rows[:, 0].max()), int(tombs[:, 0].max())) + 1
        if 0 < base_s * base_p * base_o <= _INT64_MAX:
            row_keys = (rows[:, 0] * base_p + rows[:, 1]) * base_o + rows[:, 2]
            tomb_keys = (tombs[:, 0] * base_p + tombs[:, 1]) * base_o + tombs[:, 2]
            return np.isin(row_keys, tomb_keys)
        for ts, tp, to in candidates:  # astronomically large OIDs: safe fallback
            mask |= (rows[:, 0] == ts) & (rows[:, 1] == tp) & (rows[:, 2] == to)
        return mask

    def pair_tombstone_mask(self, predicate: int, subjects: np.ndarray,
                            objects: np.ndarray) -> np.ndarray:
        """Tombstone mask over aligned (subject, object) pairs of one predicate."""
        mask = np.zeros(subjects.shape[0], dtype=bool)
        if subjects.size == 0:
            return mask
        candidates = self._grouped_tombstones().get(int(predicate), [])
        if not candidates:
            return mask
        tombs = np.asarray(candidates, dtype=np.int64)
        base_s = max(int(subjects.max()), int(tombs[:, 0].max())) + 1
        base_o = max(int(objects.max()), int(tombs[:, 2].max())) + 1
        if 0 < base_s * base_o <= _INT64_MAX:
            pair_keys = subjects * base_o + objects
            tomb_keys = tombs[:, 0] * base_o + tombs[:, 2]
            return np.isin(pair_keys, tomb_keys)
        for ts, _tp, to in candidates:
            mask |= (subjects == ts) & (objects == to)
        return mask

    # -- CS routing -----------------------------------------------------------------

    def route_of(self, subject: int, base_properties: Optional[Set[int]] = None) -> Optional[int]:
        """The CS id this inserted subject is routed to (``None`` = leftover).

        The routed CS is the one whose property set equals the subject's
        combined (base + delta) property set; failing that, the smallest
        superset CS (ties broken by support).  Subjects already assigned to
        a CS in the schema keep that assignment.
        """
        subject = int(subject)
        if self.schema is not None:
            assigned = self.schema.subject_to_cs.get(subject)
            if assigned is not None:
                return assigned
        if subject in self._routes and base_properties is None:
            return self._routes[subject]
        props = set(self._subject_props.get(subject, set()))
        if base_properties:
            props |= set(base_properties)
        route = self._match_cs(props)
        if base_properties is None:
            self._routes[subject] = route
        return route

    def _match_cs(self, props: Set[int]) -> Optional[int]:
        return match_characteristic_set(self.schema, props)

    def routed_inserts(self) -> Dict[Optional[int], np.ndarray]:
        """Pending inserts bucketed by routed CS (``None`` = leftover)."""
        buckets: Dict[Optional[int], List[TripleKey]] = {}
        for key in self._inserts:
            buckets.setdefault(self.route_of(key[0]), []).append(key)
        return {cs_id: np.asarray(rows, dtype=np.int64)
                for cs_id, rows in buckets.items()}

    # -- buffer-pool integration ------------------------------------------------------

    def attach_pool(self, pool) -> None:
        self.pool = pool
        if self._index is not None:
            self._index.attach_pool(pool)

    def warm(self) -> None:
        """Pre-load the delta index pages (part of the store's hot state)."""
        if self._inserts:
            self.index().warm()

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        routed = self.routed_inserts()
        return {
            "pending_inserts": self.insert_count(),
            "pending_deletes": self.tombstone_count(),
            "routed_cs_buckets": sum(1 for cs_id in routed if cs_id is not None),
            "leftover_inserts": int(routed.get(LEFTOVER, np.empty((0, 3))).shape[0]),
        }


class FrozenDelta(DeltaStore):
    """An immutable point-in-time view of a :class:`DeltaStore`.

    MVCC read snapshots query one of these while the live delta keeps
    mutating: the view owns shallow copies of the insert/tombstone
    bookkeeping and shares the per-version permutation index (immutable —
    mutations always create a new one under a new segment name).  Every read
    method of :class:`DeltaStore` works unchanged; the mutating ones raise
    :class:`~repro.errors.StorageError`.
    """

    def __init__(self, source: DeltaStore) -> None:
        super().__init__(schema=source.schema, pool=source.pool, name=source.name)
        self.version = source.version
        self._inserts = dict(source._inserts)
        self._tombstones = set(source._tombstones)
        self._subject_props = {s: set(p) for s, p in source._subject_props.items()}
        self._subject_inserts = {s: set(k) for s, k in source._subject_inserts.items()}
        self._routes = dict(source._routes)
        self._index = source._index
        self._frozen = True

    def _immutable(self) -> StorageError:
        return StorageError("a frozen delta view is immutable; write through the store")

    def insert(self, s: int, p: int, o: int, in_base: bool) -> bool:
        raise self._immutable()

    def delete(self, s: int, p: int, o: int, in_base: bool) -> bool:
        raise self._immutable()

    def clear(self) -> None:
        raise self._immutable()

    def begin_request(self) -> UndoLog:
        raise self._immutable()

    def attach_schema(self, schema) -> None:
        raise self._immutable()
