"""The update journal: the write path's durability hook.

Durability for the write path is *logical*: what gets persisted is the text
of every successful ``RDFStore.update()`` request, not binary diffs of the
delta store.  Replaying the texts in order from the snapshotted base state
reproduces the delta exactly — update application is deterministic, and
text-level records stay valid even though compaction re-maps literal OIDs
(the replayed updates simply re-derive their own, equally consistent, OID
assignment).

The :class:`UpdateJournal` keeps the two copies of that record stream:

* an **in-memory list** of the requests applied since the last compaction —
  this is what ``RDFStore.save()`` seeds a fresh write-ahead log with, so a
  snapshot taken with pending writes never drops them;
* an optional **attached write-ahead log** (see
  :mod:`repro.persist.wal`): when present, every recorded request is
  appended and fsynced to disk before ``update()`` returns, so the request
  survives a crash.

``RDFStore.update`` records here after a successful apply;
:func:`repro.updates.compaction.compact_store` clears the in-memory list
once the delta is folded into the base (the on-disk WAL keeps its records
until a checkpoint truncates it: replaying them against the *old* on-disk
snapshot still reproduces a query-equivalent state).  During WAL replay the
journal is put into replaying mode so re-applied requests are remembered in
memory but not appended to the log a second time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List


class UpdateJournal:
    """Texts of the update requests applied since the last compaction.

    Recording always happens under the store's single-writer lock; the
    journal's own lock additionally keeps :meth:`texts` / :meth:`__len__`
    coherent for monitoring threads that inspect a live store.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._texts: List[str] = []
        self._wal = None
        self._replaying = False

    # -- recording -----------------------------------------------------------

    def record(self, text: str) -> None:
        """Remember one successfully applied update request.

        Appends to the attached WAL (fsynced) unless the journal is in
        replaying mode — a replayed request is already on disk.  The WAL
        append happens *before* the in-memory append: if the disk write
        fails, the journal must not remember a request the caller will see
        fail (and roll back), or a later ``save()`` would replay it.
        """
        with self._lock:
            if self._wal is not None and not self._replaying:
                self._wal.append(text)
            self._texts.append(text)

    def clear(self) -> None:
        """Forget the in-memory texts (called after compaction folds them
        into the base matrix; the attached WAL is *not* touched)."""
        with self._lock:
            self._texts.clear()

    def texts(self) -> List[str]:
        """The recorded request texts, oldest first."""
        with self._lock:
            return list(self._texts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._texts)

    # -- WAL attachment ------------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.persist.wal.WriteAheadLog`, if any."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Attach (or detach, with ``None``) the on-disk log."""
        self._wal = wal

    @property
    def is_replaying(self) -> bool:
        return self._replaying

    @contextmanager
    def replaying(self) -> Iterator[None]:
        """Context manager suppressing WAL appends while records re-apply."""
        previous = self._replaying
        self._replaying = True
        try:
            yield
        finally:
            self._replaying = previous
