"""Applying parsed SPARQL Update requests to a store's delta overlay.

The applier is deliberately thin: it encodes terms, decides base membership,
and feeds the :class:`~repro.updates.delta.DeltaStore`, which owns the
insert/tombstone/resurrection rules.  ``DELETE WHERE`` evaluates its pattern
block as an ordinary (delta-aware) SELECT first, then deletes every
instantiation of the template — the engine's MergeScan layer guarantees the
pre-deletion snapshot already reflects earlier statements of the same
request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..errors import StorageError
from ..model import EncodedTriple, Triple
from ..sparql.ast import (
    DeleteDataOp,
    DeleteWhereOp,
    InsertDataOp,
    SelectQuery,
    UpdateRequest,
    Variable,
)


@dataclass
class UpdateResult:
    """Outcome of one :meth:`repro.core.RDFStore.update` call."""

    inserted: int = 0
    deleted: int = 0
    statements: int = 0

    @property
    def changed(self) -> bool:
        return self.inserted > 0 or self.deleted > 0

    def merge(self, other: "UpdateResult") -> None:
        self.inserted += other.inserted
        self.deleted += other.deleted
        self.statements += other.statements


class UpdateApplier:
    """Executes an :class:`UpdateRequest` against one store's delta."""

    def __init__(self, store) -> None:
        self.store = store
        self._base_keys: Optional[np.ndarray] = None
        self._base_bases: Optional[Tuple[int, int]] = None

    def apply(self, request: UpdateRequest) -> UpdateResult:
        result = UpdateResult()
        for operation in request.operations:
            if isinstance(operation, InsertDataOp):
                result.merge(self._insert_data(operation))
            elif isinstance(operation, DeleteDataOp):
                result.merge(self._delete_data(operation))
            elif isinstance(operation, DeleteWhereOp):
                result.merge(self._delete_where(operation))
            else:  # pragma: no cover - parser only produces the three forms
                raise StorageError(f"unsupported update operation {operation!r}")
        return result

    # -- statements -----------------------------------------------------------------

    def _insert_data(self, operation: InsertDataOp) -> UpdateResult:
        delta = self.store.require_delta()
        result = UpdateResult(statements=1)
        for triple in operation.triples:
            encoded = self.store.dictionary.encode_triple(triple)
            if delta.insert(encoded.s, encoded.p, encoded.o,
                            in_base=self._base_contains(encoded)):
                result.inserted += 1
        return result

    def _delete_data(self, operation: DeleteDataOp) -> UpdateResult:
        delta = self.store.require_delta()
        result = UpdateResult(statements=1)
        for triple in operation.triples:
            encoded = self._lookup_triple(triple)
            if encoded is None:  # an unseen term cannot be part of any triple
                continue
            if delta.delete(encoded.s, encoded.p, encoded.o,
                            in_base=self._base_contains(encoded)):
                result.deleted += 1
        return result

    def _delete_where(self, operation: DeleteWhereOp) -> UpdateResult:
        result = UpdateResult(statements=1)
        for s, p, o in self._matching_triples(operation):
            encoded = EncodedTriple(s, p, o)
            if self.store.require_delta().delete(
                    encoded.s, encoded.p, encoded.o,
                    in_base=self._base_contains(encoded)):
                result.deleted += 1
        return result

    # -- DELETE WHERE evaluation -------------------------------------------------------

    def _matching_triples(self, operation: DeleteWhereOp) -> Set[Tuple[int, int, int]]:
        """All OID triples matched by the pattern block (evaluated as a BGP)."""
        variables = operation.all_variables()
        if not variables:
            # a fully ground block deletes its triples iff *every* one matches
            encoded: List[EncodedTriple] = []
            for pattern in operation.patterns:
                triple = Triple(pattern.subject, pattern.predicate, pattern.object)
                found = self._lookup_triple(triple)
                if found is None or not self._is_live(found):
                    return set()
                encoded.append(found)
            return {(t.s, t.p, t.o) for t in encoded}

        query = SelectQuery(select_variables=list(variables),
                            patterns=list(operation.patterns))
        bindings = self.store.sparql_engine().query_parsed(query)
        matches: Set[Tuple[int, int, int]] = set()
        for row in bindings.rows():
            binding = dict(zip(variables, (int(v) for v in row)))
            for pattern in operation.patterns:
                resolved = self._resolve_pattern(pattern, binding)
                if resolved is not None:
                    matches.add(resolved)
        return matches

    def _resolve_pattern(self, pattern, binding) -> Optional[Tuple[int, int, int]]:
        oids = []
        for node in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(node, Variable):
                oids.append(binding[node.name])
                continue
            oid = self.store.dictionary.lookup_term(node)
            if oid is None:
                return None
            oids.append(oid)
        return (oids[0], oids[1], oids[2])

    # -- membership helpers --------------------------------------------------------------

    def _lookup_triple(self, triple: Triple) -> Optional[EncodedTriple]:
        """Encode a ground triple without assigning new OIDs; ``None`` if unseen."""
        dictionary = self.store.dictionary
        s = dictionary.lookup_term(triple.subject)
        p = dictionary.lookup_term(triple.predicate)
        o = dictionary.lookup_term(triple.object)
        if s is None or p is None or o is None:
            return None
        return EncodedTriple(s, p, o)

    def _base_contains(self, encoded: EncodedTriple) -> bool:
        store = self.store
        if store.index_store is not None:
            return store.index_store.contains(encoded)
        matrix = store.matrix
        if matrix.size == 0:
            return False
        # no exhaustive indexes: build a sorted packed-key view of the base
        # once per request so bulk updates probe in O(log N) instead of
        # scanning the whole matrix per triple
        if self._base_bases is None:
            base_s = int(matrix[:, 0].max()) + 1
            base_p = int(matrix[:, 1].max()) + 1
            base_o = int(matrix[:, 2].max()) + 1
            if base_s * base_p * base_o <= (1 << 63) - 1:
                self._base_bases = (base_p, base_o)
                self._base_keys = np.sort(
                    (matrix[:, 0] * base_p + matrix[:, 1]) * base_o + matrix[:, 2])
            else:  # astronomically large OIDs: packing would overflow int64
                self._base_bases = (0, 0)
        if self._base_keys is None:
            return bool(np.any((matrix[:, 0] == encoded.s)
                               & (matrix[:, 1] == encoded.p)
                               & (matrix[:, 2] == encoded.o)))
        base_p, base_o = self._base_bases
        if encoded.p >= base_p or encoded.o >= base_o:
            return False  # a component the base has never seen
        key = (encoded.s * base_p + encoded.p) * base_o + encoded.o
        position = int(np.searchsorted(self._base_keys, key))
        return position < self._base_keys.size and int(self._base_keys[position]) == key

    def _is_live(self, encoded: EncodedTriple) -> bool:
        """Whether the triple is visible right now (base ∪ delta − tombstones)."""
        delta = self.store.require_delta()
        if delta.contains_insert(*encoded):
            return True
        if delta.is_tombstoned(*encoded):
            return False
        return self._base_contains(encoded)
