"""Metric primitives: counters, gauges, histograms and their registry.

The observability layer is deliberately dependency-free (stdlib only) and
import-free of the rest of the package, so every subsystem — the engine,
the buffer pool, the WAL, the server — can record into it without creating
import cycles.

Three primitive kinds, all label-aware:

* :class:`Counter` — monotonically increasing totals
  (``queries_total{scheme="optimized"}``);
* :class:`Gauge` — point-in-time values, either set explicitly or read
  lazily from a callback at collection time (``fn=``), which is how the
  buffer pool's and plan cache's existing ``stats()`` dictionaries are
  adapted without double bookkeeping;
* :class:`Histogram` — fixed log-scaled buckets with ``sum``/``count``/
  ``max`` and bucket-interpolated p50/p95/p99, sized for latencies from
  10 µs to minutes (other value domains pass their own ``buckets``).

A :class:`MetricsRegistry` owns a namespace of metrics.  Registration is
get-or-create: instrumentation sites simply ask for
``registry.counter("wal_appends_total")`` and always receive the same
object, so hot paths can cache the handle once and cold paths stay
one-liners.  There is one **process-global default registry**
(:func:`default_registry`) for components without a natural owner (the
WAL, module-level helpers) and one **per-store registry**
(``RDFStore.metrics_registry``) for everything scoped to a store's
lifetime; ``render_prometheus`` merges any number of registries into one
exposition document.
"""

from __future__ import annotations

import math
import sys
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "render_prometheus",
]

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05,
    1e-04, 2.5e-04, 5e-04,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)
"""Log-scaled (1–2.5–5 decades) latency buckets, in seconds."""


class Metric:
    """Common behaviour: a name, help text, label names and child samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        if not name or any(ch in name for ch in ' \t\n{}"'):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        """Validate label kwargs against the declared names, in order."""
        if len(labels) != len(self.labelnames) or any(
                name not in labels for name in self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    # -- collection interface (implemented per kind) --------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total, optionally labeled.

    ``fn`` adapts an existing lifetime counter (e.g. ``BufferPool.evictions``)
    without double bookkeeping: the callback is read at collection time and
    the counter accepts no explicit :meth:`inc` in that mode.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help, labelnames)
        if fn is not None and labelnames:
            raise ValueError("callback counters cannot be labeled")
        self._fn = fn
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labeled child."""
        if amount < 0:
            raise ValueError("counters only go up")
        if self._fn is not None:
            raise ValueError(f"counter {self.name!r} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._fn is not None:
            return [((), float(self._fn()))]
        with self._lock:
            if not self._values and not self.labelnames:
                return [((), 0.0)]  # unlabeled counters exist at 0 from birth
            return sorted(self._values.items())


class Gauge(Metric):
    """A point-in-time value: set/add explicitly, or computed by ``fn``."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help, labelnames)
        if fn is not None and labelnames:
            raise ValueError("callback gauges cannot be labeled")
        self._fn = fn
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the gauge by ``amount`` (negative to decrease)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._fn is not None:
            return [((), float(self._fn()))]
        with self._lock:
            if not self._values and not self.labelnames:
                return [((), 0.0)]  # unlabeled gauges exist at 0 from birth
            return sorted(self._values.items())


class _HistogramState:
    """Per-labelset bucket counts plus sum/count/max."""

    __slots__ = ("counts", "sum", "count", "max")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1 for the overflow slot
        self.sum = 0.0
        self.count = 0
        self.max = 0.0


class Histogram(Metric):
    """Fixed-bucket histogram with percentile estimation.

    Buckets follow Prometheus ``le`` semantics: slot *i* counts values in
    ``(bucket[i-1], bucket[i]]`` and one overflow slot catches everything
    beyond the last bound.  Percentiles are estimated by linear
    interpolation inside the containing bucket (the overflow bucket
    interpolates toward the observed maximum), so their error is bounded by
    one bucket width — plenty for p50/p95/p99 dashboards, and cheap enough
    to keep on every query.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be a strictly increasing sequence")
        self.buckets: Tuple[float, ...] = bounds
        self._states: Dict[Tuple[str, ...], _HistogramState] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        slot = bisect_left(self.buckets, value)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            state.counts[slot] += 1
            state.sum += value
            state.count += 1
            if value > state.max:
                state.max = value

    def _state(self, labels: Dict[str, object]) -> Optional[_HistogramState]:
        key = self._key(labels)
        with self._lock:
            return self._states.get(key)

    def count(self, **labels: object) -> int:
        state = self._state(labels)
        return state.count if state is not None else 0

    def sum(self, **labels: object) -> float:
        state = self._state(labels)
        return state.sum if state is not None else 0.0

    def max(self, **labels: object) -> float:
        state = self._state(labels)
        return state.max if state is not None else 0.0

    def mean(self, **labels: object) -> float:
        """Exact arithmetic mean, derived from the running sum/count."""
        state = self._state(labels)
        if state is None or state.count == 0:
            return 0.0
        return state.sum / state.count

    def percentile(self, q: float, **labels: object) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        state = self._state(labels)
        if state is None or state.count == 0:
            return 0.0
        with self._lock:
            counts = list(state.counts)
            total = state.count
            observed_max = state.max
        target = q * total
        cumulative = 0
        for slot, slot_count in enumerate(counts):
            if slot_count == 0:
                continue
            if cumulative + slot_count >= target:
                lower = self.buckets[slot - 1] if slot > 0 else 0.0
                upper = self.buckets[slot] if slot < len(self.buckets) else observed_max
                upper = min(upper, observed_max) if observed_max > 0 else upper
                if upper <= lower:
                    return min(upper if upper > lower else lower, observed_max)
                fraction = (target - cumulative) / slot_count
                return min(lower + fraction * (upper - lower), observed_max)
            cumulative += slot_count
        return observed_max

    def summary(self, **labels: object) -> Dict[str, float]:
        """``count``/``sum``/``max``/``mean``/``p50``/``p95``/``p99`` in one dict."""
        state = self._state(labels)
        if state is None or state.count == 0:
            return {"count": 0, "sum": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": state.count,
            "sum": state.sum,
            "max": state.max,
            "mean": state.sum / state.count,
            "p50": self.percentile(0.50, **labels),
            "p95": self.percentile(0.95, **labels),
            "p99": self.percentile(0.99, **labels),
        }

    def samples(self) -> List[Tuple[Tuple[str, ...], _HistogramState]]:
        with self._lock:
            return sorted(self._states.items())


class MetricsRegistry:
    """A thread-safe, get-or-create namespace of metrics.

    One registry exists per :class:`~repro.core.RDFStore` (store-lifetime:
    it survives physical rebuilds, compactions and even
    ``RDFStore.open(into=)`` state swaps) plus the process-global
    :func:`default_registry`.  Asking for an existing name returns the
    existing object; asking with a conflicting kind or label set raises.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    # -- registration (get-or-create) -----------------------------------------

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str],
                  **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}")
                return existing
            metric = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                fn: Optional[Callable[[], float]] = None) -> Counter:
        return self._register(Counter, name, help, labelnames, fn=fn)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = (),
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge, name, help, labelnames, fn=fn)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    # -- introspection ---------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def collect(self) -> Dict[str, float]:
        """Flatten every sample into ``{"name{label=\"v\"}": value}``.

        Histograms contribute ``_count``/``_sum``/``_max``/``_p50``/
        ``_p95``/``_p99`` pseudo-samples.  Callback metrics whose callback
        raises are skipped (a dying gauge must not take monitoring down).
        """
        out: Dict[str, float] = {}
        for metric in self.metrics():
            try:
                if isinstance(metric, Histogram):
                    for key, state in metric.samples():
                        suffix = _labels_text(metric.labelnames, key)
                        labels = dict(zip(metric.labelnames, key))
                        summary = metric.summary(**labels)
                        for stat, value in summary.items():
                            out[f"{metric.name}_{stat}{suffix}"] = value
                else:
                    for key, value in metric.samples():
                        out[f"{metric.name}{_labels_text(metric.labelnames, key)}"] = value
            except Exception:
                continue
        return out


_DEFAULT_REGISTRY = MetricsRegistry()

_PROCESS_STARTED = time.monotonic()


def _register_process_metrics(registry: MetricsRegistry) -> None:
    """Process-level gauges so a ``/metrics`` scrape stands alone.

    Callback-backed: nothing is sampled until collection time.  ``resource``
    is POSIX-only; on platforms without it only the uptime gauge exists.
    """
    registry.gauge(
        "process_uptime_seconds",
        "Seconds since this process imported the metrics module.",
        fn=lambda: time.monotonic() - _PROCESS_STARTED)
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    # ru_maxrss is KiB on Linux, bytes on macOS
    scale = 1 if sys.platform == "darwin" else 1024
    registry.gauge(
        "process_resident_memory_bytes",
        "Peak resident set size of this process (ru_maxrss).",
        fn=lambda: resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale)
    registry.counter(
        "process_cpu_seconds_total",
        "Total user+system CPU time consumed by this process.",
        fn=lambda: (lambda ru: ru.ru_utime + ru.ru_stime)(
            resource.getrusage(resource.RUSAGE_SELF)))


_register_process_metrics(_DEFAULT_REGISTRY)


def default_registry() -> MetricsRegistry:
    """The process-global registry (WAL counters, ownerless components)."""
    return _DEFAULT_REGISTRY


# -- Prometheus text exposition ------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(names: Iterable[str], values: Iterable[str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; keep 0/1
        return "1" if value else "0"
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bucket_bound(bound: float) -> str:
    return _format_value(bound) if bound != math.inf else "+Inf"


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render one or more registries in the Prometheus text format (0.0.4).

    Metric names are prefixed with each registry's namespace.  When several
    registries expose the same full name (they should not), their samples
    are merged under a single ``# TYPE`` header — Prometheus rejects
    duplicate headers but accepts many samples per metric.
    """
    groups: "OrderedDict[str, Tuple[str, str, List[str]]]" = OrderedDict()
    for registry in registries:
        prefix = f"{registry.namespace}_" if registry.namespace else ""
        for metric in registry.metrics():
            full = prefix + metric.name
            try:
                lines = _render_samples(full, metric)
            except Exception:
                continue  # a dying callback must not break the whole page
            if full in groups:
                kind, help_text, existing = groups[full]
                existing.extend(lines)
            else:
                groups[full] = (metric.kind, metric.help, lines)
    out: List[str] = []
    for full, (kind, help_text, lines) in groups.items():
        if help_text:
            out.append(f"# HELP {full} {help_text}")
        out.append(f"# TYPE {full} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def _render_samples(full: str, metric: Metric) -> List[str]:
    lines: List[str] = []
    if isinstance(metric, Histogram):
        for key, state in metric.samples():
            cumulative = 0
            for slot, bound in enumerate(metric.buckets):
                cumulative += state.counts[slot]
                labels = _labels_text(metric.labelnames, key,
                                      extra=("le", _format_bucket_bound(bound)))
                lines.append(f"{full}_bucket{labels} {cumulative}")
            cumulative += state.counts[len(metric.buckets)]
            labels = _labels_text(metric.labelnames, key, extra=("le", "+Inf"))
            lines.append(f"{full}_bucket{labels} {cumulative}")
            plain = _labels_text(metric.labelnames, key)
            lines.append(f"{full}_sum{plain} {_format_value(state.sum)}")
            lines.append(f"{full}_count{plain} {state.count}")
            # non-standard but invaluable: the exact tail, not a bucket
            # interpolation (and the exact mean alongside it)
            lines.append(f"{full}_max{plain} {_format_value(state.max)}")
            mean = state.sum / state.count if state.count else 0.0
            lines.append(f"{full}_mean{plain} {_format_value(mean)}")
    else:
        for key, value in metric.samples():
            labels = _labels_text(metric.labelnames, key)
            lines.append(f"{full}{labels} {_format_value(value)}")
    return lines
