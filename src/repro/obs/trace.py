"""Per-query trace spans over the batched operator protocol.

A :class:`QueryTrace` builds a span tree mirroring the physical plan: the
engine calls :meth:`QueryTrace.enter` / :meth:`QueryTrace.exit` around each
``open()`` / ``next_batch()`` / ``close()`` call, and the trace accumulates
per-operator wall time (cumulative, with *self* time derived by subtracting
child time), batch and row counts.  Spans are keyed by operator identity,
so one span aggregates all calls into the same operator across the whole
drain loop.

The default tracer is :data:`NULL_TRACER`, a singleton whose ``enabled``
flag is ``False`` — hot paths guard on ``if tracer.enabled:`` so a
disabled run costs one attribute check per call, nothing more.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "QueryTrace", "TraceSpan"]


class TraceSpan:
    """Aggregated timings for one physical operator within one execution."""

    __slots__ = ("label", "parent", "children", "seconds", "rows", "batches",
                 "bytes", "calls", "_entered_at")

    def __init__(self, label: str, parent: Optional["TraceSpan"] = None) -> None:
        self.label = label
        self.parent = parent
        self.children: List["TraceSpan"] = []
        self.seconds = 0.0       # cumulative wall time (includes children)
        self.rows = 0
        self.batches = 0
        self.bytes = 0           # payload bytes of emitted batches
        self.calls = 0
        self._entered_at = 0.0
        if parent is not None:
            parent.children.append(self)

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this operator minus time in its children."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "rows": self.rows,
            "batches": self.batches,
            "bytes": self.bytes,
            "calls": self.calls,
            "children": [c.as_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> List[str]:
        line = (f"{'  ' * indent}{self.label} "
                f"time={self.self_seconds * 1000.0:.3f}ms "
                f"total={self.seconds * 1000.0:.3f}ms "
                f"rows={self.rows} batches={self.batches}")
        lines = [line]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class QueryTrace:
    """A span tree for one query execution.

    Not thread-safe by design: one trace belongs to one execution, and a
    plan's drain loop is already serialized by the plan's execution lock.
    """

    enabled = True

    span_class = TraceSpan
    """Span factory — :class:`~repro.obs.profile.QueryProfile` swaps in a
    resource-accounting subclass without touching the protocol."""

    def __init__(self) -> None:
        self.root: Optional[TraceSpan] = None
        self._spans: Dict[int, TraceSpan] = {}
        self._stack: List[TraceSpan] = []
        self.started_at = time.time()
        self.total_seconds = 0.0

    # -- span protocol (called from PhysicalOperator) -------------------------

    def enter(self, op: object, label: str) -> TraceSpan:
        """Start timing a call into ``op``; returns the span to pass to exit."""
        key = id(op)
        span = self._spans.get(key)
        if span is None:
            parent = self._stack[-1] if self._stack else None
            span = self.span_class(label, parent)
            self._spans[key] = span
            if parent is None and self.root is None:
                self.root = span
        self._stack.append(span)
        span._entered_at = time.perf_counter()
        return span

    def exit(self, span: TraceSpan, rows: int = 0, batches: int = 0,
             bytes: int = 0) -> None:
        """Stop timing; only the outermost frame of a span accrues time
        (operators recurse into themselves only via distinct objects, but a
        guard keeps re-entrancy safe)."""
        elapsed = time.perf_counter() - span._entered_at
        self._stack.pop()
        if span not in self._stack:  # guard against pathological re-entry
            span.seconds += elapsed
        span.rows += rows
        span.batches += batches
        span.bytes += bytes
        span.calls += 1

    # -- results ---------------------------------------------------------------

    def span_for(self, op: object) -> Optional[TraceSpan]:
        return self._spans.get(id(op))

    def finish(self, total_seconds: float) -> None:
        self.total_seconds = total_seconds

    def as_dict(self) -> dict:
        return {
            "started_at": self.started_at,
            "total_seconds": self.total_seconds,
            "root": self.root.as_dict() if self.root is not None else None,
        }

    def render(self) -> str:
        """The span tree as indented text, one operator per line."""
        if self.root is None:
            return "(empty trace)"
        return "\n".join(self.root.render())

    def summary(self) -> str:
        """One-line digest for the slow-query log."""
        if self.root is None:
            return ""
        top = sorted(self._spans.values(), key=lambda s: s.self_seconds,
                     reverse=True)[:3]
        parts = [f"{s.label.split('[')[0].strip()}={s.self_seconds * 1000.0:.2f}ms"
                 for s in top]
        return " ".join(parts)


class NullTracer:
    """No-op stand-in: ``enabled`` is False, so instrumented paths skip it."""

    enabled = False
    root = None

    def enter(self, op: object, label: str):  # pragma: no cover - never hot
        return None

    def exit(self, span, rows: int = 0, batches: int = 0,
             bytes: int = 0) -> None:  # pragma: no cover
        pass

    def span_for(self, op: object):
        return None

    def finish(self, total_seconds: float) -> None:
        pass


NULL_TRACER = NullTracer()
"""Shared default tracer; ``context.tracer is NULL_TRACER`` when disabled."""
