"""Per-query resource profiler: the trace span tree with cost attribution.

:class:`QueryProfile` is a :class:`~repro.obs.trace.QueryTrace` whose spans
also account for *resources*, not just wall time.  It rides the exact same
``open()`` / ``next_batch()`` / ``close()`` hooks — operators never learn
whether they are being traced or profiled — and attributes, per operator:

* **buffer-pool activity** — page reads, page hits and lazily materialized
  column values, measured as deltas of the pool's monotonic counters taken
  at span entry/exit (so a parent's numbers include its children, exactly
  like cumulative wall time; ``self_page_reads`` subtracts child activity);
* **batch payload** — bytes of live binding-table data emitted, recorded by
  the operator protocol via the ``bytes=`` argument to :meth:`exit`;
* **peak allocations** (opt-in, ``memory=True``) — sampled with
  :mod:`tracemalloc` by resetting the peak at span entry and reading it at
  exit.  Nested spans reset the shared peak counter, so a parent's number
  reflects its own frames between child calls — an approximation, clearly
  cheaper than snapshotting full allocation traces per batch, and good
  enough to point at the operator that allocates.

Attribution is per-execution and single-threaded by design (one profile
belongs to one run); under concurrent queries the pool counters are shared,
so cross-query attribution is best-effort — the same caveat as ``BUFFERS``
accounting in any multi-user database.

The profile's query-level ``buffers`` dict is a
:meth:`~repro.columnar.BufferPool.snapshot_delta` over the whole run
(planning included), so per-operator totals reconcile against it:
``sum(self_page_reads) == root.page_reads <= buffers["page_reads"]``.
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, List, Optional

from .trace import QueryTrace, TraceSpan

__all__ = ["ProfileSpan", "QueryProfile", "format_bytes"]


def format_bytes(count: float) -> str:
    """``2048 -> '2.0KB'`` — compact byte counts for explain/render lines."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")  # pragma: no cover


class ProfileSpan(TraceSpan):
    """A trace span that also accounts buffer-pool and allocation cost."""

    __slots__ = ("page_reads", "page_hits", "lazy_values", "mem_peak",
                 "_counters_at_enter")

    def __init__(self, label: str, parent: Optional[TraceSpan] = None) -> None:
        super().__init__(label, parent)
        self.page_reads = 0      # cumulative, includes children (like seconds)
        self.page_hits = 0
        self.lazy_values = 0
        self.mem_peak = 0        # peak tracemalloc bytes seen in own frames
        self._counters_at_enter: Optional[tuple] = None

    @property
    def self_page_reads(self) -> int:
        """Page reads charged to this operator minus its children's."""
        return max(0, self.page_reads - sum(c.page_reads for c in self.children))

    @property
    def self_page_hits(self) -> int:
        return max(0, self.page_hits - sum(c.page_hits for c in self.children))

    @property
    def self_lazy_values(self) -> int:
        return max(0, self.lazy_values - sum(c.lazy_values for c in self.children))

    def explain_tokens(self) -> str:
        """Extra ``pages=``/``mem=`` tokens for ``explain(analyze=True)``."""
        tokens = [f"pages={self.self_page_reads}"]
        if self.mem_peak:
            tokens.append(f"mem={format_bytes(self.mem_peak)}")
        return " ".join(tokens)

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update({
            "page_reads": self.page_reads,
            "self_page_reads": self.self_page_reads,
            "page_hits": self.page_hits,
            "lazy_values": self.lazy_values,
            "mem_peak": self.mem_peak,
            "children": [c.as_dict() for c in self.children],
        })
        return out

    def render(self, indent: int = 0) -> List[str]:
        line = (f"{'  ' * indent}{self.label} "
                f"time={self.self_seconds * 1000.0:.3f}ms "
                f"total={self.seconds * 1000.0:.3f}ms "
                f"rows={self.rows} batches={self.batches} "
                f"pages={self.self_page_reads} hits={self.self_page_hits} "
                f"bytes={format_bytes(self.bytes)}")
        if self.lazy_values:
            line += f" lazy={self.self_lazy_values}"
        if self.mem_peak:
            line += f" mem={format_bytes(self.mem_peak)}"
        lines = [line]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class QueryProfile(QueryTrace):
    """A query trace that attributes buffer-pool I/O, payload bytes and
    (optionally) peak allocations to operators.

    Args:
        pool: the store's :class:`~repro.columnar.BufferPool`; ``None``
            profiles time/rows/bytes only (no page attribution).
        memory: sample per-operator allocation peaks with ``tracemalloc``
            (starts tracing if nothing else did, and stops it again at
            :meth:`finish`).  Roughly an order of magnitude of overhead —
            strictly opt-in.
    """

    is_profile = True
    """Duck-typed marker consumed by the query observer and CLI — avoids
    importing this module on hot paths."""

    span_class = ProfileSpan

    def __init__(self, pool=None, memory: bool = False) -> None:
        super().__init__()
        self.pool = pool
        self.memory = bool(memory)
        self._mark = pool.stats() if pool is not None else None
        self.buffers: Dict[str, int] = {}
        """Query-level :meth:`~repro.columnar.BufferPool.snapshot_delta`
        since profile construction; populated by :meth:`finish`."""
        self._owns_tracemalloc = False
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # -- span protocol ---------------------------------------------------------

    def enter(self, op: object, label: str) -> ProfileSpan:
        existing = self._spans.get(id(op))
        reentered = existing is not None and existing in self._stack
        span = super().enter(op, label)
        if not reentered:
            pool = self.pool
            if pool is not None:
                tracker = pool.tracker
                span._counters_at_enter = (tracker.page_reads,
                                           tracker.page_hits,
                                           pool.lazy_values_loaded)
            if self.memory:
                tracemalloc.reset_peak()
        return span

    def exit(self, span: ProfileSpan, rows: int = 0, batches: int = 0,
             bytes: int = 0) -> None:
        super().exit(span, rows=rows, batches=batches, bytes=bytes)
        if span in self._stack:  # re-entered frame: outer frame accounts
            return
        marks = span._counters_at_enter
        if marks is not None:
            tracker = self.pool.tracker
            span.page_reads += tracker.page_reads - marks[0]
            span.page_hits += tracker.page_hits - marks[1]
            span.lazy_values += self.pool.lazy_values_loaded - marks[2]
            span._counters_at_enter = None
        if self.memory:
            peak = tracemalloc.get_traced_memory()[1]
            if peak > span.mem_peak:
                span.mem_peak = peak

    # -- results ---------------------------------------------------------------

    def finish(self, total_seconds: float) -> None:
        super().finish(total_seconds)
        if self.pool is not None and self._mark is not None:
            self.buffers = self.pool.snapshot_delta(self._mark)
        self._stop_tracemalloc()

    def _stop_tracemalloc(self) -> None:
        if self._owns_tracemalloc:
            self._owns_tracemalloc = False
            if tracemalloc.is_tracing():
                tracemalloc.stop()

    def __del__(self) -> None:  # a failed query must not leak tracing
        self._stop_tracemalloc()

    @property
    def page_reads_total(self) -> int:
        """Pages read during execution (the root span's cumulative count)."""
        return self.root.page_reads if self.root is not None else 0

    @property
    def page_hits_total(self) -> int:
        return self.root.page_hits if self.root is not None else 0

    @property
    def payload_bytes_total(self) -> int:
        """Payload bytes summed over every operator's emitted batches."""
        return sum(span.bytes for span in self._spans.values())

    @property
    def mem_peak(self) -> int:
        """Largest per-operator allocation peak seen (0 without ``memory``)."""
        return max((span.mem_peak for span in self._spans.values()), default=0)

    def spans(self) -> List[ProfileSpan]:
        """Every operator span, unordered (use ``root`` for the tree)."""
        return list(self._spans.values())

    def summary(self) -> str:
        """Slow-log digest: top self-time operators plus the I/O totals."""
        base = super().summary()
        if self.root is None:
            return base
        extra = f"pages={self.page_reads_total} hits={self.page_hits_total}"
        if self.mem_peak:
            extra += f" mem={format_bytes(self.mem_peak)}"
        return f"{base} {extra}" if base else extra

    def as_dict(self) -> dict:
        out = super().as_dict()
        out["buffers"] = dict(self.buffers)
        out["payload_bytes"] = self.payload_bytes_total
        return out
