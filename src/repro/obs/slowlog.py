"""Slow-query ring buffer and the per-store query observer.

:class:`SlowQueryLog` keeps the most recent N queries that exceeded a
latency threshold — enough to answer "what was slow in the last hour"
without any external infrastructure.  Entries carry whitespace-normalized
query text (so logs stay single-line and cache-key-comparable), the plan
scheme, latency, row count and a one-line trace digest when tracing was on.

:class:`QueryObserver` is the single funnel the store's query paths call:
it bumps the per-frontend/per-scheme counters, feeds the latency
histogram, and threshold-gates the slow log.  Keeping it in one place
means snapshots, sessions and the server all record identically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from .metrics import MetricsRegistry

__all__ = ["QueryObserver", "SlowQueryEntry", "SlowQueryLog"]


def _normalize(text: str) -> str:
    return " ".join(text.split())


@dataclass
class SlowQueryEntry:
    """One slow query: what ran, how it ran, and how long it took."""

    text: str
    frontend: str
    scheme: str
    seconds: float
    rows: int
    timestamp: float = field(default_factory=time.time)
    trace_summary: str = ""

    def as_dict(self) -> dict:
        return {
            "text": self.text,
            "frontend": self.frontend,
            "scheme": self.scheme,
            "seconds": self.seconds,
            "rows": self.rows,
            "timestamp": self.timestamp,
            "trace_summary": self.trace_summary,
        }


class SlowQueryLog:
    """Threshold-gated ring buffer of recent slow queries (thread-safe)."""

    def __init__(self, threshold_seconds: float = 0.25, capacity: int = 128) -> None:
        if threshold_seconds < 0:
            raise ValueError("threshold must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._dropped = 0

    def record(self, text: str, frontend: str, scheme: str, seconds: float,
               rows: int, trace_summary: str = "") -> bool:
        """Record the query if it crossed the threshold; True if logged."""
        if seconds < self.threshold_seconds:
            return False
        entry = SlowQueryEntry(text=_normalize(text), frontend=frontend,
                               scheme=scheme, seconds=seconds, rows=rows,
                               trace_summary=trace_summary)
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(entry)
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Newest-first list of logged queries."""
        with self._lock:
            return list(reversed(self._entries))

    def dropped(self) -> int:
        """Entries evicted by the ring since creation (or last clear)."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dropped = 0


class QueryObserver:
    """The one place query completions are turned into metrics.

    Pre-creates its metric handles so the per-query cost is a few dict
    lookups and lock-guarded adds — no registry traffic on the hot path.
    """

    def __init__(self, registry: MetricsRegistry,
                 slow_log: Optional[SlowQueryLog] = None) -> None:
        self.registry = registry
        self.slow_log = slow_log
        self._queries = registry.counter(
            "queries_total", "Completed queries by front-end and plan scheme.",
            labelnames=("frontend", "scheme"))
        self._latency = registry.histogram(
            "query_seconds", "Query wall time by front-end and plan scheme.",
            labelnames=("frontend", "scheme"))
        self._rows = registry.counter(
            "query_rows_total", "Result rows returned by front-end.",
            labelnames=("frontend",))
        self._errors = registry.counter(
            "query_errors_total", "Queries that raised, by front-end.",
            labelnames=("frontend",))
        self._profile_seconds = registry.histogram(
            "query_profile_seconds", "Wall time of profiled queries.")
        self._profile_pages = registry.histogram(
            "query_profile_page_reads",
            "Buffer-pool page reads attributed per profiled query.",
            buckets=(1, 10, 100, 1_000, 10_000, 100_000, 1_000_000))
        self._profile_bytes = registry.histogram(
            "query_profile_payload_bytes",
            "Batch payload bytes flowing between operators per profiled query.",
            buckets=(1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30))

    def observe(self, frontend: str, scheme: str, seconds: float, rows: int,
                text: str = "", trace=None) -> None:
        self._queries.inc(frontend=frontend, scheme=scheme)
        self._latency.observe(seconds, frontend=frontend, scheme=scheme)
        self._rows.inc(rows, frontend=frontend)
        if trace is not None and getattr(trace, "is_profile", False):
            # duck-typed so this module never imports the profiler
            self._profile_seconds.observe(seconds)
            self._profile_pages.observe(trace.page_reads_total)
            self._profile_bytes.observe(trace.payload_bytes_total)
        if self.slow_log is not None and text:
            summary = trace.summary() if trace is not None and getattr(
                trace, "root", None) is not None else ""
            self.slow_log.record(text, frontend, scheme, seconds, rows, summary)

    def error(self, frontend: str) -> None:
        self._errors.inc(frontend=frontend)
