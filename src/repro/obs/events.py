"""Structured event log: one JSON record per store lifecycle transition.

The :class:`EventLog` answers the operational question the metrics registry
cannot: not "how many queries ran" but "*which* query started at 12:03:07,
was it cancelled, and did a compaction run in between".  Every record is a
flat dict — ``seq`` (monotonic), ``ts`` (unix time), ``type`` and
type-specific fields — kept in a bounded in-memory ring and, optionally,
appended as one JSON line per event to a file with bounded rotation.

Event types emitted by the store and the query registry:

* ``query_start`` / ``query_finish`` / ``query_cancel`` / ``query_error`` —
  the query lifecycle (``query_finish`` carries ``status`` ``finished`` or
  ``cancelled``; ``query_cancel`` marks the *request*, emitted from the
  cancelling thread);
* ``update`` — a committed SPARQL Update (inserted/deleted counts);
* ``compaction`` / ``checkpoint`` — maintenance operations;
* ``wal_replay`` — records re-applied while opening a database.

File rotation keeps at most two files: when the active file exceeds
``max_bytes`` it is renamed to ``<path>.1`` (replacing any previous
rotation) and a fresh file is started, so disk use is bounded by
``2 * max_bytes`` regardless of uptime.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

__all__ = ["EventLog"]


class EventLog:
    """Thread-safe bounded ring of structured events, optionally file-backed.

    Args:
        capacity: events kept in memory (oldest evicted first).
        path: when given, every event is also appended to this file as one
            JSON line (created on first emit; parent directory must exist).
        max_bytes: rotation threshold for the file sink — crossing it
            renames the file to ``<path>.1`` and starts a fresh one.
    """

    def __init__(self, capacity: int = 1024,
                 path: Optional[Path | str] = None,
                 max_bytes: int = 1 << 20) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        if max_bytes < 1:
            raise ValueError("event log max_bytes must be >= 1")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._rotations = 0
        self._file = None
        self._file_bytes = 0

    # -- emission --------------------------------------------------------------

    def emit(self, type: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the full record (with seq and ts)."""
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {"seq": self._seq, "ts": time.time(),
                                         "type": type}
            record.update(fields)
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(record)
            if self.path is not None:
                self._write_line_locked(record)
            return record

    def _write_line_locked(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        if self._file is None:
            self._file = open(self.path, "ab")
            self._file_bytes = self._file.tell()
        # rotate before the write that would cross the bound; a single event
        # larger than max_bytes still lands (in a file of its own)
        if self._file_bytes and self._file_bytes + len(data) > self.max_bytes:
            self._rotate_locked()
            self._file = open(self.path, "ab")
        self._file.write(data)
        self._file.flush()
        self._file_bytes += len(data)

    def _rotate_locked(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        rotated = self.path.with_name(self.path.name + ".1")
        try:
            self.path.replace(rotated)
        except FileNotFoundError:
            pass
        self._file_bytes = 0
        self._rotations += 1

    # -- inspection ------------------------------------------------------------

    def events(self, type: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Newest-first event records, optionally filtered by ``type``."""
        with self._lock:
            out = [dict(record) for record in reversed(self._ring)
                   if type is None or record["type"] == type]
        return out[:limit] if limit is not None else out

    def stats(self) -> Dict[str, int]:
        """Ring / sink accounting: emitted, buffered, dropped, rotations."""
        with self._lock:
            return {
                "emitted": self._seq,
                "buffered": len(self._ring),
                "dropped": self._dropped,
                "rotations": self._rotations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        """Drop buffered events (the file sink, if any, is left untouched)."""
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def close(self) -> None:
        """Close the file sink (re-opened automatically on the next emit)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
