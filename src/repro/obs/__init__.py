"""Observability: metrics registry, query tracing, slow-query log,
structured event log, and the live active-query registry.

Depends only on the stdlib and :mod:`repro.errors` so every layer —
engine, buffer pool, WAL, locks, server — can record into it without
cycles.  See ``docs/observability.md`` for the metric inventory and usage.
"""

from .events import EventLog
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from .profile import ProfileSpan, QueryProfile, format_bytes
from .queries import (
    NULL_ACTIVE_QUERY,
    ActiveQuery,
    ActiveQueryRegistry,
    NullActiveQuery,
)
from .slowlog import QueryObserver, SlowQueryEntry, SlowQueryLog
from .trace import NULL_TRACER, NullTracer, QueryTrace, TraceSpan

__all__ = [
    "ActiveQuery",
    "ActiveQueryRegistry",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_ACTIVE_QUERY",
    "NULL_TRACER",
    "NullActiveQuery",
    "NullTracer",
    "ProfileSpan",
    "QueryObserver",
    "QueryProfile",
    "QueryTrace",
    "SlowQueryEntry",
    "SlowQueryLog",
    "TraceSpan",
    "default_registry",
    "format_bytes",
    "render_prometheus",
]
