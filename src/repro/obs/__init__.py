"""Observability: metrics registry, query tracing, slow-query log.

Stdlib-only and import-free of the rest of the package so every layer —
engine, buffer pool, WAL, locks, server — can record into it without
cycles.  See ``docs/observability.md`` for the metric inventory and usage.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from .slowlog import QueryObserver, SlowQueryEntry, SlowQueryLog
from .trace import NULL_TRACER, NullTracer, QueryTrace, TraceSpan

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryObserver",
    "QueryTrace",
    "SlowQueryEntry",
    "SlowQueryLog",
    "TraceSpan",
    "default_registry",
    "render_prometheus",
]
