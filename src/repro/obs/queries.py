"""Live query management: the active-query registry and cooperative
cancellation.

Every query a store executes is registered here for its lifetime: the
registry assigns a stable integer id and tracks what an operator of a
multi-tenant server needs to see — who is running what, under which plan
scheme, since when, how far along it is, and whether someone asked it to
stop.  The bookkeeping rides the batched operator protocol: the engine
attaches the :class:`ActiveQuery` handle to the execution context
(``context.active_query``), and ``PhysicalOperator.next_batch`` calls
:meth:`ActiveQuery.on_batch` once per emitted batch — the same seam the
tracer uses, so a disabled run (:data:`NULL_ACTIVE_QUERY`) costs two
attribute checks per operator call.

Cancellation is *cooperative*: :meth:`ActiveQueryRegistry.cancel` merely
sets a flag; the executing thread observes it at its next ``next_batch``
boundary and raises :class:`~repro.errors.QueryCancelledError`, which
unwinds through the operator tree's ``close()`` cascade (releasing per-plan
state), through the engine, and out of the store's query funnel — MVCC
snapshot pins are released by the same context managers that would release
them on success.  A query between batch boundaries (inside a numpy kernel)
finishes that batch first; cancellation latency is therefore bounded by one
batch, never by the whole query.

Progress is estimated from the optimizer's own cardinality annotations:
each operator's live row count is compared against its ``estimated_rows``,
and the completion fraction is the estimate-weighted sum, clamped per
operator and kept monotonically non-decreasing (an estimate may be wrong;
the bar must still only move forward).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..errors import QueryCancelledError

__all__ = ["ActiveQuery", "ActiveQueryRegistry", "NULL_ACTIVE_QUERY",
           "NullActiveQuery"]


def _normalize(text: str) -> str:
    return " ".join(text.split())


class ActiveQuery:
    """One registered, currently-executing query.

    The executing thread is the only mutator of the per-batch fields;
    listing threads read them racily (a snapshot may be one batch stale),
    which is exactly the consistency a ``top`` view needs.  The
    ``cancel_requested`` flag is written by the cancelling thread and read
    by the executing thread — a plain attribute store/load, safe under the
    GIL and checked once per ``next_batch``.
    """

    enabled = True

    __slots__ = ("query_id", "text", "frontend", "scheme", "source",
                 "started_at", "cancel_requested", "cancel_reason",
                 "rows", "batches", "_started_perf", "_pool", "_buffers_mark",
                 "_rows_by_op", "_est_by_op", "_est_total", "_root_key",
                 "_current_op", "_progress_peak")

    def __init__(self, query_id: int, text: str, frontend: str, scheme: str,
                 source: str = "store", pool=None) -> None:
        self.query_id = query_id
        self.text = _normalize(text)
        self.frontend = frontend
        self.scheme = scheme
        self.source = source
        self.started_at = time.time()
        self._started_perf = time.perf_counter()
        self.cancel_requested = False
        self.cancel_reason = ""
        self.rows = 0
        self.batches = 0
        self._pool = pool
        self._buffers_mark = pool.stats() if pool is not None else None
        self._rows_by_op: Dict[int, int] = {}
        self._est_by_op: Dict[int, float] = {}
        self._est_total = 0.0
        self._root_key: Optional[int] = None
        self._current_op = None
        self._progress_peak = 0.0

    # -- engine-side hooks (hot path) ------------------------------------------

    def attach_plan(self, plan) -> None:
        """Capture the plan's per-operator cardinality estimates.

        Called once after planning (cached plans carry their annotations),
        before execution starts; the estimate map is immutable afterwards,
        so listing threads can iterate it without locking.
        """
        estimates: Dict[int, float] = {}
        stack = [plan]
        while stack:
            op = stack.pop()
            estimated = op.estimated_rows
            if estimated is not None and estimated > 0:
                estimates[id(op)] = float(estimated)
            stack.extend(op.children())
        self._est_by_op = estimates
        self._est_total = sum(estimates.values())
        self._root_key = id(plan)

    def on_batch(self, op, rows: int) -> None:
        """Account one emitted batch to ``op`` (executing thread only)."""
        key = id(op)
        counts = self._rows_by_op
        counts[key] = counts.get(key, 0) + rows
        self._current_op = op
        if key == self._root_key:
            self.rows += rows
            self.batches += 1

    def raise_cancelled(self) -> None:
        """Raise the typed cancellation error (executing thread only)."""
        raise QueryCancelledError(
            f"query {self.query_id} cancelled"
            + (f": {self.cancel_reason}" if self.cancel_reason else ""),
            query_id=self.query_id)

    # -- introspection ---------------------------------------------------------

    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._started_perf

    def progress(self) -> Optional[float]:
        """Estimated completion fraction in ``[0, 1]``, or ``None``.

        ``None`` when the plan carried no cardinality estimates (e.g. an
        un-annotated scheme before the optimizer ran).  Monotonically
        non-decreasing across calls, clamped per operator so one
        underestimated scan cannot report 300%.
        """
        total = self._est_total
        if not total:
            return None
        counts = self._rows_by_op
        done = 0.0
        for key, estimate in self._est_by_op.items():
            emitted = counts.get(key, 0)
            done += emitted if emitted < estimate else estimate
        fraction = done / total
        if fraction > 1.0:
            fraction = 1.0
        if fraction > self._progress_peak:
            self._progress_peak = fraction
        return self._progress_peak

    def current_operator(self) -> str:
        """Describe-string of the operator that most recently emitted."""
        op = self._current_op
        return op.describe() if op is not None else ""

    def describe(self) -> Dict[str, object]:
        """One listing row: everything ``/queries`` and ``top`` render."""
        entry: Dict[str, object] = {
            "id": self.query_id,
            "frontend": self.frontend,
            "scheme": self.scheme,
            "source": self.source,
            "text": self.text[:500],
            "started_at": self.started_at,
            "elapsed_seconds": self.elapsed_seconds(),
            "rows": self.rows,
            "batches": self.batches,
            "progress": self.progress(),
            "operator": self.current_operator(),
            "cancel_requested": self.cancel_requested,
        }
        if self._pool is not None and self._buffers_mark is not None:
            delta = self._pool.snapshot_delta(self._buffers_mark)
            entry["buffers"] = {key: delta[key] for key in
                                ("page_reads", "page_hits", "evictions",
                                 "lazy_values_loaded")}
        return entry


class NullActiveQuery:
    """Disabled stand-in: hot paths skip all bookkeeping.

    ``enabled`` is False and ``cancel_requested`` never becomes True, so an
    execution without a registered query pays two attribute checks per
    operator call and nothing more.
    """

    enabled = False
    cancel_requested = False

    def attach_plan(self, plan) -> None:  # pragma: no cover - never hot
        pass

    def on_batch(self, op, rows: int) -> None:  # pragma: no cover - never hot
        pass

    def raise_cancelled(self) -> None:  # pragma: no cover - flag never set
        pass


NULL_ACTIVE_QUERY = NullActiveQuery()
"""Shared default; ``context.active_query is NULL_ACTIVE_QUERY`` when the
execution is not registered (bare-engine runs, internal DELETE WHERE)."""


class ActiveQueryRegistry:
    """Tracks every in-flight query of one store; store-lifetime.

    Like the metrics registry, it survives rebuilds, compactions and
    ``RDFStore.open(into=)`` swaps, so query ids stay unique for the life
    of the serving process and a ``top`` view never observes an id reset.
    """

    def __init__(self, events=None, metrics=None) -> None:
        self._lock = threading.Lock()
        self._next_id = 0
        self._active: Dict[int, ActiveQuery] = {}
        self._events = events
        self._cancelled_total = None
        if metrics is not None:
            self._cancelled_total = metrics.counter(
                "queries_cancelled_total",
                "Cancellation requests that reached a running query.")
            metrics.gauge("active_queries",
                          "Queries currently executing on this store.",
                          fn=self.active_count)

    # -- lifecycle (called from the store's query funnels) ---------------------

    def begin(self, text: str, frontend: str, scheme: str,
              source: str = "store", pool=None) -> ActiveQuery:
        """Register a query that is about to execute; returns its handle."""
        with self._lock:
            self._next_id += 1
            query = ActiveQuery(self._next_id, text, frontend, scheme,
                                source=source, pool=pool)
            self._active[query.query_id] = query
        if self._events is not None:
            self._events.emit("query_start", id=query.query_id,
                              frontend=frontend, scheme=scheme, source=source,
                              text=query.text[:200])
        return query

    def finish(self, query: ActiveQuery, status: str = "finished",
               rows: int = 0, seconds: float = 0.0,
               error: Optional[BaseException] = None) -> None:
        """Deregister a query (idempotent); emits the lifecycle event.

        ``status`` is ``finished`` or ``cancelled``; pass ``error`` for
        failed runs (emits ``query_error`` instead of ``query_finish``).
        """
        with self._lock:
            if self._active.pop(query.query_id, None) is None:
                return
        if self._events is None:
            return
        if error is not None:
            self._events.emit("query_error", id=query.query_id,
                              frontend=query.frontend,
                              error=f"{type(error).__name__}: {error}",
                              seconds=seconds)
        else:
            self._events.emit("query_finish", id=query.query_id,
                              frontend=query.frontend, status=status,
                              rows=rows, seconds=seconds)

    # -- control & introspection (any thread) ----------------------------------

    def cancel(self, query_id: int, reason: str = "") -> bool:
        """Request cooperative cancellation of a running query.

        Returns True when the id was active (the flag is now set and the
        executing thread will unwind at its next batch boundary); False for
        unknown or already-finished ids — cancelling those is a no-op.
        """
        with self._lock:
            query = self._active.get(query_id)
            if query is None:
                return False
            query.cancel_reason = reason
            query.cancel_requested = True
        if self._cancelled_total is not None:
            self._cancelled_total.inc()
        if self._events is not None:
            self._events.emit("query_cancel", id=query_id, reason=reason)
        return True

    def get(self, query_id: int) -> Optional[ActiveQuery]:
        with self._lock:
            return self._active.get(query_id)

    def active(self) -> List[Dict[str, object]]:
        """Listing rows for every in-flight query, oldest first."""
        with self._lock:
            queries = sorted(self._active.values(),
                             key=lambda q: q.query_id)
        return [query.describe() for query in queries]

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)
