"""Data model of the emergent schema: characteristic sets, properties,
foreign keys and the schema that groups them.

A *characteristic set* (CS) is the set of properties that co-occur on a
subject.  After detection and refinement, each surviving CS becomes a
relational-style table: a list of member subjects plus, for each property, a
column specification (multiplicity, inferred type, optional foreign key
target).  The :class:`EmergentSchema` bundles the tables, the foreign-key
graph and coverage accounting, and is what the storage layer, the SQL view
and the optimizer all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence


class Multiplicity(Enum):
    """How many objects a property has per subject within a CS."""

    EXACTLY_ONE = "1..1"
    ZERO_OR_ONE = "0..1"
    MANY = "0..n"


class PropertyKind(Enum):
    """The inferred value class of a property's objects."""

    IRI = "iri"
    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    BOOLEAN = "boolean"
    DATE = "date"
    DATETIME = "datetime"
    MIXED = "mixed"


@dataclass
class PropertySpec:
    """Schema information for one property (column) of a characteristic set."""

    predicate_oid: int
    multiplicity: Multiplicity = Multiplicity.EXACTLY_ONE
    kind: PropertyKind = PropertyKind.MIXED
    presence: float = 1.0
    """Fraction of the CS's subjects that have at least one value."""
    mean_multiplicity: float = 1.0
    """Average number of objects per subject that has the property."""
    fk_target_cs: Optional[int] = None
    """CS id this property references, when it is a discovered foreign key."""
    fk_confidence: float = 0.0
    label: str = ""

    def is_foreign_key(self) -> bool:
        return self.fk_target_cs is not None

    def is_nullable(self) -> bool:
        return self.multiplicity is not Multiplicity.EXACTLY_ONE


@dataclass
class CharacteristicSet:
    """A detected (and possibly refined) characteristic set."""

    cs_id: int
    properties: Dict[int, PropertySpec]
    subjects: List[int] = field(default_factory=list)
    support: int = 0
    """Number of member subjects (direct support)."""
    indirect_support: int = 0
    """Incoming foreign-key references, used when ranking small CSs."""
    label: str = ""
    merged_from: List[int] = field(default_factory=list)
    """Ids of exact CSs that were folded into this one by generalization."""
    type_signature: tuple = ()
    """Distinguishes typed variants split from the same property set."""

    def property_oids(self) -> frozenset[int]:
        """The property set as a frozen set of predicate OIDs."""
        return frozenset(self.properties)

    def total_support(self) -> int:
        """Direct plus indirect support (the paper's adjusted tally)."""
        return self.support + self.indirect_support

    def spec(self, predicate_oid: int) -> PropertySpec:
        return self.properties[predicate_oid]

    def has_property(self, predicate_oid: int) -> bool:
        return predicate_oid in self.properties

    def foreign_keys(self) -> List[PropertySpec]:
        """Property specs that reference another CS."""
        return [spec for spec in self.properties.values() if spec.is_foreign_key()]


@dataclass(frozen=True)
class ForeignKey:
    """A discovered relationship: ``source_cs.property -> target_cs``."""

    source_cs: int
    predicate_oid: int
    target_cs: int
    confidence: float

    def describe(self) -> str:
        return (f"CS{self.source_cs}.p{self.predicate_oid} -> CS{self.target_cs} "
                f"(confidence {self.confidence:.2f})")


@dataclass
class SchemaCoverage:
    """How much of the input the regular schema captures."""

    total_triples: int = 0
    covered_triples: int = 0
    total_subjects: int = 0
    covered_subjects: int = 0

    def triple_coverage(self) -> float:
        if self.total_triples == 0:
            return 0.0
        return self.covered_triples / self.total_triples

    def subject_coverage(self) -> float:
        if self.total_subjects == 0:
            return 0.0
        return self.covered_subjects / self.total_subjects


@dataclass
class EmergentSchema:
    """The full discovered schema: tables, relationships and coverage."""

    tables: Dict[int, CharacteristicSet] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    subject_to_cs: Dict[int, int] = field(default_factory=dict)
    coverage: SchemaCoverage = field(default_factory=SchemaCoverage)
    irregular_subjects: List[int] = field(default_factory=list)

    # -- lookups ---------------------------------------------------------------

    def cs_of_subject(self, subject_oid: int) -> Optional[int]:
        """CS id a subject belongs to, or ``None`` if irregular."""
        return self.subject_to_cs.get(subject_oid)

    def table(self, cs_id: int) -> CharacteristicSet:
        return self.tables[cs_id]

    def tables_by_support(self) -> List[CharacteristicSet]:
        """Tables ordered by total support, largest first."""
        return sorted(self.tables.values(), key=lambda cs: (-cs.total_support(), cs.cs_id))

    def tables_with_property(self, predicate_oid: int) -> List[CharacteristicSet]:
        """All tables that contain a given property."""
        return [cs for cs in self.tables.values() if cs.has_property(predicate_oid)]

    def tables_with_properties(self, predicate_oids: Iterable[int]) -> List[CharacteristicSet]:
        """All tables containing *every* one of the given properties.

        This is the lookup the SPARQL optimizer performs to decide whether a
        star pattern can be answered by RDFscan over one or more CSs.
        """
        wanted = frozenset(predicate_oids)
        return [cs for cs in self.tables.values() if wanted <= cs.property_oids()]

    def foreign_keys_from(self, cs_id: int) -> List[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.source_cs == cs_id]

    def foreign_keys_to(self, cs_id: int) -> List[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.target_cs == cs_id]

    def find_foreign_key(self, source_cs: int, predicate_oid: int) -> Optional[ForeignKey]:
        for fk in self.foreign_keys:
            if fk.source_cs == source_cs and fk.predicate_oid == predicate_oid:
                return fk
        return None

    # -- mutation helpers used by the discovery pipeline -----------------------

    def add_table(self, table: CharacteristicSet) -> None:
        self.tables[table.cs_id] = table
        for subject in table.subjects:
            self.subject_to_cs[subject] = table.cs_id

    def remove_table(self, cs_id: int) -> CharacteristicSet:
        table = self.tables.pop(cs_id)
        for subject in table.subjects:
            if self.subject_to_cs.get(subject) == cs_id:
                del self.subject_to_cs[subject]
        self.foreign_keys = [fk for fk in self.foreign_keys
                             if fk.source_cs != cs_id and fk.target_cs != cs_id]
        return table

    def next_cs_id(self) -> int:
        if not self.tables:
            return 0
        return max(self.tables) + 1

    # -- reporting --------------------------------------------------------------

    def summary_lines(self, dictionary=None) -> List[str]:
        """Human-readable schema listing (used by examples and benches)."""
        lines: List[str] = []
        for cs in self.tables_by_support():
            name = cs.label or f"CS{cs.cs_id}"
            lines.append(f"table {name} (cs_id={cs.cs_id}, subjects={cs.support}, "
                         f"indirect={cs.indirect_support})")
            for spec in sorted(cs.properties.values(), key=lambda s: s.predicate_oid):
                pname = spec.label or f"p{spec.predicate_oid}"
                if dictionary is not None and not spec.label:
                    try:
                        pname = dictionary.decode(spec.predicate_oid).local_name()
                    except Exception:  # noqa: BLE001 - labels are best-effort
                        pname = f"p{spec.predicate_oid}"
                fk = f" -> CS{spec.fk_target_cs}" if spec.is_foreign_key() else ""
                lines.append(f"    {pname}: {spec.kind.value} [{spec.multiplicity.value}]"
                             f" presence={spec.presence:.2f}{fk}")
        lines.append(f"foreign keys: {len(self.foreign_keys)}")
        lines.append(f"triple coverage: {self.coverage.triple_coverage():.1%}")
        lines.append(f"subject coverage: {self.coverage.subject_coverage():.1%}")
        return lines


def property_presence(subjects_with_property: int, total_subjects: int) -> float:
    """Presence ratio guarded against empty tables."""
    if total_subjects == 0:
        return 0.0
    return subjects_with_property / total_subjects


def classify_multiplicity(presence: float, mean_multiplicity: float,
                          many_threshold: float = 1.05) -> Multiplicity:
    """Derive a property's multiplicity class from its statistics."""
    if mean_multiplicity > many_threshold:
        return Multiplicity.MANY
    if presence >= 0.999:
        return Multiplicity.EXACTLY_ONE
    return Multiplicity.ZERO_OR_ONE


def merge_subject_lists(lists: Sequence[List[int]]) -> List[int]:
    """Concatenate subject lists preserving order and removing duplicates."""
    seen: set[int] = set()
    merged: List[int] = []
    for lst in lists:
        for subject in lst:
            if subject not in seen:
                seen.add(subject)
                merged.append(subject)
    return merged
