"""Generalization of exact characteristic sets.

The original CS algorithm creates a distinct CS for every unique property
combination, which on real data yields thousands of near-duplicate sets
("the same class, but one subject is missing a phone number").  The paper's
extension: *allow attributes of kind 0..n (NULLABLE) if a significant
minority fraction of the subjects has at least one occurrence* — i.e. merge
similar property combinations into one generalized CS whose rarely-missing
properties become nullable columns.

The algorithm here:

1. rank exact CSs by support; those above ``min_support`` seed *cores*;
2. greedily fold later cores into earlier ones when their property sets are
   similar enough (Jaccard >= ``core_merge_similarity``);
3. attach every remaining small CS to the most similar core (Jaccard >=
   ``attach_similarity``); subjects of sets that match no core stay
   *irregular*;
4. for each generalized CS keep the properties present in at least a
   ``minority_presence`` fraction of its members — the rest of the members'
   triples fall back to the irregular triple store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .detect import DetectionResult, ExactCS


@dataclass(frozen=True)
class GeneralizationConfig:
    """Tuning knobs for the generalization pass."""

    min_support: int = 3
    """An exact CS needs at least this many subjects to seed a core."""
    min_support_fraction: float = 0.0
    """Alternative relative threshold (fraction of all subjects); the larger
    of the absolute and relative thresholds applies."""
    core_merge_similarity: float = 0.65
    """Jaccard similarity above which two cores are merged into one."""
    attach_similarity: float = 0.5
    """Jaccard similarity above which a small CS joins an existing core."""
    minority_presence: float = 0.1
    """A property is kept (as nullable) if at least this fraction of the
    generalized CS's subjects carries it."""
    max_tables: Optional[int] = None
    """Optional cap on the number of generalized CSs (keep the largest)."""


@dataclass
class GeneralizedCS:
    """A merged characteristic set prior to typing and fine-tuning."""

    gcs_id: int
    properties: frozenset[int]
    subjects: List[int] = field(default_factory=list)
    merged_exact: List[frozenset[int]] = field(default_factory=list)
    property_presence: Dict[int, float] = field(default_factory=dict)
    property_mean_multiplicity: Dict[int, float] = field(default_factory=dict)

    @property
    def support(self) -> int:
        return len(self.subjects)


@dataclass
class GeneralizationResult:
    """Output of the generalization pass."""

    generalized: List[GeneralizedCS]
    subject_to_gcs: Dict[int, int]
    irregular_subjects: List[int]

    def coverage(self, total_subjects: int) -> float:
        if total_subjects == 0:
            return 0.0
        covered = sum(g.support for g in self.generalized)
        return covered / total_subjects


def jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    """Jaccard similarity of two property sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def generalize(detection: DetectionResult,
               config: GeneralizationConfig | None = None) -> GeneralizationResult:
    """Merge exact CSs into generalized CSs according to ``config``."""
    config = config or GeneralizationConfig()
    total_subjects = detection.total_subjects()
    threshold = max(config.min_support,
                    int(config.min_support_fraction * total_subjects))
    threshold = max(threshold, 1)

    ranked = detection.sets_by_support()
    cores: List[_Core] = []
    small: List[ExactCS] = []
    for exact in ranked:
        if exact.support >= threshold:
            _merge_or_add_core(cores, exact, config.core_merge_similarity)
        else:
            small.append(exact)

    if not cores and ranked:
        # degenerate input: nothing reaches the threshold; promote the largest
        _merge_or_add_core(cores, ranked[0], config.core_merge_similarity)
        small = ranked[1:]

    irregular: List[int] = []
    for exact in small:
        best = _best_core(cores, exact.properties)
        if best is not None and jaccard(best.properties, exact.properties) >= config.attach_similarity:
            best.absorb(exact)
        else:
            irregular.extend(exact.subjects)

    if config.max_tables is not None and len(cores) > config.max_tables:
        cores.sort(key=lambda c: -len(c.subjects))
        kept, dropped = cores[:config.max_tables], cores[config.max_tables:]
        for core in dropped:
            irregular.extend(core.subjects)
        cores = kept

    generalized: List[GeneralizedCS] = []
    subject_to_gcs: Dict[int, int] = {}
    for gcs_id, core in enumerate(cores):
        gcs = _finalize_core(gcs_id, core, detection, config)
        if not gcs.properties:
            irregular.extend(core.subjects)
            continue
        generalized.append(gcs)
        for subject in gcs.subjects:
            subject_to_gcs[subject] = gcs.gcs_id

    # re-number consecutively in case empty cores were dropped
    for new_id, gcs in enumerate(generalized):
        if gcs.gcs_id != new_id:
            for subject in gcs.subjects:
                subject_to_gcs[subject] = new_id
            gcs.gcs_id = new_id

    return GeneralizationResult(
        generalized=generalized,
        subject_to_gcs=subject_to_gcs,
        irregular_subjects=sorted(set(irregular)),
    )


# -- internals -----------------------------------------------------------------


class _Core:
    """Mutable accumulator for one generalized CS under construction."""

    def __init__(self, exact: ExactCS) -> None:
        self.properties: frozenset[int] = exact.properties
        self.subjects: List[int] = list(exact.subjects)
        self.merged_exact: List[frozenset[int]] = [exact.properties]

    def absorb(self, exact: ExactCS) -> None:
        self.properties = self.properties | exact.properties
        self.subjects.extend(exact.subjects)
        self.merged_exact.append(exact.properties)


def _merge_or_add_core(cores: List[_Core], exact: ExactCS, similarity: float) -> None:
    best = _best_core(cores, exact.properties)
    if best is not None and jaccard(best.properties, exact.properties) >= similarity:
        best.absorb(exact)
    else:
        cores.append(_Core(exact))


def _best_core(cores: List[_Core], properties: frozenset[int]) -> Optional[_Core]:
    best: Optional[_Core] = None
    best_score = -1.0
    for core in cores:
        score = jaccard(core.properties, properties)
        if score > best_score:
            best_score = score
            best = core
    return best


def _finalize_core(gcs_id: int, core: _Core, detection: DetectionResult,
                   config: GeneralizationConfig) -> GeneralizedCS:
    """Compute presence/multiplicity statistics and drop rare properties."""
    subject_count = len(core.subjects)
    presence_counts: Dict[int, int] = {}
    value_counts: Dict[int, int] = {}
    for subject in core.subjects:
        props = detection.subject_properties.get(subject, frozenset())
        mults = detection.property_multiplicities.get(subject, {})
        for prop in props:
            if prop not in core.properties:
                continue
            presence_counts[prop] = presence_counts.get(prop, 0) + 1
            value_counts[prop] = value_counts.get(prop, 0) + mults.get(prop, 1)

    kept: Dict[int, float] = {}
    mean_multiplicity: Dict[int, float] = {}
    for prop in core.properties:
        count = presence_counts.get(prop, 0)
        presence = count / subject_count if subject_count else 0.0
        if presence >= config.minority_presence or presence >= 0.999:
            kept[prop] = presence
            mean_multiplicity[prop] = (value_counts.get(prop, 0) / count) if count else 0.0

    return GeneralizedCS(
        gcs_id=gcs_id,
        properties=frozenset(kept),
        subjects=sorted(core.subjects),
        merged_exact=core.merged_exact,
        property_presence=kept,
        property_mean_multiplicity=mean_multiplicity,
    )
