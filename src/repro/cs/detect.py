"""Basic characteristic-set detection.

The starting point is Neumann & Moerkotte's observation (cited as [1] in the
paper): group subjects by the exact set of properties they carry.  Each
distinct property combination is one *exact characteristic set*.  Later
passes (generalization, typing, fine-tuning) reshape these exact CSs into a
usable schema; this module only performs the initial grouping and the
support accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple


@dataclass
class ExactCS:
    """One exact characteristic set: a property combination and its members."""

    properties: frozenset[int]
    subjects: List[int] = field(default_factory=list)

    @property
    def support(self) -> int:
        return len(self.subjects)


@dataclass
class DetectionResult:
    """Output of the basic detection pass."""

    exact_sets: List[ExactCS]
    subject_properties: Dict[int, frozenset[int]]
    property_multiplicities: Dict[int, Dict[int, int]]
    total_triples: int

    def sets_by_support(self) -> List[ExactCS]:
        return sorted(self.exact_sets, key=lambda cs: (-cs.support, sorted(cs.properties)))

    def total_subjects(self) -> int:
        return len(self.subject_properties)


def detect_characteristic_sets(
    subject_properties: Mapping[int, frozenset[int]],
    property_multiplicities: Mapping[int, Mapping[int, int]] | None = None,
    total_triples: int | None = None,
) -> DetectionResult:
    """Group subjects by their exact property set.

    Parameters
    ----------
    subject_properties:
        Mapping subject OID -> frozenset of predicate OIDs (one entry per
        distinct subject; see ``TripleTable.subject_property_sets``).
    property_multiplicities:
        Optional mapping subject OID -> {predicate OID -> object count},
        used later for multiplicity classification.  When omitted, every
        property is assumed single-valued.
    total_triples:
        Total number of triples in the input, used for coverage accounting.
        When omitted it is reconstructed from the multiplicities (or from
        property-set sizes if those are missing too).
    """
    groups: Dict[frozenset[int], List[int]] = defaultdict(list)
    for subject, properties in subject_properties.items():
        groups[properties].append(subject)

    exact_sets = [ExactCS(properties=props, subjects=sorted(members))
                  for props, members in groups.items()]
    exact_sets.sort(key=lambda cs: (-cs.support, sorted(cs.properties)))

    multiplicities: Dict[int, Dict[int, int]] = {}
    if property_multiplicities is not None:
        multiplicities = {int(s): dict(props) for s, props in property_multiplicities.items()}
    else:
        multiplicities = {int(s): {p: 1 for p in props} for s, props in subject_properties.items()}

    if total_triples is None:
        total_triples = sum(sum(props.values()) for props in multiplicities.values())

    return DetectionResult(
        exact_sets=exact_sets,
        subject_properties=dict(subject_properties),
        property_multiplicities=multiplicities,
        total_triples=int(total_triples),
    )


def detection_from_triples(triples: Iterable[Tuple[int, int, int]]) -> DetectionResult:
    """Convenience: run detection directly over encoded ``(s, p, o)`` triples."""
    subject_properties: Dict[int, set[int]] = defaultdict(set)
    multiplicities: Dict[int, Dict[int, int]] = defaultdict(dict)
    total = 0
    for s, p, _o in triples:
        total += 1
        subject_properties[int(s)].add(int(p))
        props = multiplicities[int(s)]
        props[int(p)] = props.get(int(p), 0) + 1
    frozen = {s: frozenset(props) for s, props in subject_properties.items()}
    return detect_characteristic_sets(frozen, multiplicities, total_triples=total)


def support_histogram(result: DetectionResult) -> Dict[int, int]:
    """Histogram: CS support value -> number of exact CSs with that support.

    Useful for choosing a support threshold: real data sets typically show a
    few very large CSs and a long tail of singletons.
    """
    histogram: Dict[int, int] = defaultdict(int)
    for cs in result.exact_sets:
        histogram[cs.support] += 1
    return dict(histogram)


def coverage_at_threshold(result: DetectionResult, min_support: int) -> float:
    """Fraction of subjects covered by exact CSs with support >= threshold."""
    total = result.total_subjects()
    if total == 0:
        return 0.0
    covered = sum(cs.support for cs in result.exact_sets if cs.support >= min_support)
    return covered / total
