"""Schema fine-tuning.

The paper lists several clean-ups applied after the initial CS, typing and
relationship passes:

* classify property multiplicities — reduce ``0..n`` attributes to ``0..1``
  where the data allows it, and mark genuinely multi-valued properties
  (mean multiplicity above a threshold) as ``MANY`` so they are *not*
  materialized as aligned columns (their triples stay in the irregular
  triple store / a separate table);
* unify CSs that are 1-1 linked (the blank-node satellite pattern);
* use *indirect support* (incoming foreign-key references) in addition to
  direct support when deciding which small CSs to keep, so that a small
  dimension table referenced by a large fact table survives pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from .relationships import RelationshipResult, one_to_one_links
from .schema_model import (
    CharacteristicSet,
    EmergentSchema,
    ForeignKey,
    Multiplicity,
    classify_multiplicity,
)
from .typing import PropertyObservation


@dataclass(frozen=True)
class FinetuneConfig:
    """Tuning knobs for the fine-tuning pass."""

    many_multiplicity_threshold: float = 1.5
    """Mean objects-per-subject above which a property is classed ``MANY``."""
    merge_one_to_one: bool = True
    """Merge CS pairs connected by a 1-1 foreign key into a single table."""
    one_to_one_tolerance: float = 0.1
    min_total_support: int = 1
    """Tables whose direct + indirect support is below this are dropped
    (their subjects become irregular)."""


def classify_multiplicities(schema: EmergentSchema, config: FinetuneConfig | None = None) -> None:
    """Set each property's multiplicity class from presence / mean counts."""
    config = config or FinetuneConfig()
    for table in schema.tables.values():
        for spec in table.properties.values():
            spec.multiplicity = classify_multiplicity(
                spec.presence, spec.mean_multiplicity,
                many_threshold=config.many_multiplicity_threshold,
            )


def apply_indirect_support(schema: EmergentSchema, relationships: RelationshipResult) -> None:
    """Add incoming-reference counts to each table's indirect support."""
    for cs_id, count in relationships.incoming_references.items():
        if cs_id in schema.tables:
            schema.tables[cs_id].indirect_support = count


def prune_low_support_tables(schema: EmergentSchema, config: FinetuneConfig | None = None) -> List[int]:
    """Drop tables whose *total* support is below the configured minimum.

    Returns the ids of the dropped tables; their subjects are appended to the
    schema's irregular subject list.
    """
    config = config or FinetuneConfig()
    dropped: List[int] = []
    for cs_id in list(schema.tables):
        table = schema.tables[cs_id]
        if table.total_support() < config.min_total_support:
            schema.remove_table(cs_id)
            schema.irregular_subjects.extend(table.subjects)
            dropped.append(cs_id)
    if dropped:
        schema.irregular_subjects = sorted(set(schema.irregular_subjects))
    return dropped


def merge_one_to_one_tables(
    schema: EmergentSchema,
    relationships: RelationshipResult,
    observations: Mapping[Tuple[int, int], PropertyObservation],
    config: FinetuneConfig | None = None,
) -> List[Tuple[int, int]]:
    """Merge CS pairs linked 1-1 into a single wider table.

    The target table's properties are folded into the source table (the one
    holding the linking property); the linking property itself is dropped.
    Returns the list of ``(kept_cs, absorbed_cs)`` pairs.

    Merged member subjects keep their own CS membership for the *target*
    subjects — they are no longer listed as table members (their data is now
    reachable via the source row), which mirrors how a blank-node satellite
    disappears as a standalone table.
    """
    config = config or FinetuneConfig()
    if not config.merge_one_to_one:
        return []
    supports = {cs_id: table.support for cs_id, table in schema.tables.items()}
    links = one_to_one_links(relationships.foreign_keys, supports, observations,
                             tolerance=config.one_to_one_tolerance)
    merged_pairs: List[Tuple[int, int]] = []
    absorbed: set[int] = set()
    for source_cs, predicate, target_cs in links:
        if source_cs in absorbed or target_cs in absorbed:
            continue
        if source_cs not in schema.tables or target_cs not in schema.tables:
            continue
        if source_cs == target_cs:
            continue
        source = schema.tables[source_cs]
        target = schema.tables[target_cs]
        # never absorb a table that other tables also reference
        other_referrers = [fk for fk in schema.foreign_keys
                           if fk.target_cs == target_cs and fk.source_cs != source_cs]
        if other_referrers:
            continue
        _absorb_table(schema, source, target, predicate)
        merged_pairs.append((source_cs, target_cs))
        absorbed.add(target_cs)
    return merged_pairs


def _absorb_table(schema: EmergentSchema, source: CharacteristicSet,
                  target: CharacteristicSet, linking_predicate: int) -> None:
    """Fold ``target``'s columns into ``source`` and drop ``target``."""
    for prop, spec in target.properties.items():
        if prop not in source.properties:
            source.properties[prop] = spec
    if linking_predicate in source.properties:
        del source.properties[linking_predicate]
    source.merged_from.append(target.cs_id)
    schema.remove_table(target.cs_id)
    # redirect foreign keys that pointed *from* the absorbed table
    redirected: List[ForeignKey] = []
    for fk in schema.foreign_keys:
        if fk.source_cs == target.cs_id:
            redirected.append(ForeignKey(source.cs_id, fk.predicate_oid, fk.target_cs, fk.confidence))
        else:
            redirected.append(fk)
    schema.foreign_keys = [fk for fk in redirected
                           if fk.source_cs in schema.tables and fk.target_cs in schema.tables]
    for prop, spec in source.properties.items():
        if spec.fk_target_cs == target.cs_id:
            spec.fk_target_cs = None
            spec.fk_confidence = 0.0


def finetune_schema(
    schema: EmergentSchema,
    relationships: RelationshipResult,
    observations: Mapping[Tuple[int, int], PropertyObservation],
    config: FinetuneConfig | None = None,
) -> Dict[str, object]:
    """Run the full fine-tuning sequence; returns a small report dict."""
    config = config or FinetuneConfig()
    classify_multiplicities(schema, config)
    apply_indirect_support(schema, relationships)
    merged = merge_one_to_one_tables(schema, relationships, observations, config)
    dropped = prune_low_support_tables(schema, config)
    return {"merged_one_to_one": merged, "dropped_tables": dropped}
