"""Characteristic-set detection and emergent-schema discovery (the paper's
primary contribution)."""

from .builder import (
    DiscoveryConfig,
    DiscoveryReport,
    compute_coverage,
    discover_schema,
    discover_schema_from_property_sets,
)
from .detect import (
    DetectionResult,
    ExactCS,
    coverage_at_threshold,
    detect_characteristic_sets,
    detection_from_triples,
    support_histogram,
)
from .finetune import FinetuneConfig, finetune_schema
from .generalize import GeneralizationConfig, GeneralizationResult, GeneralizedCS, generalize, jaccard
from .labeling import LabelingConfig, label_schema, sanitize_identifier
from .relationships import RelationshipConfig, RelationshipResult, discover_relationships
from .schema_model import (
    CharacteristicSet,
    EmergentSchema,
    ForeignKey,
    Multiplicity,
    PropertyKind,
    PropertySpec,
    SchemaCoverage,
)
from .summarize import (
    SchemaSummary,
    expand_over_foreign_keys,
    summarize_by_keywords,
    summarize_by_support,
    top_k_summary,
)
from .typing import TypingConfig, analyze_property_objects, assign_property_kinds, literal_kind

__all__ = [
    "CharacteristicSet",
    "DetectionResult",
    "DiscoveryConfig",
    "DiscoveryReport",
    "EmergentSchema",
    "ExactCS",
    "FinetuneConfig",
    "ForeignKey",
    "GeneralizationConfig",
    "GeneralizationResult",
    "GeneralizedCS",
    "LabelingConfig",
    "Multiplicity",
    "PropertyKind",
    "PropertySpec",
    "RelationshipConfig",
    "RelationshipResult",
    "SchemaCoverage",
    "SchemaSummary",
    "TypingConfig",
    "analyze_property_objects",
    "assign_property_kinds",
    "compute_coverage",
    "coverage_at_threshold",
    "detect_characteristic_sets",
    "detection_from_triples",
    "discover_relationships",
    "discover_schema",
    "discover_schema_from_property_sets",
    "expand_over_foreign_keys",
    "finetune_schema",
    "generalize",
    "jaccard",
    "label_schema",
    "literal_kind",
    "sanitize_identifier",
    "summarize_by_keywords",
    "summarize_by_support",
    "support_histogram",
    "top_k_summary",
]
