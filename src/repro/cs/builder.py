"""The schema-discovery pipeline: triples in, emergent relational schema out.

This module wires the individual passes together in the order the paper
describes them:

1. basic CS detection (group subjects by exact property set);
2. generalization (merge similar sets, nullable minority properties);
3. optional typed-variant splitting;
4. property typing from object values;
5. foreign-key relationship discovery;
6. schema assembly into :class:`~repro.cs.schema_model.EmergentSchema`;
7. fine-tuning (multiplicities, 1-1 merges, indirect support, pruning);
8. human-readable labeling;
9. coverage accounting.

The single entry point is :func:`discover_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..model import TermDictionary
from .detect import DetectionResult, detect_characteristic_sets, detection_from_triples
from .finetune import FinetuneConfig, finetune_schema
from .generalize import GeneralizationConfig, GeneralizationResult, generalize
from .labeling import LabelingConfig, label_schema
from .relationships import RelationshipConfig, RelationshipResult, discover_relationships
from .schema_model import (
    CharacteristicSet,
    EmergentSchema,
    PropertySpec,
    SchemaCoverage,
)
from .typing import (
    PropertyObservation,
    TypingConfig,
    analyze_property_objects,
    assign_property_kinds,
    split_type_variants,
)


@dataclass
class DiscoveryConfig:
    """All tuning knobs of the discovery pipeline in one place."""

    generalization: GeneralizationConfig = field(default_factory=GeneralizationConfig)
    typing: TypingConfig = field(default_factory=TypingConfig)
    relationships: RelationshipConfig = field(default_factory=RelationshipConfig)
    finetune: FinetuneConfig = field(default_factory=FinetuneConfig)
    labeling: LabelingConfig = field(default_factory=LabelingConfig)
    label_tables: bool = True


@dataclass
class DiscoveryReport:
    """Intermediate artifacts of a discovery run, for inspection and tests."""

    detection: DetectionResult
    generalization: GeneralizationResult
    observations: Dict[Tuple[int, int], PropertyObservation]
    relationships: RelationshipResult
    finetune_report: Dict[str, object]


def discover_schema(
    triple_matrix: np.ndarray,
    dictionary: Optional[TermDictionary] = None,
    config: DiscoveryConfig | None = None,
    return_report: bool = False,
) -> EmergentSchema | Tuple[EmergentSchema, DiscoveryReport]:
    """Run the full discovery pipeline over an encoded ``(n, 3)`` triple matrix.

    The pipeline detects exact characteristic sets, generalizes them under
    the configured support thresholds, optionally splits typed variants,
    infers property kinds, discovers foreign-key relationships, and
    fine-tunes the result (merging/dropping marginal sets).

    Args:
        triple_matrix: ``(n, 3)`` int64 array of (subject, predicate,
            object) OIDs.
        dictionary: needed for property typing and labeling; when omitted,
            every property is typed ``MIXED`` and labels fall back to
            numeric names.
        config: discovery thresholds; defaults to :class:`DiscoveryConfig`.
        return_report: also return the per-stage :class:`DiscoveryReport`.

    Returns:
        The :class:`EmergentSchema` — or a ``(schema, report)`` tuple when
        ``return_report`` is set.
    """
    config = config or DiscoveryConfig()
    matrix = np.asarray(triple_matrix, dtype=np.int64).reshape(-1, 3)

    detection = detection_from_triples(map(tuple, matrix))
    generalization = generalize(detection, config.generalization)

    if config.typing.split_variants and dictionary is not None:
        generalization = split_type_variants(generalization, matrix, dictionary, config.typing)

    if dictionary is not None:
        observations = analyze_property_objects(matrix, dictionary, generalization.subject_to_gcs)
        kinds = assign_property_kinds(generalization, observations, config.typing)
    else:
        observations = {}
        kinds = {}

    relationships = discover_relationships(observations, config.relationships)

    schema = _assemble_schema(generalization, kinds, relationships)
    finetune_report = finetune_schema(schema, relationships, observations, config.finetune)

    if config.label_tables and dictionary is not None:
        label_schema(schema, dictionary, matrix, config.labeling)

    schema.coverage = compute_coverage(schema, detection)

    if return_report:
        report = DiscoveryReport(
            detection=detection,
            generalization=generalization,
            observations=observations,
            relationships=relationships,
            finetune_report=finetune_report,
        )
        return schema, report
    return schema


def discover_schema_from_property_sets(
    subject_properties: Dict[int, frozenset[int]],
    config: DiscoveryConfig | None = None,
) -> EmergentSchema:
    """Discovery from pre-computed property sets only (no typing / FK info).

    Useful for unit tests and for trickle-load scenarios where only the
    subject -> property-set index is maintained incrementally.
    """
    config = config or DiscoveryConfig()
    detection = detect_characteristic_sets(subject_properties)
    generalization = generalize(detection, config.generalization)
    relationships = RelationshipResult(foreign_keys=[], incoming_references={})
    schema = _assemble_schema(generalization, kinds={}, relationships=relationships)
    finetune_schema(schema, relationships, {}, config.finetune)
    schema.coverage = compute_coverage(schema, detection)
    return schema


# -- assembly ------------------------------------------------------------------


def _assemble_schema(
    generalization: GeneralizationResult,
    kinds: Dict[Tuple[int, int], object],
    relationships: RelationshipResult,
) -> EmergentSchema:
    from .schema_model import PropertyKind  # local import to avoid cycle noise

    schema = EmergentSchema()
    fk_map = relationships.fk_map()
    for gcs in generalization.generalized:
        properties: Dict[int, PropertySpec] = {}
        for prop in sorted(gcs.properties):
            kind = kinds.get((gcs.gcs_id, prop), PropertyKind.MIXED)
            fk = fk_map.get((gcs.gcs_id, prop))
            properties[prop] = PropertySpec(
                predicate_oid=prop,
                kind=kind,
                presence=gcs.property_presence.get(prop, 1.0),
                mean_multiplicity=gcs.property_mean_multiplicity.get(prop, 1.0),
                fk_target_cs=fk.target_cs if fk else None,
                fk_confidence=fk.confidence if fk else 0.0,
            )
        table = CharacteristicSet(
            cs_id=gcs.gcs_id,
            properties=properties,
            subjects=list(gcs.subjects),
            support=gcs.support,
            merged_from=[],
        )
        schema.add_table(table)
    schema.foreign_keys = [fk for fk in relationships.foreign_keys
                           if fk.source_cs in schema.tables and fk.target_cs in schema.tables]
    schema.irregular_subjects = list(generalization.irregular_subjects)
    return schema


def compute_coverage(schema: EmergentSchema, detection: DetectionResult) -> SchemaCoverage:
    """Count how many subjects and triples the regular schema captures.

    A triple is covered when its subject belongs to a table *and* its
    predicate is one of that table's properties; everything else lives in
    the irregular triple store.
    """
    coverage = SchemaCoverage(
        total_triples=detection.total_triples,
        total_subjects=detection.total_subjects(),
    )
    for subject, props in detection.subject_properties.items():
        cs_id = schema.subject_to_cs.get(subject)
        if cs_id is None:
            continue
        coverage.covered_subjects += 1
        table = schema.tables[cs_id]
        mults = detection.property_multiplicities.get(subject, {})
        for prop in props:
            if table.has_property(prop):
                coverage.covered_triples += mults.get(prop, 1)
    return coverage
