"""Schema summarization: reduce a large emergent schema to a digestible view.

Even after generalization a web-scale data set may yield hundreds of tables.
The paper proposes presenting *reduced* schemas during a query session:

* raise the support threshold so only the most populous tables show, or
* start from tables matching a keyword and include everything reachable from
  them over foreign-key links (within a hop limit).

Both reductions are implemented here as pure functions producing a
:class:`SchemaSummary` — a selection of table ids plus the foreign keys
between them — which the SQL catalog can expose as an "artificial schema"
without touching the underlying storage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from .schema_model import EmergentSchema, ForeignKey


@dataclass
class SchemaSummary:
    """A reduced view over an emergent schema."""

    table_ids: List[int]
    foreign_keys: List[ForeignKey]
    description: str = ""

    def table_count(self) -> int:
        return len(self.table_ids)


def summarize_by_support(schema: EmergentSchema, min_total_support: int,
                         include_referenced: bool = True) -> SchemaSummary:
    """Keep tables whose total support meets the threshold.

    With ``include_referenced`` enabled, tables referenced over a foreign key
    from a kept table are also kept (the paper's completion rule for small
    dimension tables).
    """
    selected: Set[int] = {cs_id for cs_id, table in schema.tables.items()
                          if table.total_support() >= min_total_support}
    if include_referenced:
        changed = True
        while changed:
            changed = False
            for fk in schema.foreign_keys:
                if fk.source_cs in selected and fk.target_cs not in selected:
                    selected.add(fk.target_cs)
                    changed = True
    return _build_summary(schema, selected,
                          description=f"support >= {min_total_support}")


def summarize_by_keywords(schema: EmergentSchema, keywords: Iterable[str],
                          hops: int = 1) -> SchemaSummary:
    """Keep tables whose label or column labels match any keyword, plus
    tables reachable from them over at most ``hops`` foreign-key links
    (followed in both directions)."""
    lowered = [kw.lower() for kw in keywords if kw]
    seeds: Set[int] = set()
    for cs_id, table in schema.tables.items():
        haystack = [table.label.lower()]
        haystack.extend(spec.label.lower() for spec in table.properties.values())
        if any(kw in text for kw in lowered for text in haystack if text):
            seeds.add(cs_id)
    selected = expand_over_foreign_keys(schema, seeds, hops=hops)
    return _build_summary(schema, selected,
                          description=f"keywords {sorted(lowered)} (+{hops} hops)")


def expand_over_foreign_keys(schema: EmergentSchema, seeds: Set[int], hops: int = 1) -> Set[int]:
    """Breadth-first expansion of a seed table set over the FK graph."""
    adjacency: Dict[int, Set[int]] = {}
    for fk in schema.foreign_keys:
        adjacency.setdefault(fk.source_cs, set()).add(fk.target_cs)
        adjacency.setdefault(fk.target_cs, set()).add(fk.source_cs)
    selected = set(seeds)
    frontier = deque((cs_id, 0) for cs_id in seeds)
    while frontier:
        cs_id, depth = frontier.popleft()
        if depth >= hops:
            continue
        for neighbour in adjacency.get(cs_id, ()):  # noqa: B905 - sets
            if neighbour not in selected:
                selected.add(neighbour)
                frontier.append((neighbour, depth + 1))
    return selected


def top_k_summary(schema: EmergentSchema, k: int) -> SchemaSummary:
    """Keep the ``k`` tables with the highest total support (plus their FKs)."""
    ranked = schema.tables_by_support()
    selected = {table.cs_id for table in ranked[:max(0, k)]}
    return _build_summary(schema, selected, description=f"top {k} by support")


def _build_summary(schema: EmergentSchema, selected: Set[int], description: str) -> SchemaSummary:
    kept = sorted(cs_id for cs_id in selected if cs_id in schema.tables)
    kept_set = set(kept)
    fks = [fk for fk in schema.foreign_keys
           if fk.source_cs in kept_set and fk.target_cs in kept_set]
    return SchemaSummary(table_ids=kept, foreign_keys=fks, description=description)
