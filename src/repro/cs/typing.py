"""Property typing: assign a value class to every CS property.

After generalization we know *which* properties each CS has; this pass looks
at the actual object values to find out *what* they hold:

* literal objects are classified by their atomic type (integer, decimal,
  boolean, date, dateTime, string) — declared ``xsd`` datatypes win, and
  untyped literals are sniffed from their lexical form;
* IRI / blank-node objects are typed by the CS membership of the referenced
  subject ("initial CS membership" in the paper) — which simultaneously
  feeds foreign-key discovery;
* a property whose objects mix classes is typed ``MIXED`` unless one class
  clearly dominates.

Optionally, a CS can be *split into typed variants*: one CS per distinct
combination of property types among its subjects, which makes every column
of each variant homogeneous (the paper accepts the CS-count increase for the
benefit of faster, type-homogeneous processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..model import IRI, Literal, TermDictionary
from ..model.terms import (
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from .generalize import GeneralizationResult, GeneralizedCS
from .schema_model import PropertyKind


@dataclass(frozen=True)
class TypingConfig:
    """Tuning knobs for the typing pass."""

    dominance_threshold: float = 0.9
    """A kind must cover at least this fraction of observed objects for the
    property to be typed with it; otherwise the property is ``MIXED``."""
    split_variants: bool = False
    """Split each CS into per-type-signature variants."""
    min_variant_support: int = 3
    """A typed variant must keep at least this many subjects, otherwise its
    subjects stay with the dominant variant."""


@dataclass
class PropertyObservation:
    """Accumulated evidence about one (CS, property) pair's objects."""

    kind_counts: Dict[PropertyKind, int] = field(default_factory=dict)
    target_cs_counts: Dict[int, int] = field(default_factory=dict)
    irregular_target_count: int = 0
    total: int = 0

    def record_kind(self, kind: PropertyKind) -> None:
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.total += 1

    def record_target(self, target_gcs: Optional[int]) -> None:
        if target_gcs is None:
            self.irregular_target_count += 1
        else:
            self.target_cs_counts[target_gcs] = self.target_cs_counts.get(target_gcs, 0) + 1

    def dominant_kind(self, threshold: float) -> PropertyKind:
        if self.total == 0:
            return PropertyKind.MIXED
        kind, count = max(self.kind_counts.items(), key=lambda item: item[1])
        if count / self.total >= threshold:
            return kind
        return PropertyKind.MIXED

    def iri_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.kind_counts.get(PropertyKind.IRI, 0) / self.total


_DATATYPE_KINDS = {
    XSD_INTEGER: PropertyKind.INTEGER,
    XSD_DECIMAL: PropertyKind.DECIMAL,
    XSD_DOUBLE: PropertyKind.DECIMAL,
    XSD_BOOLEAN: PropertyKind.BOOLEAN,
    XSD_DATE: PropertyKind.DATE,
    XSD_DATETIME: PropertyKind.DATETIME,
}


def literal_kind(literal: Literal) -> PropertyKind:
    """Classify a literal by declared datatype, falling back to sniffing."""
    datatype = literal.datatype
    if datatype:
        if datatype in _DATATYPE_KINDS:
            return _DATATYPE_KINDS[datatype]
        if datatype.endswith(("#int", "#long", "#short", "#byte", "#nonNegativeInteger")):
            return PropertyKind.INTEGER
        if datatype.endswith("#float"):
            return PropertyKind.DECIMAL
        return PropertyKind.STRING
    return _sniff_lexical(literal.lexical)


def _sniff_lexical(text: str) -> PropertyKind:
    stripped = text.strip()
    if not stripped:
        return PropertyKind.STRING
    try:
        int(stripped)
        return PropertyKind.INTEGER
    except ValueError:
        pass
    try:
        float(stripped)
        return PropertyKind.DECIMAL
    except ValueError:
        pass
    if len(stripped) == 10 and stripped[4] == "-" and stripped[7] == "-":
        try:
            from datetime import date

            date.fromisoformat(stripped)
            return PropertyKind.DATE
        except ValueError:
            pass
    if stripped.lower() in ("true", "false"):
        return PropertyKind.BOOLEAN
    return PropertyKind.STRING


def term_kind(dictionary: TermDictionary, oid: int) -> PropertyKind:
    """Classify the object OID: IRI/BNode -> IRI, literal -> its atomic type."""
    term = dictionary.decode(oid)
    if isinstance(term, Literal):
        return literal_kind(term)
    return PropertyKind.IRI


def analyze_property_objects(
    triple_matrix: np.ndarray,
    dictionary: TermDictionary,
    subject_to_gcs: Mapping[int, int],
) -> Dict[Tuple[int, int], PropertyObservation]:
    """Scan all triples once, collecting per-(CS, property) object evidence.

    ``triple_matrix`` is the ``(n, 3)`` encoded S/P/O matrix.  Only triples
    whose subject belongs to a generalized CS contribute; for IRI objects
    the referenced subject's CS membership (or irregularity) is recorded for
    foreign-key discovery.
    """
    observations: Dict[Tuple[int, int], PropertyObservation] = {}
    kind_cache: Dict[int, PropertyKind] = {}
    for s, p, o in triple_matrix:
        gcs = subject_to_gcs.get(int(s))
        if gcs is None:
            continue
        key = (gcs, int(p))
        obs = observations.get(key)
        if obs is None:
            obs = PropertyObservation()
            observations[key] = obs
        oid = int(o)
        kind = kind_cache.get(oid)
        if kind is None:
            kind = term_kind(dictionary, oid)
            kind_cache[oid] = kind
        obs.record_kind(kind)
        if kind is PropertyKind.IRI:
            obs.record_target(subject_to_gcs.get(oid))
    return observations


def assign_property_kinds(
    generalization: GeneralizationResult,
    observations: Mapping[Tuple[int, int], PropertyObservation],
    config: TypingConfig | None = None,
) -> Dict[Tuple[int, int], PropertyKind]:
    """Resolve one :class:`PropertyKind` per (CS, property) pair."""
    config = config or TypingConfig()
    kinds: Dict[Tuple[int, int], PropertyKind] = {}
    for gcs in generalization.generalized:
        for prop in gcs.properties:
            obs = observations.get((gcs.gcs_id, prop))
            if obs is None:
                kinds[(gcs.gcs_id, prop)] = PropertyKind.MIXED
            else:
                kinds[(gcs.gcs_id, prop)] = obs.dominant_kind(config.dominance_threshold)
    return kinds


# -- typed variants ------------------------------------------------------------


def compute_subject_signatures(
    triple_matrix: np.ndarray,
    dictionary: TermDictionary,
    subjects: List[int],
    properties: frozenset[int],
) -> Dict[int, Tuple[Tuple[int, str], ...]]:
    """Per-subject type signature over the CS's properties.

    The signature is a sorted tuple of ``(property, kind value)`` pairs for
    the properties the subject actually has; subjects with identical
    signatures can share a fully type-homogeneous variant.
    """
    wanted = set(subjects)
    per_subject: Dict[int, Dict[int, PropertyKind]] = {s: {} for s in subjects}
    kind_cache: Dict[int, PropertyKind] = {}
    for s, p, o in triple_matrix:
        s_int, p_int, o_int = int(s), int(p), int(o)
        if s_int not in wanted or p_int not in properties:
            continue
        kind = kind_cache.get(o_int)
        if kind is None:
            kind = term_kind(dictionary, o_int)
            kind_cache[o_int] = kind
        existing = per_subject[s_int].get(p_int)
        if existing is None:
            per_subject[s_int][p_int] = kind
        elif existing is not kind:
            per_subject[s_int][p_int] = PropertyKind.MIXED
    signatures: Dict[int, Tuple[Tuple[int, str], ...]] = {}
    for subject, kinds in per_subject.items():
        signatures[subject] = tuple(sorted((p, k.value) for p, k in kinds.items()))
    return signatures


def split_type_variants(
    generalization: GeneralizationResult,
    triple_matrix: np.ndarray,
    dictionary: TermDictionary,
    config: TypingConfig | None = None,
) -> GeneralizationResult:
    """Split each generalized CS into typed variants (optional pass).

    Subjects whose signature group is smaller than ``min_variant_support``
    stay with the largest variant of their CS, so the pass never creates
    tiny fragments.
    """
    config = config or TypingConfig()
    new_sets: List[GeneralizedCS] = []
    subject_to_gcs: Dict[int, int] = {}
    for gcs in generalization.generalized:
        signatures = compute_subject_signatures(triple_matrix, dictionary, gcs.subjects, gcs.properties)
        groups: Dict[Tuple, List[int]] = {}
        for subject in gcs.subjects:
            groups.setdefault(signatures.get(subject, ()), []).append(subject)
        ordered = sorted(groups.items(), key=lambda item: -len(item[1]))
        if not ordered:
            continue
        main_signature, main_subjects = ordered[0]
        main_subjects = list(main_subjects)
        variant_groups: List[Tuple[Tuple, List[int]]] = []
        for signature, members in ordered[1:]:
            if len(members) >= config.min_variant_support:
                variant_groups.append((signature, members))
            else:
                main_subjects.extend(members)
        variant_groups.insert(0, (main_signature, sorted(main_subjects)))
        for signature, members in variant_groups:
            new_id = len(new_sets)
            new_sets.append(GeneralizedCS(
                gcs_id=new_id,
                properties=gcs.properties,
                subjects=sorted(members),
                merged_exact=gcs.merged_exact,
                property_presence=dict(gcs.property_presence),
                property_mean_multiplicity=dict(gcs.property_mean_multiplicity),
            ))
            for subject in members:
                subject_to_gcs[subject] = new_id
    return GeneralizationResult(
        generalized=new_sets,
        subject_to_gcs=subject_to_gcs,
        irregular_subjects=list(generalization.irregular_subjects),
    )
