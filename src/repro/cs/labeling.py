"""Human-readable naming of the emergent schema.

A discovered schema is only useful to SQL users if its tables and columns
have understandable names.  The labeling pass derives them from the data:

* a table is named after the dominant ``rdf:type`` object of its members
  (``<.../Conference>`` -> ``Conference``), falling back to the most
  discriminative property's local name, then to ``cs<N>``;
* a column is named after the predicate IRI's local name
  (``<.../has_author>`` -> ``has_author``);
* name collisions are resolved by suffixing ``_2``, ``_3``, …
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..model import IRI, TermDictionary
from ..model.terms import RDF_TYPE
from .schema_model import EmergentSchema


@dataclass(frozen=True)
class LabelingConfig:
    """Tuning knobs for the naming pass."""

    lowercase: bool = False
    max_length: int = 48
    type_sample_limit: int = 5000
    """At most this many members per table are sampled for the dominant type."""


_IDENTIFIER_RE = re.compile(r"[^0-9A-Za-z_]")


def sanitize_identifier(raw: str, max_length: int = 48, fallback: str = "col") -> str:
    """Turn an arbitrary string into a SQL-friendly identifier."""
    cleaned = _IDENTIFIER_RE.sub("_", raw).strip("_")
    if not cleaned:
        cleaned = fallback
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned[:max_length]


def label_schema(
    schema: EmergentSchema,
    dictionary: TermDictionary,
    triple_matrix: Optional[np.ndarray] = None,
    config: LabelingConfig | None = None,
) -> Dict[int, str]:
    """Assign labels to every table and property; returns table id -> name."""
    config = config or LabelingConfig()
    type_oid = dictionary.lookup_term(IRI(RDF_TYPE))
    dominant_types = _dominant_types(schema, triple_matrix, type_oid, config) if triple_matrix is not None else {}

    used_names: set[str] = set()
    table_names: Dict[int, str] = {}
    for table in schema.tables_by_support():
        name = _table_base_name(table.cs_id, dominant_types.get(table.cs_id), table, dictionary, config)
        name = _unique(name, used_names)
        used_names.add(name)
        table.label = name
        table_names[table.cs_id] = name
        _label_columns(table, dictionary, config)
    return table_names


def _table_base_name(cs_id: int, type_oid: Optional[int], table, dictionary: TermDictionary,
                     config: LabelingConfig) -> str:
    if type_oid is not None:
        try:
            term = dictionary.decode(type_oid)
            if isinstance(term, IRI):
                return _case(sanitize_identifier(term.local_name(), config.max_length), config)
        except Exception:  # noqa: BLE001 - labels are best-effort
            pass
    # fall back to the most discriminative (least common across tables) property
    rdf_type = None
    for prop in sorted(table.properties):
        try:
            decoded = dictionary.decode(prop)
        except Exception:  # noqa: BLE001
            continue
        if isinstance(decoded, IRI):
            if decoded.value == RDF_TYPE:
                rdf_type = decoded
                continue
            return _case(sanitize_identifier(decoded.local_name(), config.max_length, fallback=f"cs{cs_id}"),
                         config)
    if rdf_type is not None:
        return _case(f"typed_cs{cs_id}", config)
    return _case(f"cs{cs_id}", config)


def _label_columns(table, dictionary: TermDictionary, config: LabelingConfig) -> None:
    used: set[str] = set()
    for prop in sorted(table.properties):
        spec = table.properties[prop]
        try:
            term = dictionary.decode(prop)
            base = term.local_name() if isinstance(term, IRI) else f"p{prop}"
        except Exception:  # noqa: BLE001
            base = f"p{prop}"
        name = _case(sanitize_identifier(base, config.max_length, fallback=f"p{prop}"), config)
        name = _unique(name, used)
        used.add(name)
        spec.label = name


def _dominant_types(schema: EmergentSchema, triple_matrix: np.ndarray,
                    type_predicate_oid: Optional[int], config: LabelingConfig) -> Dict[int, int]:
    """For each table, the most frequent rdf:type object OID among members."""
    if type_predicate_oid is None or triple_matrix is None or triple_matrix.shape[0] == 0:
        return {}
    mask = triple_matrix[:, 1] == type_predicate_oid
    typed = triple_matrix[mask]
    counters: Dict[int, Counter] = {}
    sample_counts: Dict[int, int] = {}
    for s, _p, o in typed:
        cs_id = schema.subject_to_cs.get(int(s))
        if cs_id is None:
            continue
        if sample_counts.get(cs_id, 0) >= config.type_sample_limit:
            continue
        sample_counts[cs_id] = sample_counts.get(cs_id, 0) + 1
        counters.setdefault(cs_id, Counter())[int(o)] += 1
    return {cs_id: counter.most_common(1)[0][0] for cs_id, counter in counters.items() if counter}


def _unique(name: str, used: set[str]) -> str:
    if name not in used:
        return name
    suffix = 2
    while f"{name}_{suffix}" in used:
        suffix += 1
    return f"{name}_{suffix}"


def _case(name: str, config: LabelingConfig) -> str:
    return name.lower() if config.lowercase else name
