"""Foreign-key (relationship) discovery between characteristic sets.

"As a URI property of one CS always refers in the object field to members of
one other CS, this is a foreign key between these two CS's."  In practice the
reference is rarely *always* to one CS, so the discovery is thresholded: a
property of CS *A* whose IRI objects land in CS *B* for at least
``min_confidence`` of its references becomes a foreign key ``A.p -> B``.

The pass also computes *indirect support*: the number of incoming references
each CS receives.  The paper uses this to keep small-but-referenced CSs in
the schema ("rather than looking at direct support, we add incoming links to
the CS to the tally").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from .schema_model import ForeignKey
from .typing import PropertyObservation


@dataclass(frozen=True)
class RelationshipConfig:
    """Tuning knobs for foreign-key discovery."""

    min_confidence: float = 0.8
    """Minimum fraction of a property's IRI objects that must fall in one
    target CS for the property to count as a foreign key to it."""
    min_iri_fraction: float = 0.5
    """The property's objects must be IRIs at least this often; properties
    holding mostly literals are never foreign keys."""
    min_references: int = 1
    """Minimum absolute number of resolved references."""


@dataclass
class RelationshipResult:
    """Discovered foreign keys plus incoming-reference tallies."""

    foreign_keys: List[ForeignKey]
    incoming_references: Dict[int, int]

    def fk_map(self) -> Dict[Tuple[int, int], ForeignKey]:
        """Index the foreign keys by ``(source CS, property)``."""
        return {(fk.source_cs, fk.predicate_oid): fk for fk in self.foreign_keys}


def discover_relationships(
    observations: Mapping[Tuple[int, int], PropertyObservation],
    config: RelationshipConfig | None = None,
) -> RelationshipResult:
    """Derive foreign keys from the per-(CS, property) object observations."""
    config = config or RelationshipConfig()
    foreign_keys: List[ForeignKey] = []
    incoming: Dict[int, int] = {}

    for (source_cs, predicate), obs in sorted(observations.items()):
        # every resolved reference counts towards the target's indirect support,
        # whether or not the property ends up qualifying as a foreign key
        for target_cs, count in obs.target_cs_counts.items():
            incoming[target_cs] = incoming.get(target_cs, 0) + count

        if obs.total == 0 or obs.iri_fraction() < config.min_iri_fraction:
            continue
        resolved = sum(obs.target_cs_counts.values())
        if resolved < config.min_references:
            continue
        target_cs, count = max(obs.target_cs_counts.items(), key=lambda item: item[1], default=(None, 0))
        if target_cs is None:
            continue
        confidence = count / resolved if resolved else 0.0
        if confidence >= config.min_confidence:
            foreign_keys.append(ForeignKey(
                source_cs=source_cs,
                predicate_oid=predicate,
                target_cs=target_cs,
                confidence=confidence,
            ))

    return RelationshipResult(foreign_keys=foreign_keys, incoming_references=incoming)


def one_to_one_links(
    foreign_keys: List[ForeignKey],
    cs_supports: Mapping[int, int],
    observations: Mapping[Tuple[int, int], PropertyObservation],
    tolerance: float = 0.1,
) -> List[Tuple[int, int, int]]:
    """Find foreign keys that look like 1-1 links between two CSs.

    Returns ``(source_cs, predicate, target_cs)`` triples where the number of
    references roughly equals both the source's and target's support — the
    pattern typical of blank-node satellites that fine-tuning may merge back
    into their parent table.
    """
    links: List[Tuple[int, int, int]] = []
    for fk in foreign_keys:
        obs = observations.get((fk.source_cs, fk.predicate_oid))
        if obs is None:
            continue
        references = obs.target_cs_counts.get(fk.target_cs, 0)
        source_support = cs_supports.get(fk.source_cs, 0)
        target_support = cs_supports.get(fk.target_cs, 0)
        if source_support == 0 or target_support == 0:
            continue
        if (abs(references - source_support) / source_support <= tolerance
                and abs(references - target_support) / target_support <= tolerance):
            links.append((fk.source_cs, fk.predicate_oid, fk.target_cs))
    return links
