"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """Raised when RDF, SPARQL or SQL input text cannot be parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line:
        1-based line number of the offending input, when known.
    column:
        1-based column number of the offending input, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(f"{message}{location}")


class DictionaryError(ReproError):
    """Raised when an OID or term cannot be resolved by the dictionary."""


class StorageError(ReproError):
    """Raised for invalid operations on triple / clustered storage."""


class PendingUpdatesError(StorageError):
    """Raised when an operation would silently drop uncompacted writes.

    ``RDFStore.load()`` and ``RDFStore.cluster()`` re-encode OIDs, and
    ``RDFStore.open(..., into=store)`` replaces a store's state wholesale;
    doing any of these while the delta overlay holds acknowledged writes
    would lose them.  Call ``compact()`` (or ``checkpoint()``) first.
    """


class PersistenceError(StorageError):
    """Raised when an on-disk snapshot or WAL is missing, corrupt or
    incompatible (bad magic, unsupported format version, checksum
    mismatch, or a target directory that is not a repro database)."""


class SchemaError(ReproError):
    """Raised when schema discovery or the relational catalog is misused."""


class PlanError(ReproError):
    """Raised when a logical query cannot be lowered to a physical plan."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class QueryCancelledError(ExecutionError):
    """Raised inside an executing query after a cancellation request.

    Cancellation is cooperative: ``store.cancel(query_id)`` sets a flag on
    the query's registry handle, and the executing thread raises this at
    its next batch boundary.  The error unwinds through the operator
    tree's ``close()`` cascade and the MVCC snapshot context managers, so
    no pins or plan locks are leaked.

    Attributes
    ----------
    query_id:
        The registry id of the cancelled query, when known.
    """

    def __init__(self, message: str, query_id: int | None = None):
        self.query_id = query_id
        super().__init__(message)


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for invalid configurations."""
