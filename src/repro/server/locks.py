"""The single-writer / multi-reader lock discipline.

One :class:`ReadWriteLock` guards each :class:`~repro.core.RDFStore`:

* **writers** (``update``, ``compact``, ``save``, ``checkpoint``, ``load``,
  ``discover_schema``, ``cluster``) hold the exclusive side for the duration
  of the operation — there is exactly one writer at a time, and a reader can
  never observe a half-applied request;
* **readers** hold the shared side only while *acquiring* a snapshot
  (pinning the current base generation + delta version and freezing the
  delta view).  Query execution itself runs lock-free against the pinned
  immutable state, so a long scan never blocks the writer and a long update
  only delays snapshot acquisition, not queries already running.

The write side is reentrant (``checkpoint`` → ``compact`` → ``save`` all
take it on one thread), and a thread holding the write lock passes straight
through the read side — WAL replay calls ``update()`` which is free to pin
snapshots for its ``DELETE WHERE`` evaluation.

Admission is **phase-fair**, which is what makes a continuous writer and a
continuous stream of readers coexist:

* while a writer is active or waiting, newly arriving readers queue up
  (so a steady stream of snapshot pins cannot starve the write path);
* when the writer releases, the *whole cohort* of queued readers is
  admitted before the next writer acquisition (so a writer hammering
  updates back-to-back cannot starve readers either).

Readers never hold the shared side across user code (the store releases it
before query execution starts), which keeps both rules deadlock-free.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class ReadWriteLock:
    """Phase-fair shared/exclusive lock with a reentrant write side.

    When a :class:`repro.obs.MetricsRegistry` is attached, every
    acquisition's wait time is observed in a ``lock_wait_seconds`` histogram
    labeled ``side=read`` / ``side=write`` — contention between the
    snapshot-pinning read path and the single-writer path is the first
    thing to look at when tail latency moves.
    """

    def __init__(self, metrics=None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None
        self._write_depth = 0
        self._writers_waiting = 0
        self._readers_waiting = 0
        self._reader_credits = 0
        """Queued readers admitted ahead of the next writer: set to the
        waiting-reader count at every write release, drained as they enter.
        A writer cannot acquire while credits remain — that is the
        phase-fairness guarantee."""
        self._wait_histogram = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, metrics) -> None:
        """Record acquisition waits into ``metrics`` (a ``MetricsRegistry``)."""
        self._wait_histogram = metrics.histogram(
            "lock_wait_seconds",
            "Time spent waiting to acquire the store's read/write lock.",
            labelnames=("side",))

    def _observe_wait(self, side: str, started: float) -> None:
        histogram = self._wait_histogram
        if histogram is not None:
            histogram.observe(time.perf_counter() - started, side=side)

    # -- introspection -------------------------------------------------------

    def owns_write(self) -> bool:
        """Whether the calling thread currently holds the exclusive side."""
        return self._writer == threading.get_ident()

    @property
    def active_readers(self) -> int:
        """Number of threads currently holding the shared side."""
        return self._readers

    # -- shared (read) side --------------------------------------------------

    def acquire_read(self) -> None:
        """Take the shared side.

        Blocks while a writer is active, or waiting — unless this reader
        belongs to the cohort admitted at the last write release.
        """
        if self.owns_write():
            # the exclusive side subsumes read access; nothing to track —
            # release_read is never called on this path (see read_locked)
            return
        started = time.perf_counter()
        with self._cond:
            while True:
                admitted = self._reader_credits > 0
                if self._writer is None and (admitted or not self._writers_waiting):
                    if admitted:
                        self._reader_credits -= 1
                    self._readers += 1
                    self._observe_wait("read", started)
                    return
                self._readers_waiting += 1
                try:
                    self._cond.wait()
                finally:
                    self._readers_waiting -= 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the shared side for the duration of the ``with`` block."""
        if self.owns_write():
            yield
            return
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive (write) side ----------------------------------------------

    def acquire_write(self) -> None:
        """Take the exclusive side; reentrant on the owning thread.

        Waits until active readers drain *and* the reader cohort admitted by
        the previous write release has passed through.
        """
        me = threading.get_ident()
        started = time.perf_counter()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                while (self._writer is not None or self._readers
                       or self._reader_credits):
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1
            self._observe_wait("write", started)

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a thread that does not hold the lock")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                # phase fairness: everything queued behind this writer gets
                # in before the next writer — even one re-acquiring instantly
                self._reader_credits = self._readers_waiting
                self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the exclusive side for the duration of the ``with`` block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
