"""MVCC read snapshots and per-client store sessions.

A :class:`ReadSnapshot` is the unit of snapshot isolation: it pins one
*version pair* — the store's base generation (bumped whenever the physical
structures are rebuilt) and the delta version (bumped by every write) — and
bundles everything a query needs to run against exactly that state:

* direct references to the base structures (dictionary, schema, catalog,
  exhaustive indexes, clustered store) — immutable by construction: rebuilds
  replace these objects instead of mutating them, and the store
  clones dictionary/schema before compaction whenever snapshots are open;
* a :class:`~repro.updates.FrozenDelta` view of the pending writes —
  an immutable copy the live delta's later mutations cannot touch;
* a private :class:`~repro.engine.ExecutionContext` and SPARQL/SQL engines
  wired to those references.

Acquisition happens under the store's shared (read) lock and is cheap: the
frozen delta is built once per delta version and cached by the
:class:`SnapshotRegistry`, so ten readers pinning the same version share one
view.  Execution happens *without* any lock — a reader holding a snapshot
never blocks the writer and never observes its progress.

A :class:`StoreSession` is the per-client convenience handle
(:meth:`repro.core.RDFStore.session`): queries auto-pin the latest snapshot
per call, or run against one sticky snapshot between :meth:`StoreSession.begin`
and :meth:`StoreSession.end`; writes go through the store's single-writer
path.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..engine import ExecutionContext
from ..errors import QueryCancelledError, StorageError
from ..sparql import PlanCache, PlannerOptions, QueryResult, SparqlEngine
from ..sql import SqlEngine, SqlResult


class ReadSnapshot:
    """One pinned, immutable view of a store: base generation + delta version.

    Obtained from :meth:`repro.core.RDFStore.snapshot` (or a
    :class:`StoreSession`); release with :meth:`close` or use as a context
    manager.  All queries through the snapshot see exactly the state at pin
    time, regardless of concurrent updates, compactions or checkpoints.
    """

    def __init__(self, store, registry: "SnapshotRegistry", generation: int,
                 delta_version: int, context: ExecutionContext, catalog,
                 pinned_delta, base_triples: int, plan_cache) -> None:
        self._store = store
        self._registry = registry
        self.generation = generation
        self.delta_version = delta_version
        self.context = context
        self.catalog = catalog
        self._base_triples = base_triples
        self._pinned_delta = pinned_delta
        """The live delta object the pin was taken on — captured so release
        still reaches it if the store is later re-pointed in place
        (``RDFStore.open(into=...)`` swaps the store's delta object)."""
        self._engine = SparqlEngine(context, plan_cache=plan_cache)
        """The plan cache is shared by every snapshot of the *same* version
        pair (the registry rotates it when the version moves), so a serving
        window between writes amortizes parse + plan across readers.  The
        store's own cache cannot be shared: a pinned old-state snapshot
        could repopulate it after a write cleared it, handing stale plans
        to the new state."""
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pin (idempotent).

        Once every snapshot of a superseded delta version is closed, the
        version's index pages are reclaimed from the buffer pool.
        """
        if self._closed:
            return
        self._closed = True
        self._registry.release(self)

    def __enter__(self) -> "ReadSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("this read snapshot has been released")

    # -- querying ------------------------------------------------------------

    def sparql(self, text: str, options: Optional[PlannerOptions] = None,
               profile: bool = False) -> QueryResult:
        """Run a SPARQL query against the pinned state.

        Snapshot queries record into the owning store's metrics,
        slow-query log and active-query registry exactly like direct
        :meth:`RDFStore.sparql` calls — both are resolved through the store
        at call time, so they keep pointing at the live registries even
        across an ``open(into=...)`` swap.  The query is therefore visible
        in ``store.active_queries()`` (``source="snapshot"``) and
        cancellable with ``store.cancel(id)`` while it runs.

        With ``profile=True`` (or ``config.profile_queries``) the run
        carries a :class:`~repro.obs.QueryProfile` on the result's
        ``trace`` field, same as the direct store call.
        """
        self._require_open()
        observer = self._store._observer
        registry = self._store.query_registry
        tracer = self._store._make_tracer(False, profile)
        scheme = (options or PlannerOptions()).scheme
        active = registry.begin(text, "sparql", scheme, source="snapshot",
                                pool=self._store.pool)
        started = time.perf_counter()
        try:
            result = self._engine.query(text, options, tracer=tracer,
                                        active=active)
        except QueryCancelledError:
            registry.finish(active, status="cancelled",
                            seconds=time.perf_counter() - started)
            raise
        except Exception as exc:
            registry.finish(active, seconds=time.perf_counter() - started,
                            error=exc)
            observer.error("sparql")
            raise
        elapsed = time.perf_counter() - started
        registry.finish(active, rows=len(result), seconds=elapsed)
        observer.observe("sparql", scheme, elapsed, len(result), text=text,
                         trace=tracer)
        return result

    def sql(self, text: str, profile: bool = False) -> SqlResult:
        """Run a SQL query against the pinned state's emergent schema."""
        self._require_open()
        if self.catalog is None:
            raise StorageError("catalog not available; the store had no discovered schema")
        observer = self._store._observer
        registry = self._store.query_registry
        tracer = self._store._make_tracer(False, profile)
        active = registry.begin(text, "sql", "sql", source="snapshot",
                                pool=self._store.pool)
        started = time.perf_counter()
        try:
            result = SqlEngine(self.context, self.catalog).query(
                text, tracer=tracer, active=active)
        except QueryCancelledError:
            registry.finish(active, status="cancelled",
                            seconds=time.perf_counter() - started)
            raise
        except Exception as exc:
            registry.finish(active, seconds=time.perf_counter() - started,
                            error=exc)
            observer.error("sql")
            raise
        elapsed = time.perf_counter() - started
        registry.finish(active, rows=len(result), seconds=elapsed)
        observer.observe("sql", "sql", elapsed, len(result), text=text,
                        trace=tracer)
        return result

    def decode_rows(self, result) -> List[tuple]:
        """Decode a result's OIDs with the *pinned* dictionary.

        Safe even after a later compaction re-mapped the live store's
        literal OIDs — the snapshot holds the dictionary it was pinned with.
        """
        self._require_open()
        return result.decoded_rows(self.context)

    def live_triple_count(self) -> int:
        """Triples visible to this snapshot: base ∪ delta − tombstones.

        Computed from the base count captured at pin time — never from the
        live store, whose base may have compacted since.
        """
        self._require_open()
        delta = self.context.delta
        if delta is None:
            return self._base_triples
        return self._base_triples + delta.insert_count() - delta.tombstone_count()


class SnapshotRegistry:
    """Tracks open snapshots and caches one frozen delta per version.

    Owned by the store; :meth:`acquire` is called under the store's shared
    lock (no writer in flight), :meth:`release` may be called from any
    reader thread at any time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active: Dict[Tuple[int, int], int] = {}
        self._frozen_key: Optional[Tuple[int, int]] = None
        self._frozen_view = None
        self._plan_cache: Optional[PlanCache] = None
        """Shared by every snapshot of the cached version pair; rotated
        together with the frozen view when the version moves on."""
        self._retired_hits = 0
        self._retired_misses = 0
        self._retired_evictions = 0
        """Lifetime counters folded in from rotated-out plan caches, so
        :meth:`plan_cache_stats` stays monotonic across version changes."""

    def acquire(self, store) -> ReadSnapshot:
        """Pin the store's current state and hand out a snapshot.

        Caller must hold the store's read lock: the delta is guaranteed to
        be in a committed state, and the base structures cannot be swapped
        mid-pin.
        """
        delta = store.delta
        generation = store.generation
        key = (generation, delta.version)
        with self._lock:
            if self._frozen_key != key:
                self._frozen_view = delta.freeze() if not delta.is_empty() else None
                self._retire_cache_locked()
                self._plan_cache = PlanCache(capacity=store.config.plan_cache_size)
                self._frozen_key = key
            frozen = self._frozen_view
            plan_cache = self._plan_cache
            version = delta.pin_version()
            self._active[key] = self._active.get(key, 0) + 1
        context = ExecutionContext(
            dictionary=store.dictionary,
            pool=store.pool,
            index_store=store.index_store,
            clustered_store=store.clustered_store,
            schema=store.schema,
            cost_model=store.config.cost_model,
            delta=frozen,
            batch_size=store.config.batch_size,
            metrics=store.metrics_registry,
        )
        return ReadSnapshot(store, self, generation=generation,
                            delta_version=version, context=context,
                            catalog=store.catalog, pinned_delta=delta,
                            base_triples=store.triple_count(),
                            plan_cache=plan_cache)

    def release(self, snapshot: ReadSnapshot) -> None:
        key = (snapshot.generation, snapshot.delta_version)
        with self._lock:
            remaining = self._active.get(key, 0) - 1
            if remaining > 0:
                self._active[key] = remaining
            else:
                self._active.pop(key, None)
                # the cached frozen view stays: while the key is still
                # current the next acquisition re-uses it for free, and a
                # superseded key is replaced on the next acquisition anyway
        snapshot._pinned_delta.unpin_version(snapshot.delta_version)

    def active_count(self) -> int:
        """Number of snapshots currently open across all versions."""
        with self._lock:
            return sum(self._active.values())

    def invalidate_cache(self) -> None:
        """Drop the cached frozen view and plan cache.

        Called when the store is re-pointed in place
        (``RDFStore.open(into=...)``): the new incarnation's (generation,
        version) pairs restart and could collide with the cached key, which
        would hand a stale frozen view to a fresh pin.  Pin accounting for
        snapshots opened before the swap is unaffected.
        """
        with self._lock:
            self._frozen_key = None
            self._frozen_view = None
            self._retire_cache_locked()

    def _retire_cache_locked(self) -> None:
        cache = self._plan_cache
        if cache is not None:
            stats = cache.stats()
            self._retired_hits += stats["lifetime_hits"]
            self._retired_misses += stats["lifetime_misses"]
            self._retired_evictions += stats["lifetime_evictions"]
        self._plan_cache = None

    def plan_cache_stats(self) -> Dict[str, int]:
        """Monotonic hit/miss/eviction totals across every per-version
        cache this registry has ever handed out, plus the live entry count."""
        with self._lock:
            live = self._plan_cache.stats() if self._plan_cache is not None else {}
            return {
                "hits": self._retired_hits + live.get("lifetime_hits", 0),
                "misses": self._retired_misses + live.get("lifetime_misses", 0),
                "evictions": self._retired_evictions + live.get("lifetime_evictions", 0),
                "entries": live.get("size", 0),
            }


class StoreSession:
    """A per-client handle over one store: snapshot reads, serialized writes.

    Reads auto-pin the latest snapshot per call (each query sees the newest
    committed state, never a torn one); between :meth:`begin` and
    :meth:`end` they run against one sticky snapshot instead (repeatable
    reads).  Writes always go through the store's single-writer lock.
    """

    def __init__(self, store) -> None:
        self.store = store
        self._sticky: Optional[ReadSnapshot] = None

    # -- snapshot control ----------------------------------------------------

    def begin(self) -> ReadSnapshot:
        """Pin a sticky snapshot: subsequent reads all see this state."""
        if self._sticky is not None:
            raise StorageError("session already holds a snapshot; call end() first")
        self._sticky = self.store.snapshot()
        return self._sticky

    def end(self) -> None:
        """Release the sticky snapshot (idempotent)."""
        if self._sticky is not None:
            self._sticky.close()
            self._sticky = None

    @property
    def snapshot(self) -> Optional[ReadSnapshot]:
        """The sticky snapshot, when one is pinned."""
        return self._sticky

    def __enter__(self) -> "StoreSession":
        return self

    def __exit__(self, *exc) -> None:
        self.end()

    # -- reads ---------------------------------------------------------------

    def sparql(self, text: str, options: Optional[PlannerOptions] = None,
               decode: bool = False):
        """Run a SPARQL query against the session's view.

        With ``decode=True`` returns decoded rows (decoded under the same
        snapshot, so OIDs and terms always match).
        """
        if self._sticky is not None:
            result = self._sticky.sparql(text, options)
            return self._sticky.decode_rows(result) if decode else result
        with self.store.snapshot() as snapshot:
            result = snapshot.sparql(text, options)
            return snapshot.decode_rows(result) if decode else result

    def sql(self, text: str, decode: bool = False):
        """Run a SQL query against the session's view."""
        if self._sticky is not None:
            result = self._sticky.sql(text)
            return self._sticky.decode_rows(result) if decode else result
        with self.store.snapshot() as snapshot:
            result = snapshot.sql(text)
            return snapshot.decode_rows(result) if decode else result

    # -- writes --------------------------------------------------------------

    def update(self, text: str):
        """Execute a SPARQL Update through the store's single-writer path.

        A sticky snapshot, if any, deliberately does *not* see the write —
        that is what repeatable reads mean; call :meth:`end` + :meth:`begin`
        to move the session's view forward.
        """
        return self.store.update(text)
