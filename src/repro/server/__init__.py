"""Concurrent access to a store: locks, MVCC snapshots, a threaded front end.

The base structures of the emergent-schema store are immutable by design
(writes accumulate in a delta overlay), which makes them naturally readable
from many threads.  This package adds the remaining pieces:

* :class:`ReadWriteLock` — the single-writer / multi-reader discipline; the
  shared side is held only while *pinning* a snapshot, never during query
  execution;
* :class:`ReadSnapshot` / :class:`SnapshotRegistry` — MVCC read snapshots:
  a cheap versioned handle (base generation + delta version) over immutable
  state, so readers never block on or observe half-applied updates;
* :class:`StoreSession` — per-client handles with sticky (repeatable-read)
  or auto-refreshing snapshots;
* :class:`StoreService` / :class:`QueryServer` — a thread-safe facade and a
  small threaded executor, the in-process equivalent of a query endpoint.

See ``docs/concurrency.md`` for the full design.
"""

from .locks import ReadWriteLock
from .service import QueryServer, StoreService
from .session import ReadSnapshot, SnapshotRegistry, StoreSession

__all__ = [
    "QueryServer",
    "ReadSnapshot",
    "ReadWriteLock",
    "SnapshotRegistry",
    "StoreService",
    "StoreSession",
]
