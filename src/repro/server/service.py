"""The thread-safe front end: a service facade and a threaded query server.

:class:`StoreService` is the object to share between threads: every read
pins an MVCC snapshot (so it sees a committed state and holds no lock while
executing) and every write goes through the store's single-writer lock.
:class:`QueryServer` puts a small thread pool in front of a service, turning
it into the in-process equivalent of a SPARQL endpoint: ``submit_*`` returns
a :class:`concurrent.futures.Future` immediately, and any number of client
threads can submit concurrently.

Neither class owns the store: building, compacting and persisting remain
the owner's business (the service merely forwards ``compact`` /
``checkpoint`` through the writer lock so maintenance can run while the
server keeps answering from pinned snapshots).
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from urllib.parse import parse_qs, urlsplit

from ..obs import default_registry, render_prometheus
from ..sparql import PlannerOptions, QueryResult
from ..sql import SqlResult
from .session import ReadSnapshot, StoreSession


class StoreService:
    """Thread-safe query/update facade over one :class:`~repro.core.RDFStore`.

    Safe to share between any number of threads; see ``docs/concurrency.md``
    for the locking discipline.  Every request bumps the store's
    ``server_requests_total{kind=…}`` / ``server_errors_total{kind=…}``
    counters and the ``server_inflight_requests`` gauge.
    """

    def __init__(self, store) -> None:
        self.store = store
        registry = store.metrics_registry
        self._requests = registry.counter(
            "server_requests_total", "Requests accepted by the service facade.",
            labelnames=("kind",))
        self._errors = registry.counter(
            "server_errors_total", "Requests that raised, by kind.",
            labelnames=("kind",))
        self._inflight = registry.gauge(
            "server_inflight_requests", "Requests currently executing.")

    @contextmanager
    def _observed(self, kind: str):
        self._requests.inc(kind=kind)
        self._inflight.add(1)
        try:
            yield
        except Exception:
            self._errors.inc(kind=kind)
            raise
        finally:
            self._inflight.add(-1)

    # -- reads (snapshot-isolated, lock-free execution) ------------------------

    def query(self, text: str, options: Optional[PlannerOptions] = None,
              decode: bool = False):
        """Run one SPARQL query against the latest committed state.

        Returns a :class:`~repro.sparql.QueryResult`, or decoded rows with
        ``decode=True`` (decoded under the same snapshot, so a concurrent
        compaction can never skew the terms).
        """
        with self._observed("query"):
            with self.store.snapshot() as snapshot:
                result = snapshot.sparql(text, options)
                return snapshot.decode_rows(result) if decode else result

    def sql(self, text: str, decode: bool = False):
        """Run one SQL query against the latest committed state."""
        with self._observed("sql"):
            with self.store.snapshot() as snapshot:
                result = snapshot.sql(text)
                return snapshot.decode_rows(result) if decode else result

    def snapshot(self) -> ReadSnapshot:
        """Pin an explicit snapshot (caller must ``close()`` it)."""
        return self.store.snapshot()

    def session(self) -> StoreSession:
        """A per-client session handle (sticky snapshots, serialized writes)."""
        return self.store.session()

    # -- writes (single-writer) ------------------------------------------------

    def update(self, text: str):
        """Execute one SPARQL Update request (serialized with other writers)."""
        with self._observed("update"):
            return self.store.update(text)

    def compact(self):
        """Fold pending writes into base storage; open snapshots keep their view."""
        with self._observed("compact"):
            return self.store.compact()

    def checkpoint(self, path=None):
        """Compact + snapshot + truncate the WAL; open snapshots keep their view."""
        with self._observed("checkpoint"):
            return self.store.checkpoint(path)

    # -- query management --------------------------------------------------------

    def active_queries(self) -> List[dict]:
        """Every query currently executing on the store (see
        :meth:`repro.core.RDFStore.active_queries`)."""
        return self.store.active_queries()

    def cancel(self, query_id: int, reason: str = "") -> bool:
        """Request cooperative cancellation of a running query.

        Returns ``True`` when the id was active; ``False`` is a safe
        no-op for unknown or already-finished ids.
        """
        return self.store.cancel(query_id, reason=reason)

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters: open snapshots, pending writes, versions,
        active queries, per-frontend/scheme latency summaries (count, sum,
        exact max, mean, bucket-estimated percentiles), and the most recent
        slow-query entries."""
        store = self.store
        return {
            "open_snapshots": store.open_snapshot_count(),
            "base_generation": store.generation,
            "delta_version": store.delta.version,
            "pending_inserts": store.delta.insert_count(),
            "pending_deletes": store.delta.tombstone_count(),
            "active_queries": store.query_registry.active_count(),
            "query_latency": self._histogram_summaries("query_seconds"),
            "profile_latency": self._histogram_summaries("query_profile_seconds"),
            "slow_queries": [entry.as_dict() for entry
                             in store.slow_queries()[:20]],
        }

    def _histogram_summaries(self, name: str) -> dict:
        """One ``summary()`` dict per labelset of a store histogram,
        keyed ``label=value,label=value`` (``"all"`` when unlabeled)."""
        histogram = self.store.metrics_registry.get(name)
        out: dict = {}
        if histogram is None:
            return out
        for key, _state in histogram.samples():
            labels = dict(zip(histogram.labelnames, key))
            label_key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out[label_key or "all"] = histogram.summary(**labels)
        return out


class QueryServer:
    """A small threaded executor serving queries and updates over one store.

    ``workers`` threads execute submitted requests concurrently; reads run
    against pinned snapshots, writes serialize on the store's writer lock.
    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, store, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("a query server needs at least one worker thread")
        self.service = StoreService(store)
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-query")
        self._http: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # -- submission --------------------------------------------------------------

    def submit_query(self, text: str, options: Optional[PlannerOptions] = None,
                     decode: bool = False) -> "Future[QueryResult]":
        """Queue one SPARQL query; resolve to its result."""
        return self._pool.submit(self.service.query, text, options, decode)

    def submit_sql(self, text: str, decode: bool = False) -> "Future[SqlResult]":
        """Queue one SQL query; resolve to its result."""
        return self._pool.submit(self.service.sql, text, decode)

    def submit_update(self, text: str) -> Future:
        """Queue one SPARQL Update; resolve to its :class:`UpdateResult`."""
        return self._pool.submit(self.service.update, text)

    def map_queries(self, texts: List[str],
                    options: Optional[PlannerOptions] = None) -> List[Future]:
        """Queue a batch of queries; one future per text, submission order."""
        return [self.submit_query(text, options) for text in texts]

    # -- observability -----------------------------------------------------------

    def metrics_text(self) -> str:
        """The served store's metrics in Prometheus text format.

        Merges the store's registry with the process-global one (WAL
        counters); this is the body the ``/metrics`` endpoint serves.
        """
        return render_prometheus(self.service.store.metrics_registry,
                                 default_registry())

    def start_metrics_endpoint(self, host: str = "127.0.0.1",
                               port: int = 0) -> int:
        """Serve the observability endpoint on a daemon thread.

        Routes (all ``GET``):

        * ``/metrics`` — Prometheus text exposition;
        * ``/stats`` — service-level JSON (versions, pending writes, active
          query count, recent slow queries);
        * ``/queries`` — JSON list of in-flight queries with progress;
        * ``/queries/cancel?id=N`` — request cooperative cancellation
          (``200`` with ``{"cancelled": true}`` when the id was active,
          ``404`` when unknown/finished, ``400`` for a malformed id).

        Returns the bound port (``port=0`` picks a free one).  Stopped by
        :meth:`shutdown`.
        """
        if self._http is not None:
            raise RuntimeError("metrics endpoint already running")
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                # a scraper or curl may disconnect mid-response; that is the
                # client's business, not a server stack trace
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", content_type)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    pass

            def _send_json(self, status: int, payload: object) -> None:
                self._send(status, "application/json",
                           json.dumps(payload).encode("utf-8"))

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                parts = urlsplit(self.path)
                route = parts.path
                if route == "/metrics":
                    self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                               server.metrics_text().encode("utf-8"))
                elif route == "/stats":
                    self._send_json(200, server.service.stats())
                elif route == "/queries":
                    self._send_json(200,
                                    {"queries": server.service.active_queries()})
                elif route == "/queries/cancel":
                    params = parse_qs(parts.query)
                    raw = params.get("id", [""])[0]
                    try:
                        query_id = int(raw)
                    except ValueError:
                        self._send_json(400, {"error": f"bad query id: {raw!r}"})
                        return
                    reason = params.get("reason", [""])[0]
                    if server.service.cancel(query_id, reason=reason):
                        self._send_json(200, {"cancelled": True, "id": query_id})
                    else:
                        self._send_json(404, {"cancelled": False, "id": query_id,
                                              "error": "no such active query"})
                else:
                    self._send_json(404, {
                        "error": f"unknown path {route!r}",
                        "routes": ["/metrics", "/stats", "/queries",
                                   "/queries/cancel?id=N"]})

            def log_message(self, format, *args) -> None:  # noqa: A002
                pass  # scrapes every few seconds would flood stderr

        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-metrics", daemon=True)
        self._http_thread.start()
        return self._http.server_address[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """The metrics endpoint's bound port, or ``None`` when not running."""
        return self._http.server_address[1] if self._http is not None else None

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
            if self._http_thread is not None:
                self._http_thread.join(timeout=5)
                self._http_thread = None
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
