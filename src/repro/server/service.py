"""The thread-safe front end: a service facade and a threaded query server.

:class:`StoreService` is the object to share between threads: every read
pins an MVCC snapshot (so it sees a committed state and holds no lock while
executing) and every write goes through the store's single-writer lock.
:class:`QueryServer` puts a small thread pool in front of a service, turning
it into the in-process equivalent of a SPARQL endpoint: ``submit_*`` returns
a :class:`concurrent.futures.Future` immediately, and any number of client
threads can submit concurrently.

Neither class owns the store: building, compacting and persisting remain
the owner's business (the service merely forwards ``compact`` /
``checkpoint`` through the writer lock so maintenance can run while the
server keeps answering from pinned snapshots).
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import List, Optional

from ..sparql import PlannerOptions, QueryResult
from ..sql import SqlResult
from .session import ReadSnapshot, StoreSession


class StoreService:
    """Thread-safe query/update facade over one :class:`~repro.core.RDFStore`.

    Safe to share between any number of threads; see ``docs/concurrency.md``
    for the locking discipline.
    """

    def __init__(self, store) -> None:
        self.store = store

    # -- reads (snapshot-isolated, lock-free execution) ------------------------

    def query(self, text: str, options: Optional[PlannerOptions] = None,
              decode: bool = False):
        """Run one SPARQL query against the latest committed state.

        Returns a :class:`~repro.sparql.QueryResult`, or decoded rows with
        ``decode=True`` (decoded under the same snapshot, so a concurrent
        compaction can never skew the terms).
        """
        with self.store.snapshot() as snapshot:
            result = snapshot.sparql(text, options)
            return snapshot.decode_rows(result) if decode else result

    def sql(self, text: str, decode: bool = False):
        """Run one SQL query against the latest committed state."""
        with self.store.snapshot() as snapshot:
            result = snapshot.sql(text)
            return snapshot.decode_rows(result) if decode else result

    def snapshot(self) -> ReadSnapshot:
        """Pin an explicit snapshot (caller must ``close()`` it)."""
        return self.store.snapshot()

    def session(self) -> StoreSession:
        """A per-client session handle (sticky snapshots, serialized writes)."""
        return self.store.session()

    # -- writes (single-writer) ------------------------------------------------

    def update(self, text: str):
        """Execute one SPARQL Update request (serialized with other writers)."""
        return self.store.update(text)

    def compact(self):
        """Fold pending writes into base storage; open snapshots keep their view."""
        return self.store.compact()

    def checkpoint(self, path=None):
        """Compact + snapshot + truncate the WAL; open snapshots keep their view."""
        return self.store.checkpoint(path)

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters: open snapshots, pending writes, versions."""
        store = self.store
        return {
            "open_snapshots": store.open_snapshot_count(),
            "base_generation": store.generation,
            "delta_version": store.delta.version,
            "pending_inserts": store.delta.insert_count(),
            "pending_deletes": store.delta.tombstone_count(),
        }


class QueryServer:
    """A small threaded executor serving queries and updates over one store.

    ``workers`` threads execute submitted requests concurrently; reads run
    against pinned snapshots, writes serialize on the store's writer lock.
    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, store, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("a query server needs at least one worker thread")
        self.service = StoreService(store)
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-query")

    # -- submission --------------------------------------------------------------

    def submit_query(self, text: str, options: Optional[PlannerOptions] = None,
                     decode: bool = False) -> "Future[QueryResult]":
        """Queue one SPARQL query; resolve to its result."""
        return self._pool.submit(self.service.query, text, options, decode)

    def submit_sql(self, text: str, decode: bool = False) -> "Future[SqlResult]":
        """Queue one SQL query; resolve to its result."""
        return self._pool.submit(self.service.sql, text, decode)

    def submit_update(self, text: str) -> Future:
        """Queue one SPARQL Update; resolve to its :class:`UpdateResult`."""
        return self._pool.submit(self.service.update, text)

    def map_queries(self, texts: List[str],
                    options: Optional[PlannerOptions] = None) -> List[Future]:
        """Queue a batch of queries; one future per text, submission order."""
        return [self.submit_query(text, options) for text in texts]

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
