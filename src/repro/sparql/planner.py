"""CS-aware SPARQL planner: lowers a parsed query to a physical plan.

Three plan schemes are supported; the first two reproduce the two halves of
Table I, the third adds the cost-based layer on top:

* ``default`` — every triple pattern becomes an index scan against the
  exhaustive permutation store; patterns sharing a subject are combined with
  nested-loop index joins (one join per additional property), patterns
  connected through other variables with hash joins;
* ``rdfscan`` — patterns sharing a subject are grouped into star patterns
  and handed to a single RDFscan; stars connected over a discovered foreign
  key become RDFjoins fed by the upstream star; stars are ordered by a
  constraint-counting heuristic in query order;
* ``optimized`` — the RDFscan/RDFjoin physical algebra, but star and
  property orders are chosen by the cost-based
  :class:`~repro.sparql.optimizer.QueryOptimizer` from estimated
  cardinalities (CS statistics, column statistics, exact index counts).

``PlannerOptions.optimize`` can also force cost-based ordering on/off for
any scheme.  Every finished plan is *annotated* with estimated row counts,
so ``explain()`` shows estimated vs. actual cardinalities after execution.

FILTER comparisons over literals are translated to OID ranges (the loader
assigns value-ordered literal OIDs) and pushed into the scans.  With zone
maps enabled and a clustered store present, range predicates are further
pushed *across* foreign keys using the CS blocks' zone maps, reproducing the
paper's cross-table date restriction on RDF-H Q3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlanError
from ..model import IRI, Literal, Term
from ..engine import (
    AggregateOp,
    AggregateSpec,
    BinaryOp,
    BindingTable,
    DistinctOp,
    ExecutionContext,
    Expression,
    FilterEqualOp,
    FilterRangeOp,
    HashJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializedOp,
    NestedLoopIndexJoinOp,
    NumericConst,
    NumericVar,
    OidRange,
    OrderByOp,
    PatternTerm,
    PhysicalOperator,
    ProjectOp,
    RDFJoinOp,
    RDFScanOp,
    StarPattern,
    StarProperty,
    TriplePatternPlan,
    fk_range_from_zonemap,
    subject_range_for_property_range,
)
from ..engine.operators import FilterNotEqualOp
from .ast import AggregateExpr, ArithmeticExpr, Comparison, SelectQuery, TriplePattern, Variable
from .optimizer import QueryOptimizer

DEFAULT_SCHEME = "default"
RDFSCAN_SCHEME = "rdfscan"
OPTIMIZED_SCHEME = "optimized"

_SCHEMES = (DEFAULT_SCHEME, RDFSCAN_SCHEME, OPTIMIZED_SCHEME)


@dataclass(frozen=True)
class PlannerOptions:
    """Plan-scheme configuration (one row of Table I, plus the optimizer).

    Attributes:
        scheme: ``default``, ``rdfscan`` or ``optimized``.
        use_zone_maps: enable zone-map pruning and cross-FK range push-down.
        force_index_path: see below.
        optimize: force cost-based join ordering on (``True``) or off
            (``False``) regardless of scheme; ``None`` (the default) enables
            it exactly for the ``optimized`` scheme.
    """

    scheme: str = RDFSCAN_SCHEME
    use_zone_maps: bool = False
    force_index_path: bool = False
    """Evaluate RDFscan/RDFjoin over the PSO projections even when a
    clustered store exists (the ParseOrder + RDFscan configuration)."""
    optimize: Optional[bool] = None

    @property
    def cost_based(self) -> bool:
        """Whether cost-based join ordering is in effect for these options."""
        if self.optimize is None:
            return self.scheme == OPTIMIZED_SCHEME
        return self.optimize

    def describe(self) -> str:
        return (f"scheme={self.scheme} zonemaps={'yes' if self.use_zone_maps else 'no'}"
                f"{' index-path' if self.force_index_path else ''}"
                f" optimize={'yes' if self.cost_based else 'no'}")


@dataclass
class _VarConstraint:
    """Accumulated FILTER constraints for one variable, in OID space."""

    equal_oid: Optional[int] = None
    not_equal_oids: List[int] = field(default_factory=list)
    oid_range: OidRange = field(default_factory=OidRange)
    unsatisfiable: bool = False


class SparqlPlanner:
    """Translates :class:`SelectQuery` ASTs into physical plans."""

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context
        self._optimizer_instance: Optional[QueryOptimizer] = None

    def _optimizer(self) -> QueryOptimizer:
        """The (lazily created) cost-based optimizer shared across queries."""
        if self._optimizer_instance is None:
            self._optimizer_instance = QueryOptimizer(self.context)
        return self._optimizer_instance

    # -- public entry point -----------------------------------------------------

    def plan(self, query: SelectQuery, options: PlannerOptions | None = None) -> PhysicalOperator:
        """Lower a parsed query to an executable physical plan.

        Args:
            query: the parsed :class:`SelectQuery`.
            options: plan scheme and optimizer configuration (defaults to
                the RDFscan/RDFjoin scheme without zone maps).

        Returns:
            The root :class:`PhysicalOperator`, annotated with estimated
            row counts.

        Raises:
            PlanError: when the options name an unknown plan scheme.
        """
        options = options or PlannerOptions()
        if options.scheme not in _SCHEMES:
            raise PlanError(f"unknown plan scheme {options.scheme!r}")

        constraints, residual_filters = self._translate_filters(query)
        if any(c.unsatisfiable for c in constraints.values()):
            return MaterializedOp(BindingTable.empty(query.output_names()), label="empty (unsatisfiable filter)")

        stars, loose_patterns = self._group_stars(query)
        if stars is None:
            return MaterializedOp(BindingTable.empty(query.output_names()), label="empty (unknown term)")

        if options.scheme == DEFAULT_SCHEME:
            root = self._plan_default(query, stars, loose_patterns, constraints, options)
        else:
            # rdfscan and optimized share the RDFscan/RDFjoin physical algebra;
            # they differ in how star join order is chosen
            root = self._plan_rdfscan(query, stars, loose_patterns, constraints, options)

        if root is None:
            return MaterializedOp(BindingTable.empty(query.output_names()), label="empty (no patterns)")

        root = self._apply_not_equal_constraints(root, query, constraints)
        root = self._apply_residual_filters(root, residual_filters)
        root = self._apply_solution_modifiers(root, query)
        self._optimizer().annotate(root)
        return root

    def _empty_plan(self, query: SelectQuery, label: str) -> MaterializedOp:
        """A zero-row shortcut plan that still binds the query's variables.

        Shortcut plans returned from inside the plan-shape helpers flow
        through the filter / aggregate / projection modifiers, which
        reference pattern and SELECT variables by name — an empty table
        without those columns would crash instead of yielding zero rows.
        """
        names: List[str] = list(query.all_variables())
        for name in query.select_variables:
            if name not in names:
                names.append(name)
        return MaterializedOp(BindingTable.empty(names), label=label)

    def _apply_not_equal_constraints(self, root: PhysicalOperator, query: SelectQuery,
                                     constraints: Dict[str, _VarConstraint]) -> PhysicalOperator:
        pattern_vars = set(query.all_variables())
        for var, constraint in constraints.items():
            if var not in pattern_vars:
                continue
            for oid in constraint.not_equal_oids:
                root = FilterNotEqualOp(root, var, oid)
        return root

    # -- filter translation --------------------------------------------------------

    def _translate_filters(self, query: SelectQuery) -> Tuple[Dict[str, _VarConstraint], List[Comparison]]:
        constraints: Dict[str, _VarConstraint] = {}
        residual: List[Comparison] = []
        for comparison in query.filters:
            constraint = constraints.setdefault(comparison.variable, _VarConstraint())
            if not self._push_comparison(constraint, comparison):
                residual.append(comparison)
        return constraints, residual

    def _push_comparison(self, constraint: _VarConstraint, comparison: Comparison) -> bool:
        value = comparison.value
        encoder = self.context.encoder
        if comparison.op in ("=", "!="):
            oid = encoder.term_oid(value)
            if comparison.op == "=":
                if oid is None:
                    constraint.unsatisfiable = True
                elif constraint.equal_oid is not None and constraint.equal_oid != oid:
                    constraint.unsatisfiable = True
                else:
                    constraint.equal_oid = oid
            else:
                if oid is not None:
                    constraint.not_equal_oids.append(oid)
            return True
        if not isinstance(value, Literal):
            return False  # range comparison over IRIs: leave as residual (unsupported push-down)
        low: Optional[Literal] = None
        high: Optional[Literal] = None
        low_inclusive = high_inclusive = True
        if comparison.op in (">", ">="):
            low = value
            low_inclusive = comparison.op == ">="
        else:
            high = value
            high_inclusive = comparison.op == "<="
        bounds = encoder.literal_range(low, high, low_inclusive, high_inclusive)
        if bounds is None:
            constraint.unsatisfiable = True
            return True
        constraint.oid_range = constraint.oid_range.intersect(bounds)
        return True

    # -- pattern grouping -------------------------------------------------------------

    def _group_stars(self, query: SelectQuery):
        """Group patterns by subject variable; returns (stars, loose patterns).

        Returns ``(None, None)`` when a constant term does not occur in the
        data (the query result is empty).
        """
        stars: Dict[str, List[Tuple[int, TriplePattern]]] = {}
        loose: List[TriplePattern] = []
        for pattern in query.patterns:
            predicate_oid = None
            if not isinstance(pattern.predicate, Variable):
                predicate_oid = self.context.encoder.term_oid(pattern.predicate)
                if predicate_oid is None:
                    return None, None
            if isinstance(pattern.subject, Variable) and predicate_oid is not None:
                stars.setdefault(pattern.subject.name, []).append((predicate_oid, pattern))
            else:
                loose.append(pattern)
        return stars, loose

    def _pattern_object_term(self, pattern: TriplePattern) -> Optional[PatternTerm]:
        obj = pattern.object
        if isinstance(obj, Variable):
            return PatternTerm.variable(obj.name)
        oid = self.context.encoder.term_oid(obj)
        if oid is None:
            return None
        return PatternTerm.constant(oid)

    def _build_star(self, subject_var: str, members: List[Tuple[int, TriplePattern]],
                    constraints: Dict[str, _VarConstraint]) -> Optional[StarPattern]:
        properties: List[StarProperty] = []
        for predicate_oid, pattern in members:
            object_term = self._pattern_object_term(pattern)
            if object_term is None:
                return None
            oid_range: Optional[OidRange] = None
            if object_term.is_variable:
                constraint = constraints.get(object_term.var)
                if constraint is not None:
                    if constraint.equal_oid is not None:
                        object_term = PatternTerm.constant(constraint.equal_oid)
                    elif not constraint.oid_range.is_unbounded():
                        oid_range = constraint.oid_range
            properties.append(StarProperty(predicate_oid=predicate_oid, object_term=object_term,
                                           oid_range=oid_range))
        subject_constraint = constraints.get(subject_var)
        subject_range = None
        if subject_constraint is not None and not subject_constraint.oid_range.is_unbounded():
            subject_range = subject_constraint.oid_range
        return StarPattern(subject_var=subject_var, properties=properties, subject_range=subject_range)

    # -- RDFscan / RDFjoin scheme -------------------------------------------------------

    def _plan_rdfscan(self, query: SelectQuery, stars, loose_patterns, constraints,
                      options: PlannerOptions):
        star_patterns: Dict[str, StarPattern] = {}
        for subject_var, members in stars.items():
            star = self._build_star(subject_var, members, constraints)
            if star is None:
                return self._empty_plan(query, "empty (unknown term)")
            star_patterns[subject_var] = star

        if (options.use_zone_maps and self.context.has_clustered_store()
                and not options.force_index_path and not self.context.has_pending_delta()):
            # Zone-map-derived subject/FK ranges describe the immutable base
            # columns only; with pending writes they could exclude delta rows,
            # so push-down pauses until the next compaction.
            self._apply_zone_map_pushdown(star_patterns)

        if options.cost_based:
            ordered = self._optimizer().order_stars(star_patterns)
        else:
            ordered = self._order_stars(star_patterns)
        root: Optional[PhysicalOperator] = None
        planned_vars: set[str] = set()
        for star in ordered:
            if root is None:
                root = RDFScanOp(star, use_zone_maps=options.use_zone_maps,
                                 force_index_path=options.force_index_path)
            elif star.subject_var in planned_vars:
                root = RDFJoinOp(root, star, use_zone_maps=options.use_zone_maps,
                                 force_index_path=options.force_index_path)
            else:
                root = self._connect_star(root, star, planned_vars, options)
            planned_vars.update(star.output_variables())

        root = self._join_loose_patterns(query, root, loose_patterns, constraints, planned_vars)
        return root

    def _connect_star(self, root: PhysicalOperator, star: StarPattern, planned_vars: set[str],
                      options: PlannerOptions) -> PhysicalOperator:
        """Join a star whose subject is not yet bound into the running plan.

        The Fig. 4(b) case: when the star references an already-planned star
        through one of its properties (``?s prop4 ?s2`` with ``?s2`` bound),
        that property is scanned on its own, joined with the plan so far to
        obtain candidate subjects, and the *rest* of the star is evaluated by
        RDFjoin over those candidates.  Otherwise the whole star is RDFscanned
        and hash-joined on the shared variables.
        """
        linking = next((prop for prop in star.properties
                        if prop.object_term.is_variable and prop.object_term.var in planned_vars),
                       None)
        remaining = [prop for prop in star.properties if prop is not linking]
        if linking is not None and remaining:
            link_scan = IndexScanOp(
                TriplePatternPlan(PatternTerm.variable(star.subject_var),
                                  PatternTerm.constant(linking.predicate_oid),
                                  linking.object_term),
                object_range=linking.oid_range,
                subject_range=star.subject_range,
            )
            joined = HashJoinOp(root, link_scan, join_vars=[linking.object_term.var])
            rest = StarPattern(subject_var=star.subject_var, properties=remaining,
                               subject_range=star.subject_range)
            return RDFJoinOp(joined, rest, use_zone_maps=options.use_zone_maps,
                             force_index_path=options.force_index_path)
        scan = RDFScanOp(star, use_zone_maps=options.use_zone_maps,
                         force_index_path=options.force_index_path)
        shared = sorted(planned_vars & set(star.output_variables()))
        return HashJoinOp(root, scan, join_vars=shared or None)

    def _order_stars(self, star_patterns: Dict[str, StarPattern]) -> List[StarPattern]:
        """Plan constrained stars first, then stars reachable from planned ones."""

        def constraint_score(star: StarPattern) -> int:
            # constrained stars first; among equally constrained ones prefer the
            # wider star so that narrow satellite stars become RDFjoins fed by it
            score = len(star.properties)
            for prop in star.properties:
                if not prop.object_term.is_variable:
                    score += 20
                if prop.oid_range is not None and not prop.oid_range.is_unbounded():
                    score += 20
            if star.subject_range is not None and not star.subject_range.is_unbounded():
                score += 20
            return score

        remaining = dict(star_patterns)
        ordered: List[StarPattern] = []
        available_vars: set[str] = set()
        while remaining:
            # prefer a star whose subject is already bound (enables RDFjoin), then
            # any star connected to the plan so far, then the most constrained one
            def connectivity(star: StarPattern) -> int:
                if star.subject_var in available_vars:
                    return 0
                if available_vars & set(star.output_variables()):
                    return 1
                return 2 if available_vars else 1

            candidates = sorted(
                remaining.values(),
                key=lambda s: (connectivity(s), -constraint_score(s), s.subject_var),
            )
            chosen = candidates[0]
            ordered.append(chosen)
            available_vars.update(chosen.output_variables())
            del remaining[chosen.subject_var]
        return ordered

    def _apply_zone_map_pushdown(self, star_patterns: Dict[str, StarPattern]) -> None:
        """Derive subject ranges from sorted columns and push them across FKs."""
        store = self.context.clustered_store
        if store is None:
            return
        block_of_star: Dict[str, object] = {}
        for subject_var, star in star_patterns.items():
            blocks = store.blocks_with_properties(star.predicate_oids())
            if len(blocks) == 1:
                block_of_star[subject_var] = blocks[0]

        # pass 1: subject ranges from range predicates over sub-ordered columns
        for subject_var, star in star_patterns.items():
            block = block_of_star.get(subject_var)
            if block is None:
                continue
            for prop in star.properties:
                if prop.oid_range is None or prop.oid_range.is_unbounded():
                    continue
                derived = subject_range_for_property_range(block, prop.predicate_oid, prop.oid_range)
                if derived is not None:
                    star.subject_range = derived if star.subject_range is None \
                        else star.subject_range.intersect(derived)

        # pass 2: push ranges across foreign keys, in both directions
        for subject_var, star in star_patterns.items():
            block = block_of_star.get(subject_var)
            for prop in star.properties:
                if not prop.object_term.is_variable:
                    continue
                target = star_patterns.get(prop.object_term.var)
                if target is None or target is star:
                    continue
                # (a) the referenced star's subject range restricts this FK column
                if target.subject_range is not None and not target.subject_range.is_unbounded():
                    prop.oid_range = target.subject_range if prop.oid_range is None \
                        else prop.oid_range.intersect(target.subject_range)
                # (b) a range predicate on this star, via zone maps, bounds the FK values
                if block is not None:
                    for other in star.properties:
                        if other is prop or other.oid_range is None or other.oid_range.is_unbounded():
                            continue
                        fk_bounds = fk_range_from_zonemap(block, other.predicate_oid, other.oid_range,
                                                          prop.predicate_oid)
                        if fk_bounds is not None:
                            target.subject_range = fk_bounds if target.subject_range is None \
                                else target.subject_range.intersect(fk_bounds)

    # -- default scheme --------------------------------------------------------------------

    def _plan_default(self, query: SelectQuery, stars, loose_patterns, constraints,
                      options: PlannerOptions):
        root: Optional[PhysicalOperator] = None
        planned_vars: set[str] = set()

        # With zone maps on a clustered store, derive the same pushed-down
        # ranges the RDFscan scheme uses and hand them to the index scans.
        pushed: Dict[str, StarPattern] = {}
        if (options.use_zone_maps and self.context.has_clustered_store()
                and not self.context.has_pending_delta()):
            for subject_var, members in stars.items():
                star = self._build_star(subject_var, members, constraints)
                if star is None:
                    return self._empty_plan(query, "empty (unknown term)")
                pushed[subject_var] = star
            self._apply_zone_map_pushdown(pushed)

        if options.cost_based:
            ranking: Dict[str, StarPattern] = {}
            for subject_var, members in stars.items():
                star = pushed.get(subject_var) or self._build_star(subject_var, members, constraints)
                if star is None:
                    return self._empty_plan(query, "empty (unknown term)")
                ranking[subject_var] = star
            ordered_subjects = [star.subject_var for star in self._optimizer().order_stars(ranking)]
        else:
            ordered_subjects = sorted(
                stars,
                key=lambda subject: -self._default_star_score(stars[subject], constraints),
            )
        for subject_var in ordered_subjects:
            members = stars[subject_var]
            star_plan = self._plan_default_star(subject_var, members, constraints, options,
                                                pushed.get(subject_var))
            if star_plan is None:
                return self._empty_plan(query, "empty (unknown term)")
            if root is None:
                root = star_plan
            else:
                shared = sorted(planned_vars & set(self._star_member_vars(subject_var, members)))
                root = HashJoinOp(root, star_plan, join_vars=shared or None)
            planned_vars.update(self._star_member_vars(subject_var, members))

        root = self._join_loose_patterns(query, root, loose_patterns, constraints, planned_vars)
        return root

    def _star_member_vars(self, subject_var: str, members) -> List[str]:
        names = [subject_var]
        for _oid, pattern in members:
            for name in pattern.variables():
                if name not in names:
                    names.append(name)
        return names

    def _default_star_score(self, members, constraints) -> int:
        score = 0
        for _oid, pattern in members:
            if not isinstance(pattern.object, Variable):
                score += 3
            else:
                constraint = constraints.get(pattern.object.name)
                if constraint is not None and (constraint.equal_oid is not None
                                               or not constraint.oid_range.is_unbounded()):
                    score += 2
        return score

    def _plan_default_star(self, subject_var: str, members, constraints,
                           options: PlannerOptions,
                           pushed_star: Optional[StarPattern] = None) -> Optional[PhysicalOperator]:
        """Index scan for the most selective pattern, nested-loop index joins
        for every further property — the plan shape of Fig. 4 (left side)."""

        def selectivity_rank(member) -> int:
            _oid, pattern = member
            if not isinstance(pattern.object, Variable):
                return 0
            constraint = constraints.get(pattern.object.name)
            if constraint is not None and constraint.equal_oid is not None:
                return 0
            if constraint is not None and not constraint.oid_range.is_unbounded():
                return 1
            return 2

        def estimated_rows(member) -> float:
            predicate_oid, pattern = member
            object_oid: Optional[int] = None
            oid_range: Optional[OidRange] = None
            if not isinstance(pattern.object, Variable):
                object_oid = self.context.encoder.term_oid(pattern.object)
                if object_oid is None:
                    return 0.0
            else:
                constraint = constraints.get(pattern.object.name)
                if constraint is not None:
                    if constraint.equal_oid is not None:
                        object_oid = constraint.equal_oid
                    elif not constraint.oid_range.is_unbounded():
                        oid_range = constraint.oid_range
            return self._optimizer().pattern_cardinality(predicate_oid, object_oid, oid_range)

        if options.cost_based:
            # most selective pattern first, by estimated cardinality
            ordered = sorted(members, key=estimated_rows)
        else:
            ordered = sorted(members, key=selectivity_rank)
        subject_range = self._default_subject_range(subject_var, members, constraints, options)
        if pushed_star is not None and pushed_star.subject_range is not None:
            subject_range = pushed_star.subject_range if subject_range is None \
                else subject_range.intersect(pushed_star.subject_range)

        plans: List[Tuple[TriplePatternPlan, Optional[OidRange]]] = []
        for predicate_oid, pattern in ordered:
            object_term = self._pattern_object_term(pattern)
            if object_term is None:
                return None
            oid_range = None
            if object_term.is_variable:
                constraint = constraints.get(object_term.var)
                if constraint is not None:
                    if constraint.equal_oid is not None:
                        object_term = PatternTerm.constant(constraint.equal_oid)
                    elif not constraint.oid_range.is_unbounded():
                        oid_range = constraint.oid_range
                if pushed_star is not None:
                    pushed_prop = pushed_star.property_for(predicate_oid)
                    if (pushed_prop is not None and pushed_prop.oid_range is not None
                            and not pushed_prop.oid_range.is_unbounded()):
                        oid_range = pushed_prop.oid_range if oid_range is None \
                            else oid_range.intersect(pushed_prop.oid_range)
            plans.append((TriplePatternPlan(PatternTerm.variable(subject_var),
                                            PatternTerm.constant(predicate_oid),
                                            object_term), oid_range))

        first_pattern, first_range = plans[0]
        root: PhysicalOperator = IndexScanOp(first_pattern, object_range=first_range,
                                             subject_range=subject_range)
        for pattern_plan, oid_range in plans[1:]:
            root = NestedLoopIndexJoinOp(root, pattern_plan, object_range=oid_range)
        return root

    def _default_subject_range(self, subject_var: str, members, constraints,
                               options: PlannerOptions) -> Optional[OidRange]:
        """Zone-map style subject restriction for the Default scheme.

        When the store is clustered and zone maps are enabled, a range
        predicate on a sub-ordered property restricts the subject OIDs that
        can match; the Default plan benefits by pushing that interval into
        its first index scan.
        """
        constraint = constraints.get(subject_var)
        base = constraint.oid_range if constraint is not None and not constraint.oid_range.is_unbounded() \
            else None
        if (not options.use_zone_maps or not self.context.has_clustered_store()
                or self.context.has_pending_delta()):
            return base
        store = self.context.clustered_store
        predicate_oids = [oid for oid, _pattern in members]
        blocks = store.blocks_with_properties(predicate_oids)
        if len(blocks) != 1:
            return base
        block = blocks[0]
        derived = base
        for predicate_oid, pattern in members:
            if not isinstance(pattern.object, Variable):
                continue
            var_constraint = constraints.get(pattern.object.name)
            if var_constraint is None or var_constraint.oid_range.is_unbounded():
                continue
            bounds = subject_range_for_property_range(block, predicate_oid, var_constraint.oid_range)
            if bounds is not None:
                derived = bounds if derived is None else derived.intersect(bounds)
        return derived

    # -- shared helpers -------------------------------------------------------------------

    def _join_loose_patterns(self, query: SelectQuery, root: Optional[PhysicalOperator],
                             loose_patterns, constraints,
                             planned_vars: set[str]) -> Optional[PhysicalOperator]:
        for pattern in loose_patterns:
            plan = self._plan_single_pattern(pattern, constraints)
            if plan is None:
                return self._empty_plan(query, "empty (unknown term)")
            pattern_vars = set(pattern.variables())
            if root is None:
                root = plan
            else:
                shared = sorted(planned_vars & pattern_vars)
                root = HashJoinOp(root, plan, join_vars=shared or None)
            planned_vars.update(pattern_vars)
        return root

    def _plan_single_pattern(self, pattern: TriplePattern, constraints) -> Optional[PhysicalOperator]:
        terms = {}
        for slot, node in (("s", pattern.subject), ("p", pattern.predicate), ("o", pattern.object)):
            if isinstance(node, Variable):
                terms[slot] = PatternTerm.variable(node.name)
            else:
                oid = self.context.encoder.term_oid(node)
                if oid is None:
                    return None
                terms[slot] = PatternTerm.constant(oid)
        object_range = None
        if terms["o"].is_variable:
            constraint = constraints.get(terms["o"].var)
            if constraint is not None and not constraint.oid_range.is_unbounded():
                object_range = constraint.oid_range
        return IndexScanOp(TriplePatternPlan(terms["s"], terms["p"], terms["o"]),
                           object_range=object_range)

    def _apply_residual_filters(self, root: PhysicalOperator, residual: List[Comparison]) -> PhysicalOperator:
        for comparison in residual:
            oid = self.context.encoder.term_oid(comparison.value)
            if comparison.op == "=" and oid is not None:
                root = FilterEqualOp(root, comparison.variable, oid)
            elif comparison.op == "!=" and oid is not None:
                root = FilterNotEqualOp(root, comparison.variable, oid)
            # other residual comparisons (e.g. IRI ranges) are not supported;
            # they would have been rejected earlier by the parser/tests.
        return root

    def _apply_solution_modifiers(self, root: PhysicalOperator, query: SelectQuery) -> PhysicalOperator:
        # also re-apply pushed constraints defensively on output variables that
        # may have been produced by more than one pattern
        if query.has_aggregates():
            aggregates = [self._aggregate_spec(agg) for agg in query.aggregates]
            root = AggregateOp(root, group_vars=query.group_by, aggregates=aggregates)
        if query.distinct and not query.has_aggregates():
            root = DistinctOp(ProjectOp(root, query.select_variables))
        if query.order_by:
            keys = [(cond.variable, cond.descending) for cond in query.order_by]
            root = OrderByOp(root, keys)
        if query.limit is not None:
            root = LimitOp(root, query.limit)
        output = query.output_names()
        if output:
            root = ProjectOp(root, output)
        return root

    def _aggregate_spec(self, aggregate: AggregateExpr) -> AggregateSpec:
        return AggregateSpec(func=aggregate.func,
                             expression=_arithmetic_to_expression(aggregate.expression),
                             alias=aggregate.alias)


def _arithmetic_to_expression(expr: ArithmeticExpr) -> Expression:
    def convert(node: object) -> Expression:
        if isinstance(node, str):
            return NumericVar(node)
        if isinstance(node, (int, float)):
            return NumericConst(float(node))
        if isinstance(node, tuple):
            op, left, right = node
            return BinaryOp(op, convert(left), convert(right))
        raise PlanError(f"unsupported arithmetic node {node!r}")

    return convert(expr.node)
