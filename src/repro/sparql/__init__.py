"""SPARQL frontend: parser, CS-aware planner and a convenience engine."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..columnar import QueryCost
from ..engine import BindingTable, ExecutionContext, PhysicalOperator, execute_plan
from .ast import (
    AggregateExpr,
    ArithmeticExpr,
    Comparison,
    DeleteDataOp,
    DeleteWhereOp,
    InsertDataOp,
    OrderCondition,
    SelectQuery,
    TriplePattern,
    UpdateRequest,
    Variable,
)
from .optimizer import PlanCache, QueryOptimizer
from .parser import parse_sparql, parse_update
from .planner import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
    SparqlPlanner,
)

__all__ = [
    "AggregateExpr",
    "ArithmeticExpr",
    "Comparison",
    "DEFAULT_SCHEME",
    "DeleteDataOp",
    "DeleteWhereOp",
    "InsertDataOp",
    "OPTIMIZED_SCHEME",
    "OrderCondition",
    "PlanCache",
    "PlannerOptions",
    "QueryOptimizer",
    "QueryResult",
    "RDFSCAN_SCHEME",
    "SelectQuery",
    "SparqlEngine",
    "SparqlPlanner",
    "TriplePattern",
    "UpdateRequest",
    "Variable",
    "parse_sparql",
    "parse_update",
]


@dataclass
class QueryResult:
    """Result of a SPARQL execution: bindings, cost and the plan used.

    ``plan`` may be shared between results when the plan cache is active
    (repeating a query reuses the cached plan object), so its
    ``actual_rows`` annotations always describe the *most recent* execution,
    not necessarily the one that produced this result's bindings.  Per-run
    accounting that must not be clobbered by concurrent executions lives in
    ``trace`` instead: when the query ran with tracing enabled it holds the
    run's private :class:`repro.obs.QueryTrace` (operator wall times, rows,
    batches), otherwise ``None``.
    """

    bindings: BindingTable
    cost: QueryCost
    plan: PhysicalOperator
    columns: List[str]
    trace: Optional[object] = None

    def rows(self) -> List[tuple]:
        """OID/value rows in column order."""
        arrays = [self.bindings.column(name) for name in self.columns]
        return [tuple(array[i].item() for array in arrays) for i in range(self.bindings.num_rows)]

    def decoded_rows(self, context: ExecutionContext) -> List[tuple]:
        """Rows with OIDs decoded back to Python values (floats stay floats)."""
        out = []
        for row in self.rows():
            decoded = []
            for name, value in zip(self.columns, row):
                if isinstance(value, float):
                    decoded.append(value)
                else:
                    decoded.append(context.decoder.python_value(int(value)))
            out.append(tuple(decoded))
        return out

    def __len__(self) -> int:
        return self.bindings.num_rows


class SparqlEngine:
    """Parse, plan and execute SPARQL against an :class:`ExecutionContext`.

    An optional :class:`PlanCache` makes repeated queries skip parsing and
    planning: the cache key is the whitespace-normalized query text plus the
    planner options.  :class:`~repro.core.RDFStore` wires one cache through
    its engine and clears it when the data changes.
    """

    def __init__(self, context: ExecutionContext,
                 plan_cache: Optional[PlanCache] = None) -> None:
        self.context = context
        self.planner = SparqlPlanner(context)
        self.plan_cache = plan_cache

    def prepare(self, text: str, options: Optional[PlannerOptions] = None) -> Tuple[SelectQuery, PhysicalOperator]:
        """Parse and plan a query without executing it.

        Args:
            text: the SPARQL query text.
            options: plan scheme / optimizer configuration; ``None`` selects
                the default RDFscan/RDFjoin scheme.

        Returns:
            The parsed :class:`SelectQuery` and the physical plan root.
            Both may come from the plan cache when one is attached.

        Raises:
            ParseError: when the text is not in the supported subset.
            PlanError: when the options name an unknown plan scheme.
        """
        options = options or PlannerOptions()
        key = None
        if self.plan_cache is not None:
            key = PlanCache.make_key(text, options)
            cached = self.plan_cache.lookup(key)
            if cached is not None:
                return cached
        query = parse_sparql(text)
        plan = self.planner.plan(query, options)
        if self.plan_cache is not None and key is not None:
            self.plan_cache.insert(key, (query, plan))
        return query, plan

    def query(self, text: str, options: Optional[PlannerOptions] = None,
              tracer=None, active=None) -> QueryResult:
        """Parse, plan and execute a query.

        Args:
            text: the SPARQL query text.
            options: plan scheme / optimizer configuration (see
                :class:`PlannerOptions`).
            tracer: an optional :class:`repro.obs.QueryTrace`; when given,
                the run records per-operator spans into it and the result's
                ``trace`` field carries it back.
            active: an optional :class:`repro.obs.ActiveQuery` registry
                handle; when given, the run accounts per-operator rows into
                it and honours its cooperative-cancellation flag.

        Returns:
            A :class:`QueryResult` with OID bindings, measured cost and the
            executed plan (annotated with estimated and actual row counts).

        Raises:
            ParseError: when the text is not in the supported subset.
            PlanError: when the options name an unknown plan scheme.
            ExecutionError: when the plan requires a store that is not built.
            QueryCancelledError: when ``active`` was cancelled mid-run.
        """
        parsed, plan = self.prepare(text, options)
        if active is not None:
            active.attach_plan(plan)
        context = self.context.with_observation(tracer=tracer, active=active)
        bindings, cost = execute_plan(plan, context)
        return QueryResult(bindings=bindings, cost=cost, plan=plan,
                           columns=parsed.output_names(), trace=tracer)

    def query_parsed(self, query: SelectQuery,
                     options: Optional[PlannerOptions] = None) -> QueryResult:
        """Plan and execute an already-parsed query, bypassing the plan cache.

        Used by the update subsystem (``DELETE WHERE`` evaluates its pattern
        block as a SELECT) and by callers that build
        :class:`SelectQuery` ASTs programmatically.
        """
        plan = self.planner.plan(query, options or PlannerOptions())
        bindings, cost = execute_plan(plan, self.context)
        return QueryResult(bindings=bindings, cost=cost, plan=plan, columns=query.output_names())
