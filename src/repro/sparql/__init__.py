"""SPARQL frontend: parser, CS-aware planner and a convenience engine."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..columnar import QueryCost
from ..engine import BindingTable, ExecutionContext, PhysicalOperator, execute_plan
from .ast import (
    AggregateExpr,
    ArithmeticExpr,
    Comparison,
    OrderCondition,
    SelectQuery,
    TriplePattern,
    Variable,
)
from .parser import parse_sparql
from .planner import DEFAULT_SCHEME, RDFSCAN_SCHEME, PlannerOptions, SparqlPlanner

__all__ = [
    "AggregateExpr",
    "ArithmeticExpr",
    "Comparison",
    "DEFAULT_SCHEME",
    "OrderCondition",
    "PlannerOptions",
    "QueryResult",
    "RDFSCAN_SCHEME",
    "SelectQuery",
    "SparqlEngine",
    "SparqlPlanner",
    "TriplePattern",
    "Variable",
    "parse_sparql",
]


@dataclass
class QueryResult:
    """Result of a SPARQL execution: bindings, cost and the plan used."""

    bindings: BindingTable
    cost: QueryCost
    plan: PhysicalOperator
    columns: List[str]

    def rows(self) -> List[tuple]:
        """OID/value rows in column order."""
        arrays = [self.bindings.column(name) for name in self.columns]
        return [tuple(array[i].item() for array in arrays) for i in range(self.bindings.num_rows)]

    def decoded_rows(self, context: ExecutionContext) -> List[tuple]:
        """Rows with OIDs decoded back to Python values (floats stay floats)."""
        out = []
        for row in self.rows():
            decoded = []
            for name, value in zip(self.columns, row):
                if isinstance(value, float):
                    decoded.append(value)
                else:
                    decoded.append(context.decoder.python_value(int(value)))
            out.append(tuple(decoded))
        return out

    def __len__(self) -> int:
        return self.bindings.num_rows


class SparqlEngine:
    """Parse, plan and execute SPARQL against an :class:`ExecutionContext`."""

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context
        self.planner = SparqlPlanner(context)

    def prepare(self, text: str, options: Optional[PlannerOptions] = None) -> Tuple[SelectQuery, PhysicalOperator]:
        """Parse and plan a query without executing it."""
        query = parse_sparql(text)
        plan = self.planner.plan(query, options)
        return query, plan

    def query(self, text: str, options: Optional[PlannerOptions] = None) -> QueryResult:
        """Parse, plan and execute a query."""
        parsed, plan = self.prepare(text, options)
        bindings, cost = execute_plan(plan, self.context)
        return QueryResult(bindings=bindings, cost=cost, plan=plan, columns=parsed.output_names())
