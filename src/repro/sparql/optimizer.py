"""Cost-based join ordering, plan annotation and the LRU plan cache.

This module is the optimizer layer the seed left on the table: the planner
groups triple patterns into stars, but enumerated them in query order.  The
:class:`QueryOptimizer` replaces that with cardinality-driven ordering:

* per-star cardinalities come from :class:`~repro.columnar.CardinalityEstimator`
  (CS subject counts, property fill factors, column statistics, exact index
  counts);
* star join orders are enumerated with a Selinger-style dynamic program over
  left-deep orders (greedy beyond :data:`QueryOptimizer.DP_STAR_LIMIT` stars);
  each candidate join is priced through the store's
  :class:`~repro.columnar.CostModel` from its estimated input/output
  cardinalities;
* finished plans are *annotated*: every physical operator receives an
  ``estimated_rows`` value so ``EXPLAIN`` can show estimated vs. actual
  cardinalities.  (Hash-join build sides need no plan-time decision: the
  executor's ``hash_join`` builds on whichever input is actually smaller.)

The :class:`PlanCache` keeps recently planned queries keyed on their
normalized text plus planner options, so repeated queries skip parsing and
planning entirely; the store invalidates it whenever data or physical
organization changes.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..columnar import CardinalityEstimator
from ..columnar.stats import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)
from ..engine import (
    AggregateOp,
    ExecutionContext,
    HashJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializedOp,
    NestedLoopIndexJoinOp,
    PhysicalOperator,
    RDFJoinOp,
    RDFScanOp,
    StarPattern,
)
from ..engine.operators import FilterEqualOp, FilterNotEqualOp, FilterRangeOp

_NOT_EQUAL_SELECTIVITY = 0.9


@dataclass
class _StarProfile:
    """Pre-computed estimation facts about one star pattern."""

    index: int
    star: StarPattern
    rows: float
    subjects: float
    variables: FrozenSet[str]
    distincts: Dict[str, float] = field(default_factory=dict)


class QueryOptimizer:
    """Cardinality-driven join ordering and plan annotation.

    One optimizer is created per planner (and therefore shared across the
    queries of one store context), so the estimator's lazily computed column
    statistics amortize across queries.
    """

    DP_STAR_LIMIT = 8
    """Largest star count enumerated exhaustively; larger queries go greedy."""

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context
        self.estimator = CardinalityEstimator(
            schema=context.schema,
            index_store=context.index_store,
            clustered_store=context.clustered_store,
            delta=context.delta,
        )
        self.cost_model = context.cost_model

    # -- star join ordering ------------------------------------------------------

    def order_stars(self, star_patterns: Dict[str, StarPattern]) -> List[StarPattern]:
        """Return the stars in estimated-cheapest join order.

        Orders are left-deep; each extension is priced as one hash join
        through the cost model from the estimated input and output
        cardinalities, and order cost is the sum of those join costs (a
        seconds-weighted ``C_out``).  Cross products are allowed (they stay
        correct — the executor falls back to a cross join when no variable
        is shared) but their multiplicative blow-up prices them out of
        contention naturally.
        """
        stars = [star_patterns[name] for name in sorted(star_patterns)]
        if len(stars) <= 1:
            return stars
        profiles = [self._profile(i, star) for i, star in enumerate(stars)]
        if len(stars) <= self.DP_STAR_LIMIT:
            order = self._dp_order(profiles)
        else:
            order = self._greedy_order(profiles)
        return [stars[i] for i in order]

    def star_cardinality(self, star: StarPattern) -> float:
        """Estimated result rows of one star (delegates to the estimator)."""
        return self.estimator.star_cardinality(star)

    def pattern_cardinality(self, predicate_oid: int, object_oid: Optional[int] = None,
                            object_range=None, subject_range=None) -> float:
        """Estimated rows of one ``?s <p> o`` pattern (for property ordering)."""
        return self.estimator.pattern_cardinality(
            p=predicate_oid, o=object_oid,
            object_range=object_range, subject_range=subject_range)

    def _profile(self, index: int, star: StarPattern) -> _StarProfile:
        rows = max(self.estimator.star_cardinality(star), 0.0)
        subjects = max(self.estimator.star_subject_cardinality(star), 0.0)
        variables = frozenset(star.output_variables())
        distincts: Dict[str, float] = {star.subject_var: max(subjects, 1.0)}
        for prop in star.properties:
            term = prop.object_term
            if term.is_variable and term.var not in distincts:
                distinct = self.estimator.distinct_objects(prop.predicate_oid)
                distincts[term.var] = max(min(max(rows, 1.0), distinct), 1.0)
        return _StarProfile(index=index, star=star, rows=rows, subjects=subjects,
                            variables=variables, distincts=distincts)

    @staticmethod
    def _joined_rows(rows: float, bound_vars: FrozenSet[str], profile: _StarProfile) -> float:
        """Estimated rows after joining ``profile`` into a plan of ``rows``."""
        result = rows * max(profile.rows, 0.0)
        for var in bound_vars & profile.variables:
            result /= profile.distincts.get(var, 1.0)
        return max(result, 0.0)

    def _extension_cost(self, rows: float, new_rows: float, profile: _StarProfile) -> float:
        """Price of joining one more star into the running plan, in seconds."""
        return self.cost_model.estimate_hash_join_seconds(rows, profile.rows, new_rows)

    def _dp_order(self, profiles: List[_StarProfile]) -> List[int]:
        """Selinger-style DP over left-deep orders, minimizing summed join cost."""
        n = len(profiles)
        # state: frozenset of profile indices -> (cost, rows, bound_vars, order)
        best: Dict[FrozenSet[int], Tuple[float, float, FrozenSet[str], Tuple[int, ...]]] = {}
        for p in profiles:
            best[frozenset((p.index,))] = (self.cost_model.estimate_scan_seconds(p.rows),
                                           p.rows, p.variables, (p.index,))
        for _size in range(1, n):
            current = [(key, value) for key, value in best.items() if len(key) == _size]
            for key, (cost, rows, bound_vars, order) in current:
                for p in profiles:
                    if p.index in key:
                        continue
                    new_rows = self._joined_rows(rows, bound_vars, p)
                    new_cost = cost + self._extension_cost(rows, new_rows, p)
                    new_key = key | {p.index}
                    candidate = (new_cost, new_rows, bound_vars | p.variables,
                                 order + (p.index,))
                    existing = best.get(new_key)
                    if existing is None or (candidate[0], candidate[3]) < (existing[0], existing[3]):
                        best[new_key] = candidate
        return list(best[frozenset(range(n))][3])

    def _greedy_order(self, profiles: List[_StarProfile]) -> List[int]:
        """Greedy fallback for wide queries: smallest star first, then the
        connected star whose join is estimated cheapest."""
        remaining = {p.index: p for p in profiles}
        first = min(remaining.values(), key=lambda p: (p.rows, p.index))
        order = [first.index]
        rows = first.rows
        bound_vars = frozenset(first.variables)
        del remaining[first.index]
        while remaining:
            connected = [p for p in remaining.values() if bound_vars & p.variables]
            candidates = connected or list(remaining.values())

            def extension_key(p: _StarProfile):
                new_rows = self._joined_rows(rows, bound_vars, p)
                return (self._extension_cost(rows, new_rows, p), p.index)

            choice = min(candidates, key=extension_key)
            rows = self._joined_rows(rows, bound_vars, choice)
            bound_vars = bound_vars | choice.variables
            order.append(choice.index)
            del remaining[choice.index]
        return order

    # -- plan annotation -----------------------------------------------------------

    def annotate(self, plan: PhysicalOperator) -> float:
        """Set ``estimated_rows`` on every operator of the plan, bottom-up.

        Returns the root estimate.  (Hash-join build sides are not decided
        here: the executor's ``hash_join`` already builds on whichever input
        is actually smaller, which beats any estimate-based choice.)
        """
        child_estimates = [self.annotate(child) for child in plan.children()]
        estimate = self._estimate_operator(plan, child_estimates)
        plan.estimated_rows = estimate
        return estimate

    def _estimate_operator(self, plan: PhysicalOperator,
                           child_estimates: Sequence[float]) -> float:
        est = self.estimator
        if isinstance(plan, MaterializedOp):
            return float(plan.table.num_rows)
        if isinstance(plan, IndexScanOp):
            s, p, o = plan.pattern.subject, plan.pattern.predicate, plan.pattern.object
            return est.pattern_cardinality(
                s=None if s.is_variable else s.oid,
                p=None if p.is_variable else p.oid,
                o=None if o.is_variable else o.oid,
                object_range=plan.object_range,
                subject_range=plan.subject_range,
            )
        if isinstance(plan, RDFScanOp):
            return est.star_cardinality(plan.star)
        if isinstance(plan, RDFJoinOp):
            child = child_estimates[0]
            star_rows = est.star_cardinality(plan.star)
            star_subjects = est.star_subject_cardinality(plan.star)
            return est.join_cardinality(child, star_rows, child, star_subjects)
        if isinstance(plan, NestedLoopIndexJoinOp):
            child = child_estimates[0]
            o = plan.pattern.object
            pattern_rows = est.pattern_cardinality(
                p=plan.pattern.predicate.oid,
                o=None if o.is_variable else o.oid,
                object_range=plan.object_range,
            )
            subjects = max(est.distinct_subjects(plan.pattern.predicate.oid), 1.0)
            return child * pattern_rows / subjects
        if isinstance(plan, HashJoinOp):
            left, right = child_estimates
            return est.join_cardinality(left, right, max(left, 1.0), max(right, 1.0))
        if isinstance(plan, FilterEqualOp):
            return child_estimates[0] * DEFAULT_EQUALITY_SELECTIVITY
        if isinstance(plan, FilterNotEqualOp):
            return child_estimates[0] * _NOT_EQUAL_SELECTIVITY
        if isinstance(plan, FilterRangeOp):
            return child_estimates[0] * DEFAULT_RANGE_SELECTIVITY
        if isinstance(plan, LimitOp):
            return min(child_estimates[0], float(plan.limit))
        if isinstance(plan, AggregateOp):
            if not plan.group_vars:
                return 1.0
            return child_estimates[0]
        if len(child_estimates) == 1:
            return child_estimates[0]  # projection, distinct, ordering, rename…
        if not child_estimates:
            return est.total_triples()
        return max(child_estimates)

    def plan_cost_seconds(self, plan: PhysicalOperator) -> float:
        """Rough expected cost of an annotated plan in simulated seconds."""
        children = plan.children()
        total = sum(self.plan_cost_seconds(child) for child in children)
        rows = plan.estimated_rows or 0.0
        if isinstance(plan, (HashJoinOp, RDFJoinOp)):
            inputs = [child.estimated_rows or 0.0 for child in children]
            left = inputs[0] if inputs else 0.0
            right = inputs[1] if len(inputs) > 1 else rows
            total += self.cost_model.estimate_hash_join_seconds(left, right, rows)
        elif isinstance(plan, NestedLoopIndexJoinOp):
            child_rows = children[0].estimated_rows or 0.0
            total += self.cost_model.estimate_probe_seconds(child_rows, rows)
        else:
            total += self.cost_model.estimate_scan_seconds(rows)
        return total


class PlanCache:
    """LRU cache of prepared (parsed + planned) queries.

    Keys are built from the *normalized* query text (whitespace collapsed
    outside quoted literals, so reformatting a query still hits while
    ``"a b"`` and ``"a  b"`` stay distinct) plus the planner options, which
    are part of plan identity: the same text planned under ``default`` and
    ``optimized`` schemes yields different physical plans.

    The cache stores ``(SelectQuery, PhysicalOperator)`` pairs — a hit skips
    parsing *and* planning.  Plans carry no per-run result state — executions
    are serialized per plan instance, and per-run row/time accounting lives
    on each execution's private :class:`repro.obs.QueryTrace` — so
    re-executing a cached plan, even from concurrent snapshots, is safe.
    The only mutable annotation, ``plan.actual_rows``, is an interactive
    ``EXPLAIN ANALYZE`` convenience reflecting the *most recent* run; do not
    read it for a specific execution's row count (use the result's length
    or its trace).  The owning store clears the cache whenever data is
    loaded or the physical organization is rebuilt.

    :meth:`clear` resets the per-organization counters; the ``lifetime_*``
    counters survive clears, so monitoring sees cache effectiveness across
    the whole store lifetime rather than only since the last write.
    """

    _QUOTED = re.compile(r'"(?:[^"\\]|\\.)*"')

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.RLock()
        """Concurrent readers share one cache while the writer clears it on
        every update; all entry/counter access is serialized."""
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lifetime_hits = 0
        self.lifetime_misses = 0
        self.lifetime_evictions = 0
        self.generation = 0
        """Monotonic invalidation counter: bumped on every :meth:`clear`.

        Cached plans are only valid for one physical organization of the
        store, so the generation identifies *which* organization the cache
        currently serves.  Snapshots persist it and ``RDFStore.open``
        restores it, making an opened store's optimizer state
        indistinguishable from the store that was saved."""

    @staticmethod
    def make_key(text: str, options) -> tuple:
        """Cache key: normalized query text plus planner options.

        Whitespace is collapsed only *outside* quoted string literals —
        whitespace inside a literal is data and must keep distinct queries
        distinct.
        """
        parts = []
        last = 0
        for match in PlanCache._QUOTED.finditer(text):
            parts.append(" ".join(text[last:match.start()].split()))
            parts.append(match.group(0))
            last = match.end()
        parts.append(" ".join(text[last:].split()))
        return (" ".join(part for part in parts if part), options)

    def lookup(self, key: tuple):
        """Return the cached entry (refreshing recency) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self.lifetime_misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.lifetime_hits += 1
            return entry

    def insert(self, key: tuple, value) -> None:
        """Insert an entry, evicting the least recently used beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.lifetime_evictions += 1

    def clear(self) -> None:
        """Drop every entry, reset the hit/miss counters, bump the generation."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.generation += 1

    def stats(self) -> Dict[str, int]:
        """Counters for monitoring: size, capacity, hits, misses, evictions
        (since the last clear) plus their clear-surviving ``lifetime_*``
        variants and the invalidation generation."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "lifetime_hits": self.lifetime_hits,
                "lifetime_misses": self.lifetime_misses,
                "lifetime_evictions": self.lifetime_evictions,
                "generation": self.generation,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
