"""Recursive-descent parser for the supported SPARQL subset.

Grammar (informally)::

    query       := prologue SELECT [DISTINCT] selection WHERE '{' group '}' modifiers
    prologue    := (PREFIX name: <iri>)*
    selection   := '*' | (var | '(' FUNC '(' arith ')' AS var ')')+
    group       := (triples '.' | FILTER '(' condition ')')*
    triples     := term term term
    condition   := comparison ('&&' comparison)*
    comparison  := (var op constant) | (constant op var)
    modifiers   := [GROUP BY var+] [ORDER BY ordercond+] [LIMIT n]

Updates (see :func:`parse_update`)::

    update      := prologue statement (';' prologue statement)* [';']
    statement   := INSERT DATA '{' triples* '}'
                 | DELETE DATA '{' triples* '}'
                 | DELETE WHERE '{' triples* '}'

Terms: ``<iri>``, ``prefix:local``, ``?var``, ``"literal"`` (with optional
``@lang`` / ``^^datatype``), integers, decimals, booleans and the keyword
``a`` for ``rdf:type``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..errors import ParseError
from ..model import IRI, Literal, Triple
from ..model.terms import RDF_TYPE, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER, unescape_literal
from .ast import (
    AggregateExpr,
    ArithmeticExpr,
    Comparison,
    DeleteDataOp,
    DeleteWhereOp,
    InsertDataOp,
    OrderCondition,
    SelectQuery,
    TriplePattern,
    UpdateRequest,
    Variable,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRI><[^<>\s]*>)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z0-9_.-]*)
  | (?P<KEYWORD>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<DTSEP>\^\^)
  | (?P<LANG>@[A-Za-z-]+)
  | (?P<OP><=|>=|!=|&&|\|\||[=<>])
  | (?P<PUNCT>[{}().;,*/+-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "where", "filter", "prefix", "distinct", "group", "by",
    "order", "asc", "desc", "limit", "as", "a", "true", "false",
    "sum", "count", "avg", "min", "max", "optional", "base",
    "insert", "delete", "data",
}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            line = text.count("\n", 0, position) + 1
            raise ParseError(f"unexpected character {text[position]!r}", line=line)
        kind = match.lastgroup or ""
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        tokens.append(_Token(kind, value, match.start()))
    return tokens


def parse_sparql(text: str) -> SelectQuery:
    """Parse a SPARQL SELECT query (subset) into a :class:`SelectQuery`."""
    return _Parser(text).parse_query()


def parse_update(text: str) -> UpdateRequest:
    """Parse a SPARQL Update request (subset) into an :class:`UpdateRequest`.

    The subset covers ``INSERT DATA``, ``DELETE DATA`` and ``DELETE WHERE``,
    optionally chained with ``;``.  ``INSERT DATA`` / ``DELETE DATA`` blocks
    must be ground (no variables); ``DELETE WHERE`` accepts triple patterns
    with variables in any position but no FILTERs.

    Raises:
        ParseError: when the text is not in the supported update subset.
    """
    return _Parser(text).parse_update_request()


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}

    # -- token helpers ----------------------------------------------------------

    def _error(self, message: str) -> ParseError:
        position = self.tokens[self.index].position if self.index < len(self.tokens) else len(self.text)
        line = self.text.count("\n", 0, position) + 1
        return ParseError(message, line=line)

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of query")
        self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "KEYWORD" and token.text.lower() == word:
            self.index += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self._error(f"expected keyword {word.upper()}")

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token is not None and token.kind in ("PUNCT", "OP") and token.text == char:
            self.index += 1
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self._error(f"expected {char!r}")

    # -- grammar ------------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        query = SelectQuery()
        self._parse_prologue()
        self.expect_keyword("select")
        query.distinct = self.accept_keyword("distinct")
        self._parse_selection(query)
        self.expect_keyword("where")
        self.expect_punct("{")
        self._parse_group(query)
        self.expect_punct("}")
        self._parse_modifiers(query)
        if self.peek() is not None:
            raise self._error(f"unexpected trailing token {self.peek().text!r}")
        if not query.select_variables and not query.aggregates:
            query.select_variables = query.all_variables()
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self.accept_keyword("prefix"):
                name_token = self.next()
                if name_token.kind != "PNAME" or not name_token.text.endswith(":"):
                    # allow "PREFIX ex :" style (prefix and colon separated)
                    raise self._error("PREFIX expects 'name:' followed by an IRI")
                prefix = name_token.text[:-1]
                iri_token = self.next()
                if iri_token.kind != "IRI":
                    raise self._error("PREFIX expects an IRI in angle brackets")
                self.prefixes[prefix] = iri_token.text[1:-1]
            elif self.accept_keyword("base"):
                iri_token = self.next()
                if iri_token.kind != "IRI":
                    raise self._error("BASE expects an IRI in angle brackets")
                self.prefixes[""] = iri_token.text[1:-1]
            else:
                return

    # -- updates ---------------------------------------------------------------

    def parse_update_request(self) -> UpdateRequest:
        request = UpdateRequest()
        self._parse_prologue()
        while True:
            request.operations.append(self._parse_update_statement())
            if self.accept_punct(";"):
                before_prologue = self.index
                self._parse_prologue()
                if self.peek() is None:
                    if self.index != before_prologue:
                        # a prologue with no statement after it signals a
                        # truncated request — fail loudly, don't drop it
                        raise self._error("expected an update statement after the prologue")
                    break  # trailing ';' after the last statement
                continue
            break
        if self.peek() is not None:
            raise self._error(f"unexpected trailing token {self.peek().text!r}")
        return request

    def _parse_update_statement(self):
        if self.accept_keyword("insert"):
            self.expect_keyword("data")
            return InsertDataOp(self._parse_ground_block("INSERT DATA"))
        if self.accept_keyword("delete"):
            if self.accept_keyword("data"):
                return DeleteDataOp(self._parse_ground_block("DELETE DATA"))
            self.expect_keyword("where")
            return DeleteWhereOp(tuple(self._parse_pattern_block(allow_filters=False)))
        raise self._error("expected INSERT DATA, DELETE DATA or DELETE WHERE")

    def _parse_pattern_block(self, allow_filters: bool) -> List[TriplePattern]:
        """Parse a ``{ ... }`` block of triple patterns (used by updates)."""
        collector = SelectQuery()
        self.expect_punct("{")
        while True:
            token = self.peek()
            if token is None:
                raise self._error("unterminated block (missing '}')")
            if token.kind == "PUNCT" and token.text == "}":
                break
            if token.kind == "KEYWORD" and token.text.lower() == "filter":
                if not allow_filters:
                    raise self._error("FILTER is not supported in this update form")
                self.next()
                self._parse_filter(collector)
                self.accept_punct(".")
                continue
            self._parse_triple_block(collector)
        self.expect_punct("}")
        return collector.patterns

    def _parse_ground_block(self, form: str) -> tuple:
        patterns = self._parse_pattern_block(allow_filters=False)
        triples = []
        for pattern in patterns:
            if pattern.variables():
                raise self._error(f"{form} requires ground triples (no variables)")
            triples.append(Triple(pattern.subject, pattern.predicate, pattern.object))
        return tuple(triples)

    def _parse_selection(self, query: SelectQuery) -> None:
        if self.accept_punct("*"):
            return
        saw_item = False
        while True:
            token = self.peek()
            if token is None:
                break
            if token.kind == "VAR":
                query.select_variables.append(self.next().text[1:])
                saw_item = True
                continue
            if token.kind == "PUNCT" and token.text == "(":
                query.aggregates.append(self._parse_aggregate())
                saw_item = True
                continue
            break
        if not saw_item:
            raise self._error("SELECT needs at least one variable, aggregate or '*'")

    def _parse_aggregate(self) -> AggregateExpr:
        self.expect_punct("(")
        func_token = self.next()
        if func_token.kind != "KEYWORD" or func_token.text.lower() not in ("sum", "count", "avg", "min", "max"):
            raise self._error("expected an aggregate function (SUM/COUNT/AVG/MIN/MAX)")
        func = func_token.text.lower()
        self.expect_punct("(")
        expression = self._parse_arithmetic()
        self.expect_punct(")")
        self.expect_keyword("as")
        alias_token = self.next()
        if alias_token.kind != "VAR":
            raise self._error("expected ?alias after AS")
        self.expect_punct(")")
        return AggregateExpr(func=func, expression=ArithmeticExpr(expression), alias=alias_token.text[1:])

    def _parse_arithmetic(self):
        node = self._parse_term_arith()
        while True:
            token = self.peek()
            if token is not None and token.kind in ("PUNCT", "OP") and token.text in ("+", "-", "*", "/"):
                op = self.next().text
                right = self._parse_term_arith()
                node = (op, node, right)
            else:
                return node

    def _parse_term_arith(self):
        token = self.peek()
        if token is None:
            raise self._error("unexpected end of arithmetic expression")
        if token.kind == "PUNCT" and token.text == "(":
            self.next()
            inner = self._parse_arithmetic()
            self.expect_punct(")")
            return inner
        if token.kind == "VAR":
            return self.next().text[1:]
        if token.kind == "NUMBER":
            return float(self.next().text)
        raise self._error(f"unexpected token {token.text!r} in arithmetic expression")

    def _parse_group(self, query: SelectQuery) -> None:
        while True:
            token = self.peek()
            if token is None:
                raise self._error("unterminated WHERE group (missing '}')")
            if token.kind == "PUNCT" and token.text == "}":
                return
            if token.kind == "KEYWORD" and token.text.lower() == "filter":
                self.next()
                self._parse_filter(query)
                self.accept_punct(".")
                continue
            self._parse_triple_block(query)

    def _parse_triple_block(self, query: SelectQuery) -> None:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                query.patterns.append(TriplePattern(subject, predicate, obj))
                if self.accept_punct(","):
                    continue
                break
            if self.accept_punct(";"):
                token = self.peek()
                if token is not None and token.kind == "PUNCT" and token.text in (".", "}"):
                    break
                continue
            break
        self.accept_punct(".")

    def _parse_filter(self, query: SelectQuery) -> None:
        self.expect_punct("(")
        while True:
            query.filters.append(self._parse_comparison())
            token = self.peek()
            if token is not None and token.kind == "OP" and token.text == "&&":
                self.next()
                continue
            break
        self.expect_punct(")")

    def _parse_comparison(self) -> Comparison:
        left = self.peek()
        if left is None:
            raise self._error("unexpected end of FILTER")
        if left.kind == "VAR":
            variable = self.next().text[1:]
            op = self._parse_comparison_op()
            value = self._parse_constant()
            return Comparison(variable=variable, op=op, value=value)
        value = self._parse_constant()
        op = self._parse_comparison_op()
        var_token = self.next()
        if var_token.kind != "VAR":
            raise self._error("FILTER comparison needs a variable on one side")
        return Comparison(variable=var_token.text[1:], op=_flip_op(op), value=value)

    def _parse_comparison_op(self) -> str:
        token = self.next()
        if token.kind != "OP" or token.text not in ("=", "!=", "<", "<=", ">", ">="):
            raise self._error(f"expected a comparison operator, found {token.text!r}")
        return token.text

    def _parse_modifiers(self, query: SelectQuery) -> None:
        while True:
            if self.accept_keyword("group"):
                self.expect_keyword("by")
                while self.peek() is not None and self.peek().kind == "VAR":
                    query.group_by.append(self.next().text[1:])
            elif self.accept_keyword("order"):
                self.expect_keyword("by")
                while True:
                    token = self.peek()
                    if token is None:
                        break
                    if token.kind == "KEYWORD" and token.text.lower() in ("asc", "desc"):
                        descending = self.next().text.lower() == "desc"
                        self.expect_punct("(")
                        var_token = self.next()
                        if var_token.kind != "VAR":
                            raise self._error("ORDER BY expects a variable")
                        self.expect_punct(")")
                        query.order_by.append(OrderCondition(var_token.text[1:], descending))
                    elif token.kind == "VAR":
                        query.order_by.append(OrderCondition(self.next().text[1:], False))
                    else:
                        break
            elif self.accept_keyword("limit"):
                token = self.next()
                if token.kind != "NUMBER":
                    raise self._error("LIMIT expects a number")
                query.limit = int(float(token.text))
            else:
                return

    # -- terms ---------------------------------------------------------------------

    def _parse_term(self, position: str):
        token = self.next()
        if token.kind == "VAR":
            return Variable(token.text[1:])
        if token.kind == "IRI":
            return IRI(token.text[1:-1])
        if token.kind == "PNAME":
            prefix, _, local = token.text.partition(":")
            if prefix not in self.prefixes:
                raise self._error(f"undefined prefix {prefix!r}")
            return IRI(self.prefixes[prefix] + local)
        if token.kind == "KEYWORD" and token.text == "a" and position == "predicate":
            return IRI(RDF_TYPE)
        if position != "object" and token.kind in ("STRING", "NUMBER"):
            raise self._error(f"literal not allowed in {position} position")
        if token.kind == "STRING":
            return self._finish_literal(token)
        if token.kind == "NUMBER":
            datatype = XSD_DECIMAL if "." in token.text else XSD_INTEGER
            return Literal(token.text, datatype=datatype)
        if token.kind == "KEYWORD" and token.text.lower() in ("true", "false"):
            return Literal(token.text.lower(), datatype=XSD_BOOLEAN)
        raise self._error(f"unexpected token {token.text!r} in {position} position")

    def _parse_constant(self):
        token = self.peek()
        if token is None:
            raise self._error("expected a constant")
        if token.kind in ("STRING", "NUMBER", "IRI", "PNAME") or (
                token.kind == "KEYWORD" and token.text.lower() in ("true", "false")):
            return self._parse_term(position="object")
        raise self._error(f"expected a constant, found {token.text!r}")

    def _finish_literal(self, token: _Token) -> Literal:
        lexical = unescape_literal(token.text[1:-1])
        nxt = self.peek()
        if nxt is not None and nxt.kind == "LANG":
            self.next()
            return Literal(lexical, language=nxt.text[1:])
        if nxt is not None and nxt.kind == "DTSEP":
            self.next()
            dt_token = self.next()
            if dt_token.kind == "IRI":
                return Literal(lexical, datatype=dt_token.text[1:-1])
            if dt_token.kind == "PNAME":
                prefix, _, local = dt_token.text.partition(":")
                if prefix not in self.prefixes:
                    raise self._error(f"undefined prefix {prefix!r}")
                return Literal(lexical, datatype=self.prefixes[prefix] + local)
            raise self._error("expected a datatype IRI after '^^'")
        return Literal(lexical)


def _flip_op(op: str) -> str:
    flips = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
    return flips[op]
