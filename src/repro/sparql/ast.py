"""Abstract syntax tree of the supported SPARQL subset.

The subset covers what the paper's workload needs (and a bit more): basic
graph patterns, FILTER with comparison conjunctions, SELECT with variables
or aggregate expressions, DISTINCT, GROUP BY, ORDER BY and LIMIT.

The write path adds the SPARQL Update subset used by
:meth:`repro.core.RDFStore.update`: ``INSERT DATA``, ``DELETE DATA`` and
``DELETE WHERE`` statements, optionally chained with ``;`` into one
:class:`UpdateRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..model import Term, Triple


@dataclass(frozen=True)
class Variable:
    """A SPARQL variable, e.g. ``?price``."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"?{self.name}"


PatternNode = Union[Variable, Term]
"""A slot in a triple pattern: a variable or a concrete RDF term."""


@dataclass(frozen=True)
class TriplePattern:
    """One ``subject predicate object`` pattern inside a WHERE clause."""

    subject: PatternNode
    predicate: PatternNode
    object: PatternNode

    def variables(self) -> List[str]:
        out = []
        for node in (self.subject, self.predicate, self.object):
            if isinstance(node, Variable):
                out.append(node.name)
        return out


@dataclass(frozen=True)
class Comparison:
    """A FILTER comparison ``?var <op> constant`` (or ``constant <op> ?var``).

    ``op`` is one of ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
    """

    variable: str
    op: str
    value: Term

    _OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")


@dataclass(frozen=True)
class ArithmeticExpr:
    """Arithmetic over variables/constants inside an aggregate, e.g.
    ``?price * (1 - ?discount)``.  Represented as a nested structure of
    ``('op', left, right)`` tuples, variables (str) and numeric constants."""

    node: object

    def variables(self) -> List[str]:
        out: List[str] = []

        def walk(node: object) -> None:
            if isinstance(node, str):
                out.append(node)
            elif isinstance(node, tuple):
                _op, left, right = node
                walk(left)
                walk(right)

        walk(self.node)
        return out


@dataclass(frozen=True)
class AggregateExpr:
    """``(FUNC(expression) AS ?alias)`` in the SELECT clause."""

    func: str
    expression: ArithmeticExpr
    alias: str


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY key: a variable name plus direction."""

    variable: str
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    select_variables: List[str] = field(default_factory=list)
    aggregates: List[AggregateExpr] = field(default_factory=list)
    patterns: List[TriplePattern] = field(default_factory=list)
    filters: List[Comparison] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    def has_aggregates(self) -> bool:
        return bool(self.aggregates)

    def all_variables(self) -> List[str]:
        seen: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variables():
                if name not in seen:
                    seen.append(name)
        return seen

    def output_names(self) -> List[str]:
        """The result column names in SELECT order."""
        names = list(self.select_variables)
        names.extend(agg.alias for agg in self.aggregates)
        return names


# -- SPARQL Update ------------------------------------------------------------


@dataclass(frozen=True)
class InsertDataOp:
    """``INSERT DATA { ... }``: add a set of ground triples."""

    triples: Tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteDataOp:
    """``DELETE DATA { ... }``: remove a set of ground triples."""

    triples: Tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteWhereOp:
    """``DELETE WHERE { ... }``: remove every instantiation of the pattern.

    The pattern block doubles as the deletion template, exactly as in the
    SPARQL 1.1 Update shorthand; FILTERs are not part of the subset.
    """

    patterns: Tuple[TriplePattern, ...]

    def all_variables(self) -> List[str]:
        seen: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variables():
                if name not in seen:
                    seen.append(name)
        return seen


UpdateOperation = Union[InsertDataOp, DeleteDataOp, DeleteWhereOp]
"""One statement of an update request."""


@dataclass
class UpdateRequest:
    """A parsed SPARQL Update request: one or more ``;``-chained statements."""

    operations: List[UpdateOperation] = field(default_factory=list)
