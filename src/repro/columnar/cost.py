"""Cost accounting for the simulated column store.

MonetDB runs at memory/disk speed in C; a Python reproduction cannot compare
absolute wall-clock times meaningfully.  Instead, every storage access in
this library is routed through a :class:`CostTracker`, which counts

* ``page_reads`` — buffer-pool misses (simulated disk page fetches),
* ``page_hits`` — buffer-pool hits,
* ``tuples_scanned`` — values materialized by scans,
* ``tuples_probed`` — index/hash probe operations,
* ``join_operations`` — physical join operators executed,
* ``operator_invocations`` — physical operators executed.

A :class:`CostModel` then converts the counters to a *simulated elapsed
time*, which is what the Table I reproduction reports alongside wall-clock.
The default constants approximate a 2013-era machine: a cold random disk
page read at ~0.2 ms, a hot in-memory page touch at ~0.5 µs and ~10 ns per
tuple of CPU work.  The absolute values are not the point — the *ratios*
between configurations are.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostTracker:
    """Mutable counters for one query (or load) execution."""

    page_reads: int = 0
    page_hits: int = 0
    tuples_scanned: int = 0
    tuples_probed: int = 0
    join_operations: int = 0
    operator_invocations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.page_reads = 0
        self.page_hits = 0
        self.tuples_scanned = 0
        self.tuples_probed = 0
        self.join_operations = 0
        self.operator_invocations = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "page_reads": self.page_reads,
            "page_hits": self.page_hits,
            "tuples_scanned": self.tuples_scanned,
            "tuples_probed": self.tuples_probed,
            "join_operations": self.join_operations,
            "operator_invocations": self.operator_invocations,
        }

    def merge(self, other: "CostTracker") -> None:
        """Accumulate another tracker's counters into this one."""
        self.page_reads += other.page_reads
        self.page_hits += other.page_hits
        self.tuples_scanned += other.tuples_scanned
        self.tuples_probed += other.tuples_probed
        self.join_operations += other.join_operations
        self.operator_invocations += other.operator_invocations

    def diff(self, baseline: dict[str, int]) -> dict[str, int]:
        """Return counters minus a previously taken :meth:`snapshot`."""
        current = self.snapshot()
        return {key: current[key] - baseline.get(key, 0) for key in current}


@dataclass(frozen=True)
class CostModel:
    """Converts :class:`CostTracker` counters into simulated seconds.

    The same constants double as the *planning-time* cost model: the
    ``estimate_*`` methods price prospective operators from estimated row
    counts, so the join-order optimizer compares plan alternatives in the
    same currency the executor reports after the fact.
    """

    page_read_seconds: float = 2.0e-4
    page_hit_seconds: float = 5.0e-7
    tuple_scan_seconds: float = 1.0e-8
    tuple_probe_seconds: float = 8.0e-8
    join_overhead_seconds: float = 5.0e-6
    operator_overhead_seconds: float = 2.0e-6

    def simulated_seconds(self, counters: dict[str, int]) -> float:
        """Return the simulated elapsed time for a counter dictionary."""
        return (
            counters.get("page_reads", 0) * self.page_read_seconds
            + counters.get("page_hits", 0) * self.page_hit_seconds
            + counters.get("tuples_scanned", 0) * self.tuple_scan_seconds
            + counters.get("tuples_probed", 0) * self.tuple_probe_seconds
            + counters.get("join_operations", 0) * self.join_overhead_seconds
            + counters.get("operator_invocations", 0) * self.operator_overhead_seconds
        )

    # -- planning-time estimates (expected seconds from estimated rows) ----------

    def estimate_scan_seconds(self, rows: float) -> float:
        """Expected cost of materializing ``rows`` tuples with one scan."""
        return self.operator_overhead_seconds + max(rows, 0.0) * self.tuple_scan_seconds

    def estimate_probe_seconds(self, probes: float, matched_rows: float) -> float:
        """Expected cost of an index-probe join: probes plus materialization."""
        return (self.join_overhead_seconds
                + max(probes, 0.0) * self.tuple_probe_seconds
                + max(matched_rows, 0.0) * self.tuple_scan_seconds)

    def estimate_hash_join_seconds(self, left_rows: float, right_rows: float,
                                   output_rows: float) -> float:
        """Expected cost of hashing both inputs and emitting the output."""
        return (self.join_overhead_seconds
                + (max(left_rows, 0.0) + max(right_rows, 0.0)) * self.tuple_probe_seconds
                + max(output_rows, 0.0) * self.tuple_scan_seconds)


@dataclass
class QueryCost:
    """Bundle of measured wall-clock time, counters and simulated time."""

    wall_seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    simulated_seconds: float = 0.0

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"wall={self.wall_seconds * 1e3:.2f}ms sim={self.simulated_seconds * 1e3:.2f}ms "
            f"reads={self.counters.get('page_reads', 0)} hits={self.counters.get('page_hits', 0)} "
            f"scanned={self.counters.get('tuples_scanned', 0)} joins={self.counters.get('join_operations', 0)}"
        )
