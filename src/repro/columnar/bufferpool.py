"""A page-granular buffer-pool simulator.

The paper's Table I distinguishes *Cold* runs (OS page cache empty, every
page touched comes from disk) from *Hot* runs (everything cached).  To
reproduce the distinction in a hardware-independent way, every column in
this library is divided into fixed-size logical pages and every access goes
through a :class:`BufferPool`:

* a **miss** increments ``page_reads`` on the active :class:`CostTracker`
  and brings the page into an LRU-managed cache,
* a **hit** increments ``page_hits``.

``reset_cold()`` empties the cache (a cold run); ``warm(...)`` pre-loads the
pages a dataset occupies (a hot run).  Locality now has the same observable
consequence it has on real hardware: a query that touches a few contiguous
pages causes few misses, one that hops all over an index causes many.

The pool is shared by every structure of a store — including the frozen
delta views MVCC read snapshots scan from other threads — so its internal
state is guarded by a reentrant lock.  Page-level counters stay exact under
concurrency; the per-query *attribution* of counters (``execute_plan``'s
tracker diff) is best-effort when queries overlap, exactly like ``BUFFERS``
accounting in a real multi-user database.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable

from .cost import CostTracker

DEFAULT_PAGE_SIZE = 1024
"""Number of column values per logical page (8 KiB of 8-byte OIDs)."""

VALUE_BYTES = 8
"""Bytes per column value (int64 OIDs), used for memory accounting."""


class BufferPool:
    """LRU cache of ``(segment_id, page_number)`` pages with cost accounting."""

    def __init__(self, capacity_pages: int = 1 << 20, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._lock = threading.RLock()
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.tracker = CostTracker()
        self.evictions = 0
        """Lifetime count of pages evicted by LRU capacity pressure."""
        self._lazy_registered: Dict[str, int] = {}
        self._lazy_materialized: Dict[str, int] = {}
        self.lazy_values_loaded = 0
        """Total column values materialized from disk by lazy segments."""

    # -- cache state ---------------------------------------------------------

    def reset_cold(self) -> None:
        """Empty the cache, simulating a cold start."""
        with self._lock:
            self._pages.clear()

    def warm(self, segment_id: str, num_values: int) -> None:
        """Pre-load every page of a segment (simulating a hot cache)."""
        with self._lock:
            for page in range(self.pages_for(num_values)):
                self._insert((segment_id, page))

    def cached_page_count(self) -> int:
        """Number of pages currently cached."""
        with self._lock:
            return len(self._pages)

    def contains(self, segment_id: str, page: int) -> bool:
        """Whether a specific page is cached (does not touch LRU order)."""
        with self._lock:
            return (segment_id, page) in self._pages

    def drop_segments(self, prefix: str) -> int:
        """Evict every cached page of segments whose id starts with ``prefix``.

        Used when a structure is rebuilt under new segment names (e.g. the
        delta store's per-version index): superseded pages would otherwise
        linger, counting toward capacity and skewing cold/hot accounting.
        """
        with self._lock:
            doomed = [key for key in self._pages if key[0].startswith(prefix)]
            for key in doomed:
                del self._pages[key]
            return len(doomed)

    def segments_cached(self, prefix: str) -> int:
        """Number of cached pages whose segment id starts with ``prefix``.

        Observability for snapshot-pinned delta versions: their index pages
        must stay resident until the last snapshot releases them.
        """
        with self._lock:
            return sum(1 for key in self._pages if key[0].startswith(prefix))

    def pages_for(self, num_values: int) -> int:
        """Number of pages needed to hold ``num_values`` values."""
        if num_values <= 0:
            return 0
        return (num_values + self.page_size - 1) // self.page_size

    # -- lazy-segment observability -------------------------------------------

    def register_lazy_segment(self, segment_id: str, num_values: int) -> None:
        """Announce an on-disk segment that will materialize on first scan.

        Registration is pure bookkeeping (no pages are touched); it lets
        :meth:`stats` report how much of a lazily opened database is still
        on disk versus materialized in memory.
        """
        with self._lock:
            self._lazy_registered[segment_id] = int(num_values)

    def unregister_lazy_segment(self, segment_id: str) -> None:
        """Forget one lazy segment (its structure was replaced or dropped)."""
        with self._lock:
            self._lazy_registered.pop(segment_id, None)
            self._lazy_materialized.pop(segment_id, None)

    def reset_lazy_registry(self) -> None:
        """Forget every lazy segment.

        Called when the physical structures are rebuilt in memory (compaction,
        re-clustering, reload): the on-disk segments no longer back anything,
        and keeping them registered would make ``stats()`` report stale
        ``lazy_values_pending`` forever.  ``lazy_values_loaded`` is a lifetime
        counter and survives.
        """
        with self._lock:
            self._lazy_registered.clear()
            self._lazy_materialized.clear()

    def note_materialized(self, segment_id: str, num_values: int) -> None:
        """Record that a lazy segment's values were loaded from disk.

        Deliberately *not* counted as ``page_reads``: the cold/hot cost
        simulation already charges page misses when the materialized values
        are scanned, and double-charging would skew Table-I-style
        comparisons between a freshly built and a reopened store.
        """
        with self._lock:
            if segment_id not in self._lazy_materialized:
                self._lazy_materialized[segment_id] = int(num_values)
                self.lazy_values_loaded += int(num_values)

    def stats(self) -> Dict[str, int]:
        """Memory accounting and eviction/lazy-loading counters.

        Returns a plain dictionary so callers (``RDFStore.explain``, the
        persistence benchmark, monitoring) can render it without importing
        pool internals.
        """
        with self._lock:
            return self._stats_locked()

    def snapshot_delta(self, mark: Dict[str, int]) -> Dict[str, int]:
        """Stats *since* ``mark`` (a dict previously returned by :meth:`stats`).

        The monotonic counters — ``evictions``, ``page_reads``,
        ``page_hits``, ``lazy_values_loaded`` — come back as deltas, so one
        query's buffer activity can be attributed instead of reporting
        process-lifetime numbers; everything else (capacities, cached pages,
        lazy-segment gauges) stays point-in-time.  Attribution is
        best-effort under concurrent queries, like ``BUFFERS`` accounting in
        any multi-user database.
        """
        current = self.stats()
        for key in ("evictions", "page_reads", "page_hits", "lazy_values_loaded"):
            current[key] = current[key] - mark.get(key, 0)
        return current

    def _stats_locked(self) -> Dict[str, int]:
        cached = len(self._pages)
        return {
            "capacity_pages": self.capacity_pages,
            "page_size": self.page_size,
            "cached_pages": cached,
            "resident_bytes": cached * self.page_size * VALUE_BYTES,
            "capacity_bytes": self.capacity_pages * self.page_size * VALUE_BYTES,
            "evictions": self.evictions,
            "page_reads": self.tracker.page_reads,
            "page_hits": self.tracker.page_hits,
            "lazy_segments_registered": len(self._lazy_registered),
            "lazy_segments_materialized": len(self._lazy_materialized),
            "lazy_values_pending": sum(
                count for segment, count in self._lazy_registered.items()
                if segment not in self._lazy_materialized),
            "lazy_values_loaded": self.lazy_values_loaded,
        }

    # -- access --------------------------------------------------------------

    def access_value(self, segment_id: str, index: int) -> bool:
        """Touch the page containing value ``index``; return True on a hit."""
        return self.access_page(segment_id, index // self.page_size)

    def access_page(self, segment_id: str, page: int) -> bool:
        """Touch one page; return True on a hit, False on a miss."""
        key = (segment_id, page)
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                self.tracker.page_hits += 1
                return True
            self.tracker.page_reads += 1
            self._insert(key)
            return False

    def access_range(self, segment_id: str, start: int, stop: int) -> int:
        """Touch every page overlapping value indexes ``[start, stop)``.

        Returns the number of misses.  ``stop`` is exclusive; an empty range
        touches nothing.
        """
        if stop <= start:
            return 0
        first_page = start // self.page_size
        last_page = (stop - 1) // self.page_size
        misses = 0
        for page in range(first_page, last_page + 1):
            if not self.access_page(segment_id, page):
                misses += 1
        return misses

    def access_pages(self, segment_id: str, pages: Iterable[int]) -> int:
        """Touch an explicit set of pages; return the number of misses."""
        misses = 0
        for page in pages:
            if not self.access_page(segment_id, page):
                misses += 1
        return misses

    # -- internals -----------------------------------------------------------

    def _insert(self, key: tuple[str, int]) -> None:
        self._pages[key] = None
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
