"""A page-granular buffer-pool simulator.

The paper's Table I distinguishes *Cold* runs (OS page cache empty, every
page touched comes from disk) from *Hot* runs (everything cached).  To
reproduce the distinction in a hardware-independent way, every column in
this library is divided into fixed-size logical pages and every access goes
through a :class:`BufferPool`:

* a **miss** increments ``page_reads`` on the active :class:`CostTracker`
  and brings the page into an LRU-managed cache,
* a **hit** increments ``page_hits``.

``reset_cold()`` empties the cache (a cold run); ``warm(...)`` pre-loads the
pages a dataset occupies (a hot run).  Locality now has the same observable
consequence it has on real hardware: a query that touches a few contiguous
pages causes few misses, one that hops all over an index causes many.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from .cost import CostTracker

DEFAULT_PAGE_SIZE = 1024
"""Number of column values per logical page (8 KiB of 8-byte OIDs)."""


class BufferPool:
    """LRU cache of ``(segment_id, page_number)`` pages with cost accounting."""

    def __init__(self, capacity_pages: int = 1 << 20, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.tracker = CostTracker()

    # -- cache state ---------------------------------------------------------

    def reset_cold(self) -> None:
        """Empty the cache, simulating a cold start."""
        self._pages.clear()

    def warm(self, segment_id: str, num_values: int) -> None:
        """Pre-load every page of a segment (simulating a hot cache)."""
        for page in range(self.pages_for(num_values)):
            self._insert((segment_id, page))

    def cached_page_count(self) -> int:
        """Number of pages currently cached."""
        return len(self._pages)

    def contains(self, segment_id: str, page: int) -> bool:
        """Whether a specific page is cached (does not touch LRU order)."""
        return (segment_id, page) in self._pages

    def drop_segments(self, prefix: str) -> int:
        """Evict every cached page of segments whose id starts with ``prefix``.

        Used when a structure is rebuilt under new segment names (e.g. the
        delta store's per-version index): superseded pages would otherwise
        linger, counting toward capacity and skewing cold/hot accounting.
        """
        doomed = [key for key in self._pages if key[0].startswith(prefix)]
        for key in doomed:
            del self._pages[key]
        return len(doomed)

    def pages_for(self, num_values: int) -> int:
        """Number of pages needed to hold ``num_values`` values."""
        if num_values <= 0:
            return 0
        return (num_values + self.page_size - 1) // self.page_size

    # -- access --------------------------------------------------------------

    def access_value(self, segment_id: str, index: int) -> bool:
        """Touch the page containing value ``index``; return True on a hit."""
        return self.access_page(segment_id, index // self.page_size)

    def access_page(self, segment_id: str, page: int) -> bool:
        """Touch one page; return True on a hit, False on a miss."""
        key = (segment_id, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.tracker.page_hits += 1
            return True
        self.tracker.page_reads += 1
        self._insert(key)
        return False

    def access_range(self, segment_id: str, start: int, stop: int) -> int:
        """Touch every page overlapping value indexes ``[start, stop)``.

        Returns the number of misses.  ``stop`` is exclusive; an empty range
        touches nothing.
        """
        if stop <= start:
            return 0
        first_page = start // self.page_size
        last_page = (stop - 1) // self.page_size
        misses = 0
        for page in range(first_page, last_page + 1):
            if not self.access_page(segment_id, page):
                misses += 1
        return misses

    def access_pages(self, segment_id: str, pages: Iterable[int]) -> int:
        """Touch an explicit set of pages; return the number of misses."""
        misses = 0
        for page in pages:
            if not self.access_page(segment_id, page):
                misses += 1
        return misses

    # -- internals -----------------------------------------------------------

    def _insert(self, key: tuple[str, int]) -> None:
        self._pages[key] = None
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
