"""BAT-style integer columns with page-accounted access.

MonetDB stores every column as a BAT (Binary Association Table): a dense
array of values addressed by position.  :class:`Column` mirrors that — a
NumPy ``int64`` array plus metadata — and routes every read through an
optional :class:`~repro.columnar.bufferpool.BufferPool` so that the cost of
an access pattern (sequential vs random) is observable.

Missing values (SQL NULL, used for 0..1 properties in a characteristic set
table) are encoded as :data:`NULL_OID`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import StorageError
from .bufferpool import BufferPool

NULL_OID = -1
"""Sentinel OID representing a missing (NULL) value in a column."""


class Column:
    """A named, optionally sorted, array of int64 values.

    Parameters
    ----------
    segment_id:
        Globally unique name used for buffer-pool page accounting.
    values:
        The column data; copied into a contiguous int64 array.
    sorted_ascending:
        Declare the column sorted; enables binary-search range selection.
        The declaration is validated.
    pool:
        Buffer pool used for page accounting.  ``None`` disables accounting
        (useful in unit tests of pure logic).
    """

    def __init__(
        self,
        segment_id: str,
        values: Sequence[int] | np.ndarray,
        sorted_ascending: bool = False,
        pool: Optional[BufferPool] = None,
    ) -> None:
        self.segment_id = segment_id
        self.data = np.ascontiguousarray(np.asarray(values, dtype=np.int64))
        if self.data.ndim != 1:
            raise StorageError(f"column {segment_id!r} must be one-dimensional")
        self.sorted_ascending = bool(sorted_ascending)
        if self.sorted_ascending and len(self.data) > 1:
            if not bool(np.all(self.data[:-1] <= self.data[1:])):
                raise StorageError(f"column {segment_id!r} declared sorted but is not")
        self.pool = pool

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.segment_id!r}, n={len(self)}, sorted={self.sorted_ascending})"

    def attach_pool(self, pool: Optional[BufferPool]) -> None:
        """Attach (or detach) the buffer pool used for accounting."""
        self.pool = pool

    def page_count(self) -> int:
        """Number of logical pages the column occupies."""
        if self.pool is None:
            return 0
        return self.pool.pages_for(len(self))

    # -- accounting helpers ---------------------------------------------------

    def _touch_range(self, start: int, stop: int) -> None:
        if self.pool is not None:
            self.pool.access_range(self.segment_id, start, stop)
            self.pool.tracker.tuples_scanned += max(0, stop - start)

    def _touch_value(self, index: int) -> None:
        if self.pool is not None:
            self.pool.access_value(self.segment_id, index)
            self.pool.tracker.tuples_probed += 1

    def _touch_positions(self, positions: np.ndarray) -> None:
        if self.pool is None or positions.size == 0:
            return
        pages = np.unique(positions // self.pool.page_size)
        self.pool.access_pages(self.segment_id, pages.tolist())
        self.pool.tracker.tuples_probed += int(positions.size)

    # -- reads ---------------------------------------------------------------

    def get(self, index: int) -> int:
        """Positional point read (accounted as a probe)."""
        if not 0 <= index < len(self):
            raise StorageError(f"position {index} out of range for column {self.segment_id!r}")
        self._touch_value(index)
        return int(self.data[index])

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Positional range read ``[start, stop)`` (accounted as a scan)."""
        start = max(0, start)
        stop = min(len(self), stop)
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        self._touch_range(start, stop)
        return self.data[start:stop]

    def gather(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Fetch values at arbitrary positions (accounted per touched page).

        This is the positional join primitive MonetDB calls *leftfetchjoin*;
        random positions touch many pages, sequential positions few — which
        is exactly the locality effect subject clustering is after.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= len(self)):
            raise StorageError(f"gather positions out of range for column {self.segment_id!r}")
        self._touch_positions(pos)
        return self.data[pos]

    def scan_all(self) -> np.ndarray:
        """Full sequential scan of the column."""
        return self.slice(0, len(self))

    # -- selection -----------------------------------------------------------

    def select_equal(self, value: int) -> np.ndarray:
        """Return positions where the column equals ``value``."""
        if self.sorted_ascending:
            lo = int(np.searchsorted(self.data, value, side="left"))
            hi = int(np.searchsorted(self.data, value, side="right"))
            self._touch_range(lo, hi)
            if self.pool is not None:
                self.pool.tracker.tuples_probed += 2  # binary search probes
            return np.arange(lo, hi, dtype=np.int64)
        self._touch_range(0, len(self))
        return np.nonzero(self.data == value)[0].astype(np.int64)

    def select_range(
        self,
        low: Optional[int] = None,
        high: Optional[int] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Return positions where ``low <= value <= high`` (bounds optional).

        On a sorted column this is two binary searches plus a contiguous
        range; on an unsorted column it is a full scan.
        """
        if self.sorted_ascending:
            lo_idx = 0
            hi_idx = len(self)
            if low is not None:
                side = "left" if low_inclusive else "right"
                lo_idx = int(np.searchsorted(self.data, low, side=side))
            if high is not None:
                side = "right" if high_inclusive else "left"
                hi_idx = int(np.searchsorted(self.data, high, side=side))
            if hi_idx < lo_idx:
                hi_idx = lo_idx
            self._touch_range(lo_idx, hi_idx)
            if self.pool is not None:
                self.pool.tracker.tuples_probed += 2
            return np.arange(lo_idx, hi_idx, dtype=np.int64)
        self._touch_range(0, len(self))
        mask = np.ones(len(self), dtype=bool)
        if low is not None:
            mask &= self.data >= low if low_inclusive else self.data > low
        if high is not None:
            mask &= self.data <= high if high_inclusive else self.data < high
        return np.nonzero(mask)[0].astype(np.int64)

    def select_in(self, values: Iterable[int]) -> np.ndarray:
        """Return positions where the value is in ``values`` (full scan)."""
        wanted = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
        if wanted.size == 0:
            return np.empty(0, dtype=np.int64)
        self._touch_range(0, len(self))
        mask = np.isin(self.data, wanted)
        return np.nonzero(mask)[0].astype(np.int64)

    def not_null_positions(self) -> np.ndarray:
        """Return positions holding a non-NULL value (full scan)."""
        self._touch_range(0, len(self))
        return np.nonzero(self.data != NULL_OID)[0].astype(np.int64)

    # -- statistics ----------------------------------------------------------

    def min_max(self, ignore_null: bool = True) -> tuple[int, int] | None:
        """Return ``(min, max)`` over the column, or ``None`` if empty."""
        data = self.data
        if ignore_null:
            data = data[data != NULL_OID]
        if data.size == 0:
            return None
        return int(data.min()), int(data.max())

    def null_count(self) -> int:
        """Number of NULL values in the column (no accounting: metadata op)."""
        return int(np.count_nonzero(self.data == NULL_OID))

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values (no accounting: metadata op)."""
        data = self.data[self.data != NULL_OID]
        return int(np.unique(data).size)
