"""BAT-style integer columns with page-accounted access.

MonetDB stores every column as a BAT (Binary Association Table): a dense
array of values addressed by position.  :class:`Column` mirrors that — a
NumPy ``int64`` array plus metadata — and routes every read through an
optional :class:`~repro.columnar.bufferpool.BufferPool` so that the cost of
an access pattern (sequential vs random) is observable.

Missing values (SQL NULL, used for 0..1 properties in a characteristic set
table) are encoded as :data:`NULL_OID`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..errors import StorageError
from .bufferpool import BufferPool

NULL_OID = -1
"""Sentinel OID representing a missing (NULL) value in a column."""


class Column:
    """A named, optionally sorted, array of int64 values.

    Parameters
    ----------
    segment_id:
        Globally unique name used for buffer-pool page accounting.
    values:
        The column data; copied into a contiguous int64 array.
    sorted_ascending:
        Declare the column sorted; enables binary-search range selection.
        The declaration is validated.
    pool:
        Buffer pool used for page accounting.  ``None`` disables accounting
        (useful in unit tests of pure logic).

    A column may alternatively be created *lazy* (:meth:`Column.lazy`): it
    then holds only a loader callable and its known length, and the backing
    array is materialized — and validated — on the first access to
    :attr:`data`.  Every read path goes through the :attr:`data` property,
    so lazy columns behave identically to eager ones after the first touch.
    """

    def __init__(
        self,
        segment_id: str,
        values: Sequence[int] | np.ndarray,
        sorted_ascending: bool = False,
        pool: Optional[BufferPool] = None,
    ) -> None:
        self.segment_id = segment_id
        self.sorted_ascending = bool(sorted_ascending)
        self.pool = pool
        self.stats = None
        """Optional precomputed :class:`~repro.columnar.stats.ColumnStats`,
        restored from a snapshot manifest so the optimizer can price plans
        without materializing the column."""
        self._loader: Optional[Callable[[], np.ndarray]] = None
        self._length: Optional[int] = None
        self._notify_pool = False
        self._data: Optional[np.ndarray] = None
        self._set_data(values)

    @classmethod
    def lazy(
        cls,
        segment_id: str,
        loader: Callable[[], np.ndarray],
        length: int,
        sorted_ascending: bool = False,
        pool: Optional[BufferPool] = None,
        notify_pool: bool = True,
    ) -> "Column":
        """Create a column whose values load from ``loader`` on first access.

        ``length`` must be the exact number of values the loader will
        produce, so ``len()``, page counts and buffer-pool registration work
        before materialization.  When ``notify_pool`` is true the column
        registers itself with the pool's lazy-segment accounting (pass
        ``False`` when a containing structure accounts for the load itself,
        e.g. a triple table whose three columns share one matrix file).
        """
        column = cls.__new__(cls)
        column.segment_id = segment_id
        column.sorted_ascending = bool(sorted_ascending)
        column.pool = pool
        column.stats = None
        column._loader = loader
        column._length = int(length)
        column._notify_pool = bool(notify_pool)
        column._data = None
        if pool is not None and notify_pool:
            pool.register_lazy_segment(segment_id, int(length))
        return column

    # -- materialization ------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The backing int64 array, materializing a lazy column on demand."""
        if self._data is None:
            self._materialize()
        return self._data

    @data.setter
    def data(self, values) -> None:
        self._set_data(values)

    def _set_data(self, values) -> None:
        data = np.ascontiguousarray(np.asarray(values, dtype=np.int64))
        if data.ndim != 1:
            raise StorageError(f"column {self.segment_id!r} must be one-dimensional")
        if self.sorted_ascending and data.shape[0] > 1:
            if not bool(np.all(data[:-1] <= data[1:])):
                raise StorageError(f"column {self.segment_id!r} declared sorted but is not")
        self._data = data

    def _materialize(self) -> None:
        if self._loader is None:
            raise StorageError(f"column {self.segment_id!r} has no data and no loader")
        loaded = np.asarray(self._loader(), dtype=np.int64)
        # validate the length *before* adopting the data: a failed guard
        # must leave the column unmaterialized, not silently serving a
        # wrong-length array on the next access
        if self._length is not None and loaded.shape[0] != self._length:
            raise StorageError(
                f"column {self.segment_id!r} loader produced {loaded.shape[0]} values, "
                f"expected {self._length}")
        self._set_data(loaded)
        if self.pool is not None and self._notify_pool:
            self.pool.note_materialized(self.segment_id, int(self._data.shape[0]))

    @property
    def is_materialized(self) -> bool:
        """Whether the backing array is resident (always true for eager columns)."""
        return self._data is not None

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        if self._data is None and self._length is not None:
            return self._length
        return int(self.data.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.segment_id!r}, n={len(self)}, sorted={self.sorted_ascending})"

    def attach_pool(self, pool: Optional[BufferPool]) -> None:
        """Attach (or detach) the buffer pool used for accounting."""
        self.pool = pool

    def page_count(self) -> int:
        """Number of logical pages the column occupies."""
        if self.pool is None:
            return 0
        return self.pool.pages_for(len(self))

    # -- accounting helpers ---------------------------------------------------

    def _touch_range(self, start: int, stop: int) -> None:
        if self.pool is not None:
            self.pool.access_range(self.segment_id, start, stop)
            self.pool.tracker.tuples_scanned += max(0, stop - start)

    def _touch_value(self, index: int) -> None:
        if self.pool is not None:
            self.pool.access_value(self.segment_id, index)
            self.pool.tracker.tuples_probed += 1

    def _touch_positions(self, positions: np.ndarray) -> None:
        if self.pool is None or positions.size == 0:
            return
        pages = np.unique(positions // self.pool.page_size)
        self.pool.access_pages(self.segment_id, pages.tolist())
        self.pool.tracker.tuples_probed += int(positions.size)

    # -- reads ---------------------------------------------------------------

    def get(self, index: int) -> int:
        """Positional point read (accounted as a probe)."""
        if not 0 <= index < len(self):
            raise StorageError(f"position {index} out of range for column {self.segment_id!r}")
        self._touch_value(index)
        return int(self.data[index])

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Positional range read ``[start, stop)`` (accounted as a scan)."""
        start = max(0, start)
        stop = min(len(self), stop)
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        self._touch_range(start, stop)
        return self.data[start:stop]

    def gather(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Fetch values at arbitrary positions (accounted per touched page).

        This is the positional join primitive MonetDB calls *leftfetchjoin*;
        random positions touch many pages, sequential positions few — which
        is exactly the locality effect subject clustering is after.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= len(self)):
            raise StorageError(f"gather positions out of range for column {self.segment_id!r}")
        self._touch_positions(pos)
        return self.data[pos]

    def scan_all(self) -> np.ndarray:
        """Full sequential scan of the column."""
        return self.slice(0, len(self))

    # -- selection -----------------------------------------------------------

    def select_equal(self, value: int) -> np.ndarray:
        """Return positions where the column equals ``value``."""
        if self.sorted_ascending:
            lo = int(np.searchsorted(self.data, value, side="left"))
            hi = int(np.searchsorted(self.data, value, side="right"))
            self._touch_range(lo, hi)
            if self.pool is not None:
                self.pool.tracker.tuples_probed += 2  # binary search probes
            return np.arange(lo, hi, dtype=np.int64)
        self._touch_range(0, len(self))
        return np.nonzero(self.data == value)[0].astype(np.int64)

    def select_range(
        self,
        low: Optional[int] = None,
        high: Optional[int] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Return positions where ``low <= value <= high`` (bounds optional).

        On a sorted column this is two binary searches plus a contiguous
        range; on an unsorted column it is a full scan.
        """
        if self.sorted_ascending:
            lo_idx = 0
            hi_idx = len(self)
            if low is not None:
                side = "left" if low_inclusive else "right"
                lo_idx = int(np.searchsorted(self.data, low, side=side))
            if high is not None:
                side = "right" if high_inclusive else "left"
                hi_idx = int(np.searchsorted(self.data, high, side=side))
            if hi_idx < lo_idx:
                hi_idx = lo_idx
            self._touch_range(lo_idx, hi_idx)
            if self.pool is not None:
                self.pool.tracker.tuples_probed += 2
            return np.arange(lo_idx, hi_idx, dtype=np.int64)
        self._touch_range(0, len(self))
        mask = np.ones(len(self), dtype=bool)
        if low is not None:
            mask &= self.data >= low if low_inclusive else self.data > low
        if high is not None:
            mask &= self.data <= high if high_inclusive else self.data < high
        return np.nonzero(mask)[0].astype(np.int64)

    def select_in(self, values: Iterable[int]) -> np.ndarray:
        """Return positions where the value is in ``values`` (full scan)."""
        wanted = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
        if wanted.size == 0:
            return np.empty(0, dtype=np.int64)
        self._touch_range(0, len(self))
        mask = np.isin(self.data, wanted)
        return np.nonzero(mask)[0].astype(np.int64)

    def not_null_positions(self) -> np.ndarray:
        """Return positions holding a non-NULL value (full scan)."""
        self._touch_range(0, len(self))
        return np.nonzero(self.data != NULL_OID)[0].astype(np.int64)

    # -- statistics ----------------------------------------------------------

    def min_max(self, ignore_null: bool = True) -> tuple[int, int] | None:
        """Return ``(min, max)`` over the column, or ``None`` if empty."""
        data = self.data
        if ignore_null:
            data = data[data != NULL_OID]
        if data.size == 0:
            return None
        return int(data.min()), int(data.max())

    def null_count(self) -> int:
        """Number of NULL values in the column (no accounting: metadata op)."""
        return int(np.count_nonzero(self.data == NULL_OID))

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values (no accounting: metadata op)."""
        data = self.data[self.data != NULL_OID]
        return int(np.unique(data).size)
