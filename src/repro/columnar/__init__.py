"""Columnar substrate: columns, zone maps, buffer pool and cost model."""

from .bufferpool import BufferPool, DEFAULT_PAGE_SIZE
from .column import Column, NULL_OID
from .cost import CostModel, CostTracker, QueryCost
from .stats import (
    CardinalityEstimator,
    ColumnStats,
    EquiWidthHistogram,
    PredicateCooccurrence,
)
from .zonemap import DEFAULT_ZONE_SIZE, Zone, ZoneMap

__all__ = [
    "BufferPool",
    "CardinalityEstimator",
    "Column",
    "ColumnStats",
    "CostModel",
    "CostTracker",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_ZONE_SIZE",
    "EquiWidthHistogram",
    "NULL_OID",
    "PredicateCooccurrence",
    "QueryCost",
    "Zone",
    "ZoneMap",
]
