"""Lightweight column and predicate statistics.

Used by the CS-aware query optimizer for cardinality estimation: per-column
histograms, distinct counts and the co-occurrence statistics that make join
selectivity between triple patterns of the same characteristic set exact
(the paper's point: knowing that ``isbn_no`` and ``has_author`` co-occur on
the same subjects makes their "join" hit ratio 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .column import NULL_OID


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    row_count: int
    null_count: int
    distinct_count: int
    min_value: Optional[int]
    max_value: Optional[int]

    @classmethod
    def from_values(cls, values: Sequence[int] | np.ndarray) -> "ColumnStats":
        data = np.asarray(values, dtype=np.int64)
        non_null = data[data != NULL_OID]
        if non_null.size == 0:
            return cls(row_count=int(data.size), null_count=int(data.size),
                       distinct_count=0, min_value=None, max_value=None)
        return cls(
            row_count=int(data.size),
            null_count=int(data.size - non_null.size),
            distinct_count=int(np.unique(non_null).size),
            min_value=int(non_null.min()),
            max_value=int(non_null.max()),
        )

    def not_null_fraction(self) -> float:
        """Fraction of rows with a value (0 for an empty column)."""
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.null_count / self.row_count

    def estimate_equality_selectivity(self) -> float:
        """Estimated fraction of rows matched by an equality predicate."""
        if self.distinct_count == 0:
            return 0.0
        return self.not_null_fraction() / self.distinct_count

    def estimate_range_selectivity(self, low: Optional[int], high: Optional[int]) -> float:
        """Estimated fraction matched by a range predicate (uniform model)."""
        if self.min_value is None or self.max_value is None:
            return 0.0
        span = self.max_value - self.min_value
        if span <= 0:
            return self.not_null_fraction()
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi < lo:
            return 0.0
        return self.not_null_fraction() * (hi - lo + 1) / (span + 1)


class EquiWidthHistogram:
    """Equi-width histogram over non-NULL integer values."""

    def __init__(self, values: Sequence[int] | np.ndarray, bucket_count: int = 64) -> None:
        data = np.asarray(values, dtype=np.int64)
        data = data[data != NULL_OID]
        self.total = int(data.size)
        if self.total == 0:
            self.edges = np.array([0, 1], dtype=np.float64)
            self.counts = np.array([0], dtype=np.int64)
            return
        low, high = float(data.min()), float(data.max())
        if high <= low:
            high = low + 1.0
        bucket_count = max(1, min(bucket_count, self.total))
        self.counts, self.edges = np.histogram(data, bins=bucket_count, range=(low, high))

    def estimate_range_count(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimate how many values fall in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        lo = self.edges[0] if low is None else low
        hi = self.edges[-1] if high is None else high
        if hi < lo:
            return 0.0
        estimate = 0.0
        for count, left, right in zip(self.counts, self.edges[:-1], self.edges[1:]):
            if right < lo or left > hi:
                continue
            width = right - left
            if width <= 0:
                estimate += float(count)
                continue
            overlap = min(right, hi) - max(left, lo)
            estimate += float(count) * max(0.0, overlap) / width
        return min(float(self.total), estimate)

    def estimate_range_selectivity(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimate the fraction of values in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range_count(low, high) / self.total


@dataclass
class PredicateCooccurrence:
    """Co-occurrence counts between predicates over subjects.

    ``support[p]`` is the number of subjects having predicate ``p``;
    ``joint[(p, q)]`` the number of subjects having both.  The conditional
    probability ``P(q | p)`` is the join hit ratio between the star patterns
    ``?s p ?x`` and ``?s q ?y`` — exactly the statistic the paper says a
    structure-unaware optimizer lacks.
    """

    support: Dict[int, int]
    joint: Dict[tuple[int, int], int]
    subject_count: int

    @classmethod
    def from_subject_property_sets(cls, property_sets: Dict[int, frozenset[int]]) -> "PredicateCooccurrence":
        support: Dict[int, int] = {}
        joint: Dict[tuple[int, int], int] = {}
        for props in property_sets.values():
            ordered = sorted(props)
            for i, p in enumerate(ordered):
                support[p] = support.get(p, 0) + 1
                for q in ordered[i + 1:]:
                    key = (p, q)
                    joint[key] = joint.get(key, 0) + 1
        return cls(support=support, joint=joint, subject_count=len(property_sets))

    def joint_count(self, p: int, q: int) -> int:
        """Number of subjects having both ``p`` and ``q``."""
        if p == q:
            return self.support.get(p, 0)
        key = (p, q) if p < q else (q, p)
        return self.joint.get(key, 0)

    def conditional(self, p: int, q: int) -> float:
        """``P(subject has q | subject has p)``; 0 when ``p`` unseen."""
        denom = self.support.get(p, 0)
        if denom == 0:
            return 0.0
        return self.joint_count(p, q) / denom

    def star_cardinality(self, predicates: Sequence[int]) -> float:
        """Estimate the number of subjects having *all* given predicates.

        Uses the chain of pairwise conditionals relative to the most
        selective predicate — the characteristic-set style estimator of
        Neumann & Moerkotte, simplified to pairwise statistics.
        """
        preds = [p for p in predicates if p in self.support]
        if len(preds) < len(list(predicates)):
            return 0.0
        if not preds:
            return float(self.subject_count)
        preds.sort(key=lambda p: self.support[p])
        estimate = float(self.support[preds[0]])
        anchor = preds[0]
        for q in preds[1:]:
            estimate *= self.conditional(anchor, q)
        return estimate
