"""Column and predicate statistics plus the cardinality estimator.

Used by the cost-based query optimizer: per-column histograms, distinct
counts, the co-occurrence statistics that make join selectivity between
triple patterns of the same characteristic set exact (the paper's point:
knowing that ``isbn_no`` and ``has_author`` co-occur on the same subjects
makes their "join" hit ratio 1), and — built on top of all of these — the
:class:`CardinalityEstimator` that the SPARQL planner consults to order
joins and annotate physical plans with expected row counts.

The estimator deliberately lives at the columnar layer (below the engine)
and treats plan objects duck-typed: a *star* is anything with
``predicate_oids()``, ``properties`` and ``subject_range``; a *property* is
anything with ``predicate_oid``, ``object_term`` and ``oid_range``.  This
keeps the layering acyclic: columnar ← engine ← sparql.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .column import NULL_OID


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    row_count: int
    null_count: int
    distinct_count: int
    min_value: Optional[int]
    max_value: Optional[int]

    @classmethod
    def from_values(cls, values: Sequence[int] | np.ndarray) -> "ColumnStats":
        data = np.asarray(values, dtype=np.int64)
        non_null = data[data != NULL_OID]
        if non_null.size == 0:
            return cls(row_count=int(data.size), null_count=int(data.size),
                       distinct_count=0, min_value=None, max_value=None)
        return cls(
            row_count=int(data.size),
            null_count=int(data.size - non_null.size),
            distinct_count=int(np.unique(non_null).size),
            min_value=int(non_null.min()),
            max_value=int(non_null.max()),
        )

    def to_dict(self) -> Dict[str, Optional[int]]:
        """JSON-ready form, persisted in snapshot manifests."""
        return {
            "rows": self.row_count,
            "nulls": self.null_count,
            "distinct": self.distinct_count,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Optional[int]]) -> "ColumnStats":
        """Rebuild stats persisted by :meth:`to_dict`."""
        return cls(
            row_count=int(payload["rows"]),
            null_count=int(payload["nulls"]),
            distinct_count=int(payload["distinct"]),
            min_value=None if payload["min"] is None else int(payload["min"]),
            max_value=None if payload["max"] is None else int(payload["max"]),
        )

    def not_null_fraction(self) -> float:
        """Fraction of rows with a value (0 for an empty column)."""
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.null_count / self.row_count

    def estimate_equality_selectivity(self) -> float:
        """Estimated fraction of rows matched by an equality predicate."""
        if self.distinct_count == 0:
            return 0.0
        return self.not_null_fraction() / self.distinct_count

    def estimate_range_selectivity(self, low: Optional[int], high: Optional[int]) -> float:
        """Estimated fraction matched by a range predicate (uniform model)."""
        if self.min_value is None or self.max_value is None:
            return 0.0
        span = self.max_value - self.min_value
        if span <= 0:
            return self.not_null_fraction()
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi < lo:
            return 0.0
        return self.not_null_fraction() * (hi - lo + 1) / (span + 1)


class EquiWidthHistogram:
    """Equi-width histogram over non-NULL integer values."""

    def __init__(self, values: Sequence[int] | np.ndarray, bucket_count: int = 64) -> None:
        data = np.asarray(values, dtype=np.int64)
        data = data[data != NULL_OID]
        self.total = int(data.size)
        if self.total == 0:
            self.edges = np.array([0, 1], dtype=np.float64)
            self.counts = np.array([0], dtype=np.int64)
            return
        low, high = float(data.min()), float(data.max())
        if high <= low:
            high = low + 1.0
        bucket_count = max(1, min(bucket_count, self.total))
        self.counts, self.edges = np.histogram(data, bins=bucket_count, range=(low, high))

    def estimate_range_count(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimate how many values fall in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        lo = self.edges[0] if low is None else low
        hi = self.edges[-1] if high is None else high
        if hi < lo:
            return 0.0
        estimate = 0.0
        for count, left, right in zip(self.counts, self.edges[:-1], self.edges[1:]):
            if right < lo or left > hi:
                continue
            width = right - left
            if width <= 0:
                estimate += float(count)
                continue
            overlap = min(right, hi) - max(left, lo)
            estimate += float(count) * max(0.0, overlap) / width
        return min(float(self.total), estimate)

    def estimate_range_selectivity(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimate the fraction of values in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range_count(low, high) / self.total


@dataclass
class PredicateCooccurrence:
    """Co-occurrence counts between predicates over subjects.

    ``support[p]`` is the number of subjects having predicate ``p``;
    ``joint[(p, q)]`` the number of subjects having both.  The conditional
    probability ``P(q | p)`` is the join hit ratio between the star patterns
    ``?s p ?x`` and ``?s q ?y`` — exactly the statistic the paper says a
    structure-unaware optimizer lacks.
    """

    support: Dict[int, int]
    joint: Dict[tuple[int, int], int]
    subject_count: int

    @classmethod
    def from_subject_property_sets(cls, property_sets: Dict[int, frozenset[int]]) -> "PredicateCooccurrence":
        support: Dict[int, int] = {}
        joint: Dict[tuple[int, int], int] = {}
        for props in property_sets.values():
            ordered = sorted(props)
            for i, p in enumerate(ordered):
                support[p] = support.get(p, 0) + 1
                for q in ordered[i + 1:]:
                    key = (p, q)
                    joint[key] = joint.get(key, 0) + 1
        return cls(support=support, joint=joint, subject_count=len(property_sets))

    def joint_count(self, p: int, q: int) -> int:
        """Number of subjects having both ``p`` and ``q``."""
        if p == q:
            return self.support.get(p, 0)
        key = (p, q) if p < q else (q, p)
        return self.joint.get(key, 0)

    def conditional(self, p: int, q: int) -> float:
        """``P(subject has q | subject has p)``; 0 when ``p`` unseen."""
        denom = self.support.get(p, 0)
        if denom == 0:
            return 0.0
        return self.joint_count(p, q) / denom

    def star_cardinality(self, predicates: Sequence[int]) -> float:
        """Estimate the number of subjects having *all* given predicates.

        Uses the chain of pairwise conditionals relative to the most
        selective predicate — the characteristic-set style estimator of
        Neumann & Moerkotte, simplified to pairwise statistics.
        """
        preds = [p for p in predicates if p in self.support]
        if len(preds) < len(list(predicates)):
            return 0.0
        if not preds:
            return float(self.subject_count)
        preds.sort(key=lambda p: self.support[p])
        estimate = float(self.support[preds[0]])
        anchor = preds[0]
        for q in preds[1:]:
            estimate *= self.conditional(anchor, q)
        return estimate


#: Fallback equality selectivity when no statistics cover a predicate.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
#: Fallback range selectivity when no statistics cover a predicate.
DEFAULT_RANGE_SELECTIVITY = 0.3


class CardinalityEstimator:
    """Cardinality estimates from CS statistics and index metadata.

    The estimator combines three sources, in decreasing order of precision:

    1. the exhaustive permutation indexes — exact per-pattern triple counts
       through binary search (no page accounting: statistics lookups are
       metadata, not query work);
    2. the clustered store's CS blocks — per-column
       :class:`ColumnStats` (distinct counts, min/max, null fractions),
       computed lazily and cached;
    3. the emergent schema — per-CS subject counts and property fill
       factors (``presence``), which make star-pattern estimates *structure
       aware*: a star is only charged to the characteristic sets that
       actually contain all its properties.

    Every argument is optional; missing sources degrade gracefully to the
    textbook default selectivities.  Plan objects are duck-typed (see the
    module docstring) so this class has no dependency on the engine layer.
    """

    def __init__(self, schema=None, index_store=None, clustered_store=None,
                 delta=None) -> None:
        self.schema = schema
        self.index_store = index_store
        self.clustered_store = clustered_store
        self.delta = delta
        """Optional pending-write overlay (duck-typed
        :class:`repro.updates.DeltaStore`).  Base statistics describe the
        immutable structures; the estimator adds the delta's insert and
        tombstone counts on top so the optimizer prices merged scans."""
        self._column_stats_cache: Dict[Tuple[int, int], Optional[ColumnStats]] = {}
        self._subject_stats_cache: Dict[int, Optional[ColumnStats]] = {}
        self._distinct_objects_cache: Dict[int, float] = {}
        self._distinct_subjects_cache: Dict[int, float] = {}
        self._predicate_counts: Optional[Dict[int, int]] = None
        self._blocks_by_cs: Optional[Dict[int, object]] = None

    # -- base statistics ---------------------------------------------------------

    def total_triples(self) -> float:
        """Total live triple count (0 when no source is attached)."""
        base = 0.0
        if self.index_store is not None:
            base = float(len(self.index_store))
        elif self.schema is not None:
            base = float(self.schema.coverage.total_triples)
        return max(0.0, base + self._delta_size())

    def _delta_size(self) -> float:
        """Net pending-write triple count (inserts minus tombstones)."""
        if self.delta is None or self.delta.is_empty():
            return 0.0
        return float(self.delta.insert_count() - self.delta.tombstone_count())

    def _delta_pattern_adjustment(self, s: Optional[int], p: Optional[int],
                                  o: Optional[int]) -> float:
        """Net delta rows matching one pattern (exact: the delta is small)."""
        if self.delta is None or self.delta.is_empty():
            return 0.0
        added = float(self.delta.index().count_pattern(s=s, p=p, o=o))
        removed = 0.0
        tombs = self.delta.tombstone_matrix()
        if tombs.size:
            mask = np.ones(tombs.shape[0], dtype=bool)
            if s is not None:
                mask &= tombs[:, 0] == s
            if p is not None:
                mask &= tombs[:, 1] == p
            if o is not None:
                mask &= tombs[:, 2] == o
            removed = float(mask.sum())
        return added - removed

    def total_subjects(self) -> float:
        """Total distinct-subject count known to the schema (or a bound)."""
        if self.schema is not None and self.schema.coverage.total_subjects:
            return float(self.schema.coverage.total_subjects)
        return self.total_triples()

    def predicate_count(self, predicate_oid: int) -> float:
        """Number of triples carrying the predicate."""
        if self.index_store is not None:
            if self._predicate_counts is None:
                self._predicate_counts = self.index_store.predicate_counts()
            return float(self._predicate_counts.get(predicate_oid, 0))
        if self.schema is not None:
            total = 0.0
            for cs in self.schema.tables.values():
                spec = cs.properties.get(predicate_oid)
                if spec is not None:
                    total += cs.support * spec.presence * max(spec.mean_multiplicity, 1.0)
            return total
        return 0.0

    def distinct_objects(self, predicate_oid: int) -> float:
        """Estimated number of distinct object values of a predicate."""
        cached = self._distinct_objects_cache.get(predicate_oid)
        if cached is not None:
            return cached
        estimate: Optional[float] = None
        if self.clustered_store is not None:
            total = 0.0
            seen = False
            for block in self.clustered_store.blocks:
                if not block.has_property(predicate_oid):
                    continue
                stats = self._block_column_stats(block, predicate_oid)
                if stats is not None:
                    total += stats.distinct_count
                    seen = True
            if seen:
                estimate = max(total, 1.0)
        if estimate is None and self.index_store is not None and "pos" in self.index_store.tables:
            table = self.index_store.tables["pos"]
            lo, hi = table.prefix_row_range(predicate_oid)
            if hi > lo:
                segment = table.column("o").data[lo:hi]
                # POS is object-sorted within the predicate: count value changes
                estimate = float(1 + int(np.count_nonzero(segment[1:] != segment[:-1])))
            else:
                estimate = 0.0
        if estimate is None:
            estimate = max(self.predicate_count(predicate_oid), 1.0)
        self._distinct_objects_cache[predicate_oid] = estimate
        return estimate

    def distinct_subjects(self, predicate_oid: int) -> float:
        """Estimated number of distinct subjects carrying a predicate."""
        cached = self._distinct_subjects_cache.get(predicate_oid)
        if cached is not None:
            return cached
        estimate: Optional[float] = None
        if self.schema is not None:
            total = 0.0
            for cs in self.schema.tables.values():
                spec = cs.properties.get(predicate_oid)
                if spec is not None:
                    total += cs.support * spec.presence
            if total > 0:
                estimate = total
        if estimate is None and self.index_store is not None and "pso" in self.index_store.tables:
            table = self.index_store.tables["pso"]
            lo, hi = table.prefix_row_range(predicate_oid)
            if hi > lo:
                segment = table.column("s").data[lo:hi]
                # PSO is subject-sorted within the predicate: count value changes
                estimate = float(1 + int(np.count_nonzero(segment[1:] != segment[:-1])))
            else:
                estimate = 0.0
        if estimate is None:
            estimate = max(self.predicate_count(predicate_oid), 1.0)
        self._distinct_subjects_cache[predicate_oid] = estimate
        return estimate

    # -- per-pattern estimates -----------------------------------------------------

    def pattern_cardinality(self, s: Optional[int] = None, p: Optional[int] = None,
                            o: Optional[int] = None, object_range=None,
                            subject_range=None) -> float:
        """Estimated triples matching one pattern, with optional OID ranges.

        With the exhaustive index store attached the bound-slot count is
        exact (binary search) and attached ranges are resolved exactly
        against the value-sorted POS/PSO projections; otherwise the estimate
        falls back to schema predicate counts scaled by default
        selectivities.
        """
        # the pending-delta contribution is pattern-exact but range-agnostic;
        # it is added after the base refinements so an exact base range count
        # cannot overwrite it (merged scans must never be priced at zero)
        delta_adjustment = self._delta_pattern_adjustment(s, p, o)
        if self.index_store is not None:
            base = float(self.index_store.count_pattern(s=s, p=p, o=o))
            if base == 0.0 and delta_adjustment <= 0.0:
                return 0.0
            if p is not None and s is None and o is None and _is_bounded(object_range):
                exact = self._range_count(p, object_range, "o")
                if exact is not None:
                    base = exact
                    object_range = None
            if p is not None and s is None and o is None and _is_bounded(subject_range):
                fraction = self._range_fraction(p, subject_range, "s")
                if fraction is not None:
                    base *= fraction
                    subject_range = None
            if _is_bounded(object_range):
                base *= DEFAULT_RANGE_SELECTIVITY
            if _is_bounded(subject_range):
                base *= DEFAULT_RANGE_SELECTIVITY
            return max(0.0, base + delta_adjustment)
        if p is not None:
            base = self.predicate_count(p)
        else:
            base = self.total_triples()
            delta_adjustment = 0.0  # total_triples() already counts the delta
        if s is not None:
            base /= max(self.total_subjects(), 1.0)
        if o is not None:
            base *= DEFAULT_EQUALITY_SELECTIVITY
        if _is_bounded(object_range):
            base *= DEFAULT_RANGE_SELECTIVITY
        if _is_bounded(subject_range):
            base *= DEFAULT_RANGE_SELECTIVITY
        return max(0.0, base + delta_adjustment)

    def _range_count(self, predicate_oid: int, oid_range, component: str) -> Optional[float]:
        """Exact rows of predicate whose S/O component falls in the range."""
        order = "pos" if component == "o" else "pso"
        if self.index_store is None or order not in self.index_store.tables:
            return None
        table = self.index_store.tables[order]
        lo, hi = table.prefix_row_range(predicate_oid)
        if hi <= lo:
            return 0.0
        segment = table.column(component).data[lo:hi]
        start = 0 if oid_range.low is None else int(np.searchsorted(segment, oid_range.low, side="left"))
        stop = segment.size if oid_range.high is None else int(
            np.searchsorted(segment, oid_range.high, side="right"))
        return float(max(0, stop - start))

    def _range_fraction(self, predicate_oid: int, oid_range, component: str) -> Optional[float]:
        count = self._range_count(predicate_oid, oid_range, component)
        if count is None:
            return None
        total = self.predicate_count(predicate_oid)
        if total <= 0:
            return 0.0
        return count / total

    # -- star-pattern estimates ------------------------------------------------------

    def star_subject_cardinality(self, star) -> float:
        """Estimated subjects satisfying every property of a star pattern."""
        return self._star_estimate(star)[0]

    def star_cardinality(self, star) -> float:
        """Estimated result rows of a star (subjects times multi-value fan-out)."""
        return self._star_estimate(star)[1]

    def _star_estimate(self, star) -> Tuple[float, float]:
        predicates = list(star.predicate_oids())
        tables = (self.schema.tables_with_properties(predicates)
                  if self.schema is not None else [])
        if tables:
            subjects = 0.0
            rows = 0.0
            for cs in tables:
                cs_rows = float(max(cs.support, len(cs.subjects)))
                selectivity = 1.0
                fan_out = 1.0
                for prop in star.properties:
                    selectivity *= self._property_selectivity(cs, prop)
                    spec = cs.properties.get(prop.predicate_oid)
                    if spec is not None:
                        fan_out *= max(spec.mean_multiplicity, 1.0)
                selectivity *= self._subject_range_fraction(cs, star.subject_range)
                subjects += cs_rows * selectivity
                rows += cs_rows * selectivity * fan_out
            return subjects, rows
        # No covering CS (schema missing, or the star spans irregular data):
        # bound the star by its most selective single pattern.
        cards = []
        for prop in star.properties:
            constant = None if prop.object_term.is_variable else prop.object_term.oid
            cards.append(self.pattern_cardinality(
                p=prop.predicate_oid, o=constant,
                object_range=prop.oid_range, subject_range=star.subject_range))
        if not cards:
            return self.total_subjects(), self.total_subjects()
        return min(cards), min(cards)

    def _property_selectivity(self, cs, prop) -> float:
        """Fraction of the CS's subjects matched by one star property."""
        spec = cs.properties.get(prop.predicate_oid)
        presence = spec.presence if spec is not None else 1.0
        stats = self._column_stats(cs.cs_id, prop.predicate_oid)
        constant = None if prop.object_term.is_variable else prop.object_term.oid
        if constant is not None:
            if stats is not None:
                return stats.estimate_equality_selectivity()
            total = self.predicate_count(prop.predicate_oid)
            if total > 0:
                matches = self.pattern_cardinality(p=prop.predicate_oid, o=constant)
                return presence * matches / total
            return presence * DEFAULT_EQUALITY_SELECTIVITY
        if _is_bounded(prop.oid_range):
            if stats is not None:
                return stats.estimate_range_selectivity(prop.oid_range.low, prop.oid_range.high)
            fraction = self._range_fraction(prop.predicate_oid, prop.oid_range, "o")
            if fraction is not None:
                return presence * fraction
            return presence * DEFAULT_RANGE_SELECTIVITY
        return presence

    def _subject_range_fraction(self, cs, subject_range) -> float:
        if not _is_bounded(subject_range):
            return 1.0
        stats = self._subject_stats(cs.cs_id)
        if stats is not None:
            fraction = stats.estimate_range_selectivity(subject_range.low, subject_range.high)
            return fraction
        return DEFAULT_RANGE_SELECTIVITY

    # -- lazily cached column statistics ------------------------------------------------

    def _block_for(self, cs_id: int):
        if self.clustered_store is None:
            return None
        if self._blocks_by_cs is None:
            self._blocks_by_cs = {block.cs_id: block
                                  for block in self.clustered_store.blocks}
        return self._blocks_by_cs.get(cs_id)

    def _block_column_stats(self, block, predicate_oid: int) -> Optional[ColumnStats]:
        key = (block.cs_id, predicate_oid)
        if key not in self._column_stats_cache:
            if block.has_property(predicate_oid):
                column = block.column(predicate_oid)
                # a column reopened from a snapshot carries its persisted
                # stats; prefer them so planning never forces materialization
                stats = getattr(column, "stats", None)
                if stats is None:
                    stats = ColumnStats.from_values(column.data)
            else:
                stats = None
            self._column_stats_cache[key] = stats
        return self._column_stats_cache[key]

    def _column_stats(self, cs_id: int, predicate_oid: int) -> Optional[ColumnStats]:
        block = self._block_for(cs_id)
        if block is None:
            return None
        return self._block_column_stats(block, predicate_oid)

    def _subject_stats(self, cs_id: int) -> Optional[ColumnStats]:
        if cs_id not in self._subject_stats_cache:
            block = self._block_for(cs_id)
            stats = None
            if block is not None:
                stats = getattr(block.subject_column, "stats", None)
                if stats is None:
                    stats = ColumnStats.from_values(block.subject_column.data)
            self._subject_stats_cache[cs_id] = stats
        return self._subject_stats_cache[cs_id]

    # -- join estimates ------------------------------------------------------------------

    @staticmethod
    def join_cardinality(left_rows: float, right_rows: float,
                         left_distinct: float, right_distinct: float) -> float:
        """Textbook equi-join estimate: ``|L|·|R| / max(d(L), d(R))``."""
        denominator = max(left_distinct, right_distinct, 1.0)
        return max(0.0, left_rows * right_rows / denominator)


def _is_bounded(oid_range) -> bool:
    return oid_range is not None and not oid_range.is_unbounded()
