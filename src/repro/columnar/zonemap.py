"""Netezza-style zone maps over columns.

A zone map stores, for every fixed-size zone (block of consecutive rows) of
a column, the minimum and maximum value found in that zone.  A range
predicate can then skip every zone whose ``[min, max]`` interval does not
intersect the predicate — without reading the zone's pages at all.

The paper uses zone maps twice:

* on the sub-ordering attribute of a clustered characteristic set (e.g.
  LINEITEM ordered on ``shipdate``), a date range selection touches only the
  zones that can contain matching rows;
* across a foreign key: given the selected LINEITEM rows, the zone map on
  the ``orderkey``-referencing column yields the narrow range of ORDERS
  subject OIDs that can be referenced, so the date restriction is
  effectively *pushed through the join* (and vice versa) — exploiting the
  strong order/ship date correlation in TPC-H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .column import NULL_OID, Column

DEFAULT_ZONE_SIZE = 1024
"""Rows per zone; chosen equal to the default page size so a pruned zone is a pruned page."""


@dataclass(frozen=True)
class Zone:
    """Summary of one block of rows: positional extent and value extent."""

    start_row: int
    end_row: int  # exclusive
    min_value: int
    max_value: int

    def row_count(self) -> int:
        return self.end_row - self.start_row

    def overlaps(self, low: Optional[int], high: Optional[int]) -> bool:
        """Whether the zone's value interval intersects ``[low, high]``."""
        if self.min_value > self.max_value:
            return False  # empty (all-NULL) zone can never satisfy a predicate
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True


class ZoneMap:
    """Per-zone min/max summaries of a column."""

    def __init__(self, zones: List[Zone], zone_size: int, total_rows: int) -> None:
        self.zones = zones
        self.zone_size = zone_size
        self.total_rows = total_rows

    @classmethod
    def build(cls, values: Sequence[int] | np.ndarray, zone_size: int = DEFAULT_ZONE_SIZE) -> "ZoneMap":
        """Build a zone map over raw values (NULLs are ignored per zone)."""
        data = np.asarray(values, dtype=np.int64)
        zones: List[Zone] = []
        total = int(data.shape[0])
        for start in range(0, total, zone_size):
            end = min(start + zone_size, total)
            chunk = data[start:end]
            valid = chunk[chunk != NULL_OID]
            if valid.size == 0:
                # a zone of only NULLs can never match a range predicate
                zones.append(Zone(start, end, min_value=1, max_value=0))
            else:
                zones.append(Zone(start, end, int(valid.min()), int(valid.max())))
        return cls(zones, zone_size, total)

    @classmethod
    def build_for_column(cls, column: Column, zone_size: int = DEFAULT_ZONE_SIZE) -> "ZoneMap":
        """Build a zone map directly over a :class:`Column` (metadata op, not accounted)."""
        return cls.build(column.data, zone_size=zone_size)

    # -- persistence ---------------------------------------------------------

    def to_array(self) -> np.ndarray:
        """Flatten the zones to an ``(n, 4)`` int64 array for snapshotting.

        Columns are ``start_row, end_row, min_value, max_value`` — the
        all-NULL sentinel (``min > max``) round-trips unchanged.
        """
        if not self.zones:
            return np.empty((0, 4), dtype=np.int64)
        return np.asarray(
            [(z.start_row, z.end_row, z.min_value, z.max_value) for z in self.zones],
            dtype=np.int64)

    @classmethod
    def from_array(cls, rows: np.ndarray, zone_size: int, total_rows: int) -> "ZoneMap":
        """Rebuild a zone map persisted by :meth:`to_array`."""
        matrix = np.asarray(rows, dtype=np.int64).reshape(-1, 4)
        zones = [Zone(int(s), int(e), int(lo), int(hi)) for s, e, lo, hi in matrix]
        return cls(zones, zone_size=zone_size, total_rows=total_rows)

    # -- pruning -------------------------------------------------------------

    def candidate_zones(self, low: Optional[int], high: Optional[int]) -> List[Zone]:
        """Zones whose value interval intersects the predicate interval."""
        return [zone for zone in self.zones if zone.overlaps(low, high)]

    def candidate_row_ranges(self, low: Optional[int], high: Optional[int]) -> List[tuple[int, int]]:
        """Candidate row ranges ``[start, end)``, adjacent zones coalesced."""
        ranges: List[tuple[int, int]] = []
        for zone in self.candidate_zones(low, high):
            if ranges and ranges[-1][1] == zone.start_row:
                ranges[-1] = (ranges[-1][0], zone.end_row)
            else:
                ranges.append((zone.start_row, zone.end_row))
        return ranges

    def candidate_row_count(self, low: Optional[int], high: Optional[int]) -> int:
        """Total number of rows in candidate zones."""
        return sum(end - start for start, end in self.candidate_row_ranges(low, high))

    def selectivity(self, low: Optional[int], high: Optional[int]) -> float:
        """Fraction of rows that survive zone pruning (1.0 when no pruning)."""
        if self.total_rows == 0:
            return 0.0
        return self.candidate_row_count(low, high) / self.total_rows

    def value_bounds_for_rows(self, row_start: int, row_end: int) -> Optional[tuple[int, int]]:
        """Min/max value over the zones overlapping a positional row range.

        This is the cross-table push-down primitive: given the row range of
        the *referencing* side selected by a predicate, return the value
        bounds of the referenced OIDs within it.
        """
        lo: Optional[int] = None
        hi: Optional[int] = None
        for zone in self.zones:
            if zone.end_row <= row_start or zone.start_row >= row_end:
                continue
            if zone.min_value > zone.max_value:
                continue  # all-NULL zone
            lo = zone.min_value if lo is None else min(lo, zone.min_value)
            hi = zone.max_value if hi is None else max(hi, zone.max_value)
        if lo is None or hi is None:
            return None
        return lo, hi

    def __len__(self) -> int:
        return len(self.zones)
