"""N-Triples parser and serializer.

N-Triples is the line-oriented RDF exchange syntax: one triple per line,
IRIs in angle brackets, literals in double quotes with optional ``@lang`` or
``^^<datatype>`` suffix, blank nodes as ``_:label``.  The parser here is a
hand-written scanner that accepts the common subset produced by real tools
(including comment lines and blank lines) and reports positions on error.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO, Union

from ..errors import ParseError
from ..model import BNode, IRI, Literal, Triple
from ..model.terms import unescape_literal


def parse_ntriples(source: Union[str, TextIO, Iterable[str]]) -> Iterator[Triple]:
    """Parse N-Triples from a string, open file or iterable of lines.

    Yields :class:`~repro.model.Triple` objects.  Comment lines (starting
    with ``#``) and blank lines are skipped.

    Raises
    ------
    ParseError
        On malformed input, with the 1-based line number.
    """
    if isinstance(source, str):
        # split strictly on '\n': literals may legally contain other Unicode
        # line-boundary characters, which str.splitlines() would break on
        lines: Iterable[str] = source.split("\n")
    else:
        lines = source
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, lineno)


def _parse_line(line: str, lineno: int) -> Triple:
    scanner = _Scanner(line, lineno)
    subject = scanner.read_subject()
    scanner.skip_ws(required=True)
    predicate = scanner.read_iri()
    scanner.skip_ws(required=True)
    obj = scanner.read_object()
    scanner.skip_ws(required=False)
    scanner.expect(".")
    scanner.skip_ws(required=False)
    if not scanner.at_end():
        raise ParseError("trailing characters after '.'", line=lineno, column=scanner.pos + 1)
    return Triple(subject, predicate, obj)


class _Scanner:
    """Character scanner over one N-Triples line."""

    def __init__(self, line: str, lineno: int) -> None:
        self.line = line
        self.lineno = lineno
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        if self.at_end():
            return ""
        return self.line[self.pos]

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.lineno, column=self.pos + 1)

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def skip_ws(self, required: bool) -> None:
        start = self.pos
        while not self.at_end() and self.line[self.pos] in " \t":
            self.pos += 1
        if required and self.pos == start:
            raise self.error("expected whitespace")

    def read_subject(self):
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        raise self.error("subject must be an IRI or blank node")

    def read_object(self):
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        if ch == '"':
            return self.read_literal()
        raise self.error("object must be an IRI, blank node or literal")

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI (missing '>')")
        value = self.line[self.pos:end]
        self.pos = end + 1
        if not value:
            raise self.error("empty IRI")
        return IRI(value)

    def read_bnode(self) -> BNode:
        if not self.line.startswith("_:", self.pos):
            raise self.error("blank node must start with '_:'")
        self.pos += 2
        start = self.pos
        while not self.at_end() and not self.line[self.pos].isspace():
            self.pos += 1
        label = self.line[start:self.pos]
        if not label:
            raise self.error("empty blank node label")
        return BNode(label)

    def read_literal(self) -> Literal:
        self.expect('"')
        chars = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            ch = self.line[self.pos]
            if ch == "\\":
                if self.pos + 1 >= len(self.line):
                    raise self.error("dangling escape in literal")
                chars.append(self.line[self.pos:self.pos + 2])
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                break
            chars.append(ch)
            self.pos += 1
        lexical = unescape_literal("".join(chars))
        # optional language tag or datatype
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while not self.at_end() and (self.line[self.pos].isalnum() or self.line[self.pos] == "-"):
                self.pos += 1
            language = self.line[start:self.pos]
            if not language:
                raise self.error("empty language tag")
            return Literal(lexical, language=language)
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)


def parse_term(text: str, lineno: int = 1):
    """Parse a single N-Triples term (IRI, blank node or literal).

    The persistence layer serializes the term dictionary one ``Term.n3()``
    line per OID; this is the matching reader.  The whole string must be
    consumed by the term.

    Raises
    ------
    ParseError
        On malformed input or trailing characters.
    """
    scanner = _Scanner(text.strip(), lineno)
    term = scanner.read_object()  # objects admit all three term kinds
    if not scanner.at_end():
        raise ParseError("trailing characters after term",
                         line=lineno, column=scanner.pos + 1)
    return term


# -- serialization -----------------------------------------------------------


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "".join(t.n3() + "\n" for t in triples)


def write_ntriples(triples: Iterable[Triple], sink: TextIO) -> int:
    """Write triples to an open text file; return the number written."""
    count = 0
    for triple in triples:
        sink.write(triple.n3() + "\n")
        count += 1
    return count
