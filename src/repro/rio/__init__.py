"""RDF I/O: N-Triples and Turtle-subset parsing and serialization."""

from pathlib import Path
from typing import Iterator, Union

from ..errors import ParseError
from ..model import Graph, Triple
from .ntriples import parse_ntriples, parse_term, serialize_ntriples, write_ntriples
from .turtle import parse_turtle

__all__ = [
    "parse_ntriples",
    "parse_term",
    "parse_turtle",
    "parse_rdf",
    "load_graph",
    "serialize_ntriples",
    "write_ntriples",
]


def parse_rdf(text: str, syntax: str = "ntriples") -> Iterator[Triple]:
    """Parse RDF ``text`` in the given ``syntax`` (``ntriples`` or ``turtle``)."""
    if syntax in ("ntriples", "nt"):
        return parse_ntriples(text)
    if syntax in ("turtle", "ttl"):
        return parse_turtle(text)
    raise ParseError(f"unsupported RDF syntax: {syntax!r}")


def load_graph(source: Union[str, Path], syntax: str | None = None) -> Graph:
    """Load a :class:`~repro.model.Graph` from a file path or literal text.

    When ``source`` is a path to an existing file the syntax is inferred from
    the extension unless given; otherwise ``source`` is treated as document
    text (defaulting to N-Triples).
    """
    path = Path(source) if not isinstance(source, Path) else source
    try:
        is_file = path.is_file()
    except (OSError, ValueError):
        is_file = False
    if is_file:
        text = path.read_text(encoding="utf-8")
        if syntax is None:
            syntax = "turtle" if path.suffix in (".ttl", ".turtle") else "ntriples"
    else:
        text = str(source)
        if syntax is None:
            syntax = "ntriples"
    return Graph(parse_rdf(text, syntax=syntax))
