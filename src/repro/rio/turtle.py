"""A Turtle-subset parser.

Turtle is the human-friendly RDF syntax.  This parser supports the subset
that covers hand-written test fixtures and generated data:

* ``@prefix`` / ``@base`` directives and prefixed names (``ex:book1``),
* the ``a`` keyword for ``rdf:type``,
* predicate lists with ``;`` and object lists with ``,``,
* plain, language-tagged, typed, integer, decimal and boolean literals,
* blank node labels (``_:b1``) — but not anonymous ``[...]`` nodes,
* ``#`` comments.

Anything outside this subset raises :class:`~repro.errors.ParseError`.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ParseError
from ..model import BNode, IRI, Literal, Triple
from ..model.terms import RDF_TYPE, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER, unescape_literal


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse a Turtle document (subset) and yield triples."""
    parser = _TurtleParser(text)
    return iter(parser.parse())


class _TurtleParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.prefixes: dict[str, str] = {}
        self.base = ""

    # -- low level -----------------------------------------------------------

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.line)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return "" if self.at_end() else self.text[self.pos]

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
        return ch

    def skip_ws(self) -> None:
        while not self.at_end():
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "#":
                while not self.at_end() and self.peek() != "\n":
                    self.advance()
            else:
                return

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.advance()

    def match_keyword(self, keyword: str) -> bool:
        if self.text.startswith(keyword, self.pos):
            end = self.pos + len(keyword)
            if end >= len(self.text) or not (self.text[end].isalnum() or self.text[end] == "_"):
                for _ in keyword:
                    self.advance()
                return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse(self) -> List[Triple]:
        triples: List[Triple] = []
        self.skip_ws()
        while not self.at_end():
            if self.match_keyword("@prefix") or self.match_keyword("PREFIX"):
                self._parse_prefix()
            elif self.match_keyword("@base") or self.match_keyword("BASE"):
                self._parse_base()
            else:
                triples.extend(self._parse_statement())
            self.skip_ws()
        return triples

    def _parse_prefix(self) -> None:
        self.skip_ws()
        prefix = self._read_until(":")
        self.expect(":")
        self.skip_ws()
        iri = self._read_iri_ref()
        self.skip_ws()
        if self.peek() == ".":
            self.advance()
        self.prefixes[prefix] = iri

    def _parse_base(self) -> None:
        self.skip_ws()
        self.base = self._read_iri_ref()
        self.skip_ws()
        if self.peek() == ".":
            self.advance()

    def _parse_statement(self) -> List[Triple]:
        triples: List[Triple] = []
        subject = self._parse_term(position="subject")
        self.skip_ws()
        while True:
            predicate = self._parse_predicate()
            self.skip_ws()
            while True:
                obj = self._parse_term(position="object")
                triples.append(Triple(subject, predicate, obj))  # type: ignore[arg-type]
                self.skip_ws()
                if self.peek() == ",":
                    self.advance()
                    self.skip_ws()
                    continue
                break
            if self.peek() == ";":
                self.advance()
                self.skip_ws()
                if self.peek() in ".;":
                    # tolerate trailing ';' before '.'
                    continue
                continue
            break
        self.skip_ws()
        self.expect(".")
        return triples

    def _parse_predicate(self) -> IRI:
        if self.peek() == "a" and (self.pos + 1 >= len(self.text) or self.text[self.pos + 1] in " \t\r\n<"):
            self.advance()
            return IRI(RDF_TYPE)
        term = self._parse_term(position="predicate")
        if not isinstance(term, IRI):
            raise self.error("predicate must be an IRI")
        return term

    def _parse_term(self, position: str):
        self.skip_ws()
        ch = self.peek()
        if ch == "<":
            return IRI(self._read_iri_ref())
        if ch == "_":
            return self._read_bnode()
        if ch == '"':
            if position != "object":
                raise self.error(f"literal not allowed in {position} position")
            return self._read_literal()
        if ch.isdigit() or ch in "+-":
            if position != "object":
                raise self.error(f"numeric literal not allowed in {position} position")
            return self._read_number()
        if self.match_keyword("true"):
            return Literal("true", datatype=XSD_BOOLEAN)
        if self.match_keyword("false"):
            return Literal("false", datatype=XSD_BOOLEAN)
        return self._read_prefixed_name()

    # -- token readers -------------------------------------------------------

    def _read_until(self, stop: str) -> str:
        out = []
        while not self.at_end() and self.peek() != stop and not self.peek().isspace():
            out.append(self.advance())
        return "".join(out)

    def _read_iri_ref(self) -> str:
        self.expect("<")
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated IRI")
            ch = self.advance()
            if ch == ">":
                break
            out.append(ch)
        value = "".join(out)
        if value.startswith(("http://", "https://", "urn:", "mailto:", "file:")):
            return value
        return self.base + value

    def _read_bnode(self) -> BNode:
        if not self.text.startswith("_:", self.pos):
            raise self.error("blank node must start with '_:'")
        self.advance()
        self.advance()
        out = []
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_-"):
            out.append(self.advance())
        if not out:
            raise self.error("empty blank node label")
        return BNode("".join(out))

    def _read_literal(self) -> Literal:
        self.expect('"')
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            ch = self.advance()
            if ch == "\\":
                out.append(ch)
                out.append(self.advance())
                continue
            if ch == '"':
                break
            out.append(ch)
        lexical = unescape_literal("".join(out))
        if self.peek() == "@":
            self.advance()
            lang = []
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "-"):
                lang.append(self.advance())
            return Literal(lexical, language="".join(lang))
        if self.text.startswith("^^", self.pos):
            self.advance()
            self.advance()
            if self.peek() == "<":
                return Literal(lexical, datatype=self._read_iri_ref())
            datatype_iri = self._read_prefixed_name()
            return Literal(lexical, datatype=datatype_iri.value)
        return Literal(lexical)

    def _read_number(self) -> Literal:
        out = []
        if self.peek() in "+-":
            out.append(self.advance())
        is_decimal = False
        while not self.at_end() and (self.peek().isdigit() or self.peek() == "."):
            if self.peek() == ".":
                # a '.' not followed by a digit terminates the statement
                nxt = self.text[self.pos + 1] if self.pos + 1 < len(self.text) else ""
                if not nxt.isdigit():
                    break
                is_decimal = True
            out.append(self.advance())
        lexical = "".join(out)
        if not lexical or lexical in "+-":
            raise self.error("malformed numeric literal")
        datatype = XSD_DECIMAL if is_decimal else XSD_INTEGER
        return Literal(lexical, datatype=datatype)

    def _read_prefixed_name(self) -> IRI:
        out = []
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_-.:"):
            if self.peek() == "." and self._dot_terminates():
                break
            out.append(self.advance())
        token = "".join(out)
        if ":" not in token:
            raise self.error(f"expected a prefixed name, found {token!r}")
        prefix, _, local = token.partition(":")
        if prefix not in self.prefixes:
            raise self.error(f"undefined prefix {prefix!r}")
        return IRI(self.prefixes[prefix] + local)

    def _dot_terminates(self) -> bool:
        """A '.' ends the statement when followed by whitespace or EOF."""
        nxt = self.text[self.pos + 1] if self.pos + 1 < len(self.text) else ""
        return nxt == "" or nxt.isspace()
