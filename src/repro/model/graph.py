"""A small in-memory RDF graph.

:class:`Graph` is the convenience container users interact with before the
data is bulk-loaded into columnar storage: it holds decoded triples, supports
pattern matching with ``None`` wildcards, and simple set algebra.  It is not
meant to be fast — the columnar stores in :mod:`repro.storage` are the fast
path — but it is the natural unit for parsers, generators and tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set

from .terms import IRI, BNode, Literal, RDF_TYPE, Term
from .triples import Triple


class Graph:
    """A set of RDF triples with wildcard pattern matching."""

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self._triples: Set[Triple] = set()
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[IRI, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        if triples:
            for triple in triples:
                self.add(triple)

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return whether it was present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        return True

    # -- queries -------------------------------------------------------------

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern; ``None`` is a wildcard."""
        candidates: Iterable[Triple]
        if subject is not None:
            candidates = self._by_subject.get(subject, set())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, set())
        elif obj is not None:
            candidates = self._by_object.get(obj, set())
        else:
            candidates = self._triples
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def subjects(self) -> Set[Term]:
        """Return the set of distinct subjects."""
        return {s for s, bucket in self._by_subject.items() if bucket}

    def predicates(self) -> Set[IRI]:
        """Return the set of distinct predicates."""
        return {p for p, bucket in self._by_predicate.items() if bucket}

    def objects(self) -> Set[Term]:
        """Return the set of distinct objects."""
        return {o for o, bucket in self._by_object.items() if bucket}

    def properties_of(self, subject: Term) -> Set[IRI]:
        """Return the set of predicates that occur with ``subject``.

        This is exactly the *characteristic set* of the subject, the notion
        at the heart of the paper.
        """
        return {t.predicate for t in self._by_subject.get(subject, set())}

    def value(self, subject: Term, predicate: IRI) -> Optional[Term]:
        """Return one object for (subject, predicate), or ``None``."""
        for triple in self.match(subject=subject, predicate=predicate):
            return triple.object
        return None

    def values(self, subject: Term, predicate: IRI) -> list[Term]:
        """Return all objects for (subject, predicate)."""
        return [t.object for t in self.match(subject=subject, predicate=predicate)]

    def type_of(self, subject: Term) -> Optional[Term]:
        """Return the ``rdf:type`` object of ``subject`` if declared."""
        return self.value(subject, IRI(RDF_TYPE))

    # -- set behaviour -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __or__(self, other: "Graph") -> "Graph":
        merged = Graph(self._triples)
        merged.add_all(other)
        return merged

    # -- statistics ----------------------------------------------------------

    def predicate_frequencies(self) -> Dict[IRI, int]:
        """Return triple counts per predicate."""
        return {p: len(bucket) for p, bucket in self._by_predicate.items() if bucket}

    def literal_ratio(self) -> float:
        """Fraction of triples whose object is a literal (0 when empty)."""
        if not self._triples:
            return 0.0
        literals = sum(1 for t in self._triples if isinstance(t.object, Literal))
        return literals / len(self._triples)

    def describe(self, subject: Term) -> Dict[IRI, list[Term]]:
        """Return a property -> objects map for one subject."""
        out: Dict[IRI, list[Term]] = defaultdict(list)
        for triple in self._by_subject.get(subject, set()):
            out[triple.predicate].append(triple.object)
        return dict(out)
