"""RDF data model: terms, triples, graphs and dictionary encoding."""

from .dictionary import TermDictionary
from .graph import Graph
from .terms import (
    BNode,
    IRI,
    Literal,
    RDF_NS,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_NS,
    Term,
    XSD,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    literal_from_python,
    term_sort_key,
)
from .triples import EncodedTriple, Triple, triples_to_nt

__all__ = [
    "BNode",
    "EncodedTriple",
    "Graph",
    "IRI",
    "Literal",
    "RDF_NS",
    "RDF_TYPE",
    "RDFS_LABEL",
    "RDFS_NS",
    "Term",
    "TermDictionary",
    "Triple",
    "XSD",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DATETIME",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_STRING",
    "literal_from_python",
    "term_sort_key",
    "triples_to_nt",
]
