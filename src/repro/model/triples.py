"""Triple value objects, both decoded (:class:`Triple`) and OID-encoded
(:class:`EncodedTriple`).

The decoded form holds :class:`~repro.model.terms.Term` instances and is what
parsers produce and users see.  The encoded form is three integers (subject
OID, predicate OID, object OID) and is what storage, clustering and the query
engine operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

from .terms import IRI, BNode, Literal, Term


@dataclass(frozen=True, slots=True)
class Triple:
    """A decoded RDF triple ``(subject, predicate, object)``.

    The subject must be an IRI or blank node, the predicate an IRI, and the
    object any term — mirroring the RDF abstract syntax.
    """

    subject: Term
    predicate: IRI
    object: Term

    def __post_init__(self) -> None:
        if not isinstance(self.subject, (IRI, BNode)):
            raise TypeError(f"triple subject must be an IRI or BNode, got {type(self.subject).__name__}")
        if not isinstance(self.predicate, IRI):
            raise TypeError(f"triple predicate must be an IRI, got {type(self.predicate).__name__}")
        if not isinstance(self.object, (IRI, BNode, Literal)):
            raise TypeError(f"triple object must be a term, got {type(self.object).__name__}")

    def n3(self) -> str:
        """Return the N-Triples line (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object


class EncodedTriple(NamedTuple):
    """A dictionary-encoded triple of integer OIDs."""

    s: int
    p: int
    o: int

    def reordered(self, order: str) -> tuple[int, int, int]:
        """Return the components permuted according to ``order``.

        ``order`` is a permutation string such as ``"pso"`` or ``"pos"``.
        """
        mapping = {"s": self.s, "p": self.p, "o": self.o}
        return tuple(mapping[c] for c in order)  # type: ignore[return-value]


def triples_to_nt(triples: Iterable[Triple]) -> str:
    """Serialize an iterable of triples to an N-Triples document string."""
    return "".join(t.n3() + "\n" for t in triples)
