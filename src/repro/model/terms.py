"""RDF term model: IRIs, literals and blank nodes.

The term classes are small immutable value objects.  They deliberately keep
the surface close to the RDF 1.1 abstract syntax: a *term* is an IRI, a
literal (with optional datatype IRI or language tag) or a blank node.  The
library encodes terms to integer OIDs for storage (see
:mod:`repro.model.dictionary`); these classes are the user-facing,
decoded representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime
from functools import total_ordering
from typing import Union

# Well known namespaces -----------------------------------------------------

XSD = "http://www.w3.org/2001/XMLSchema#"
RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"

XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"
XSD_DATE = XSD + "date"
XSD_DATETIME = XSD + "dateTime"
RDF_TYPE = RDF_NS + "type"
RDFS_LABEL = RDFS_NS + "label"


class Term:
    """Abstract base class for RDF terms."""

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples serialization of this term."""
        raise NotImplementedError

    @property
    def is_iri(self) -> bool:
        return isinstance(self, IRI)

    @property
    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    @property
    def is_bnode(self) -> bool:
        return isinstance(self, BNode)


@total_ordering
@dataclass(frozen=True, slots=True)
class IRI(Term):
    """An IRI reference, e.g. ``IRI("http://example.org/book/1")``."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI value must be a non-empty string")

    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Return the part of the IRI after the last ``#`` or ``/``.

        Useful for generating human readable labels from IRIs, as the schema
        labeling pass does.
        """
        value = self.value
        for sep in ("#", "/", ":"):
            idx = value.rfind(sep)
            if 0 <= idx < len(value) - 1:
                return value[idx + 1:]
        return value

    def namespace(self) -> str:
        """Return the IRI up to and including the last ``#`` or ``/``."""
        value = self.value
        for sep in ("#", "/"):
            idx = value.rfind(sep)
            if idx >= 0:
                return value[: idx + 1]
        return value

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value

    def __lt__(self, other: object) -> bool:
        if isinstance(other, IRI):
            return self.value < other.value
        if isinstance(other, Term):
            return term_sort_key(self) < term_sort_key(other)
        return NotImplemented


@total_ordering
@dataclass(frozen=True, slots=True)
class BNode(Term):
    """A blank node with a document-scoped label."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("BNode label must be a non-empty string")

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"_:{self.label}"

    def __lt__(self, other: object) -> bool:
        if isinstance(other, BNode):
            return self.label < other.label
        if isinstance(other, Term):
            return term_sort_key(self) < term_sort_key(other)
        return NotImplemented


@total_ordering
@dataclass(frozen=True, slots=True)
class Literal(Term):
    """An RDF literal: lexical form plus optional datatype or language tag."""

    lexical: str
    datatype: str | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")

    def n3(self) -> str:
        escaped = escape_literal(self.lexical)
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    # -- typed value access --------------------------------------------------

    def effective_datatype(self) -> str:
        """Return the datatype IRI, defaulting to ``xsd:string``."""
        if self.language:
            return XSD_STRING
        return self.datatype or XSD_STRING

    def to_python(self) -> Union[str, int, float, bool, date, datetime]:
        """Convert the literal to the closest native Python value.

        Falls back to the lexical form when the datatype is unknown or the
        lexical form does not parse under the declared datatype (real-world
        RDF is dirty; we never raise here).
        """
        dt = self.effective_datatype()
        text = self.lexical
        try:
            if dt == XSD_INTEGER or dt.endswith(("#int", "#long", "#short", "#byte",
                                                 "#nonNegativeInteger", "#positiveInteger")):
                return int(text)
            if dt in (XSD_DECIMAL, XSD_DOUBLE) or dt.endswith("#float"):
                return float(text)
            if dt == XSD_BOOLEAN:
                return text.strip().lower() in ("true", "1")
            if dt == XSD_DATE:
                return date.fromisoformat(text)
            if dt == XSD_DATETIME:
                return datetime.fromisoformat(text.replace("Z", "+00:00"))
        except (ValueError, TypeError):
            return text
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.lexical

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return self.sort_key() < other.sort_key()
        if isinstance(other, Term):
            return term_sort_key(self) < term_sort_key(other)
        return NotImplemented

    def sort_key(self) -> tuple:
        """Return a key ordering literals by value within their value class.

        Numeric literals order numerically, dates chronologically, everything
        else lexicographically.  The class rank keeps heterogeneous literals
        comparable, which matters for assigning value-ordered object OIDs.
        """
        value = self.to_python()
        if isinstance(value, bool):
            return (0, int(value), self.lexical)
        if isinstance(value, (int, float)):
            return (1, float(value), self.lexical)
        if isinstance(value, datetime):
            return (2, value.isoformat(), self.lexical)
        if isinstance(value, date):
            return (2, value.isoformat(), self.lexical)
        return (3, self.lexical, self.lexical)


# -- helpers -----------------------------------------------------------------


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def escape_literal(text: str) -> str:
    """Escape a literal lexical form for N-Triples output.

    Control characters (and the Unicode line/paragraph separators, which some
    line splitters treat as newlines) are emitted as ``\\uXXXX`` escapes so
    the serialized form always stays on one physical line.
    """
    out = []
    for ch in text:
        escaped = _ESCAPES.get(ch)
        if escaped is not None:
            out.append(escaped)
        elif ord(ch) < 0x20 or ch in ("\x7f", "\x85", " ", " "):
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_literal(text: str) -> str:
    """Reverse :func:`escape_literal` plus ``\\uXXXX`` escapes."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\" or i + 1 >= n:
            out.append(ch)
            i += 1
            continue
        nxt = text[i + 1]
        if nxt == "n":
            out.append("\n")
            i += 2
        elif nxt == "r":
            out.append("\r")
            i += 2
        elif nxt == "t":
            out.append("\t")
            i += 2
        elif nxt == '"':
            out.append('"')
            i += 2
        elif nxt == "\\":
            out.append("\\")
            i += 2
        elif nxt == "u" and i + 6 <= n:
            out.append(chr(int(text[i + 2:i + 6], 16)))
            i += 6
        elif nxt == "U" and i + 10 <= n:
            out.append(chr(int(text[i + 2:i + 10], 16)))
            i += 10
        else:
            out.append(nxt)
            i += 2
    return "".join(out)


def term_sort_key(term: Term) -> tuple:
    """Total order over heterogeneous terms: IRIs < BNodes < Literals.

    Used when assigning OIDs so that the dictionary order is deterministic.
    """
    if isinstance(term, IRI):
        return (0, term.value, "", "")
    if isinstance(term, BNode):
        return (1, term.label, "", "")
    if isinstance(term, Literal):
        key = term.sort_key()
        return (2, key[0], key[1], key[2])
    raise TypeError(f"not an RDF term: {term!r}")


def literal_from_python(value: Union[str, int, float, bool, date, datetime]) -> Literal:
    """Build a typed :class:`Literal` from a native Python value."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, datetime):
        return Literal(value.isoformat(), datatype=XSD_DATETIME)
    if isinstance(value, date):
        return Literal(value.isoformat(), datatype=XSD_DATE)
    return Literal(str(value))
