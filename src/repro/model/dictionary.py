"""Dictionary encoding of RDF terms to integer OIDs.

RDF stores keep triples as integers.  The :class:`TermDictionary` maps each
distinct term to a dense OID and back.  Two aspects matter for this paper's
reproduction:

* **OID assignment order matters.**  The paper observes that the (arbitrary)
  parse-order OIDs given to subjects cause non-locality; subject clustering
  later *re-assigns* subject OIDs grouped by characteristic set.  The
  dictionary therefore supports bulk re-mapping of OIDs
  (:meth:`TermDictionary.remap`).
* **Value-ordered literal OIDs.**  The paper proposes ordering literal object
  OIDs "in a way that is meaningful to SPARQL value comparison semantics" so
  range predicates can be evaluated on OIDs directly.
  :meth:`TermDictionary.reassign_value_ordered_literals` implements that.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..errors import DictionaryError
from .terms import Literal, Term, term_sort_key
from .triples import EncodedTriple, Triple


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer OIDs.

    OIDs are assigned in order of first appearance (parse order), starting
    at 0.  The mapping is stable until :meth:`remap` or
    :meth:`reassign_value_ordered_literals` is called.
    """

    def __init__(self) -> None:
        self._term_to_oid: Dict[Term, int] = {}
        self._oid_to_term: List[Term] = []
        self._value_order_watermark = 0

    @property
    def value_order_watermark(self) -> int:
        """OIDs below this bound were covered by the last value-ordering pass.

        Literal OIDs ``< watermark`` are value-ordered among themselves;
        literals appended later (by the write path) sit at the end of the OID
        space in arrival order and must be range-checked individually until
        the next :meth:`reassign_value_ordered_literals` (run at load time
        and by ``RDFStore.compact``).
        """
        return self._value_order_watermark

    # -- encoding ------------------------------------------------------------

    def encode_term(self, term: Term) -> int:
        """Return the OID for ``term``, assigning a fresh one if unseen."""
        oid = self._term_to_oid.get(term)
        if oid is None:
            oid = len(self._oid_to_term)
            self._term_to_oid[term] = oid
            self._oid_to_term.append(term)
        return oid

    def lookup_term(self, term: Term) -> int | None:
        """Return the OID for ``term`` or ``None`` if it has never been seen."""
        return self._term_to_oid.get(term)

    def encode_triple(self, triple: Triple) -> EncodedTriple:
        """Encode a decoded triple into integer OIDs."""
        return EncodedTriple(
            self.encode_term(triple.subject),
            self.encode_term(triple.predicate),
            self.encode_term(triple.object),
        )

    def encode_triples(self, triples: Iterable[Triple]) -> Iterator[EncodedTriple]:
        """Encode a stream of triples lazily."""
        for triple in triples:
            yield self.encode_triple(triple)

    # -- decoding ------------------------------------------------------------

    def decode(self, oid: int) -> Term:
        """Return the term for ``oid``.

        Raises
        ------
        DictionaryError
            If the OID is out of range.
        """
        if 0 <= oid < len(self._oid_to_term):
            return self._oid_to_term[oid]
        raise DictionaryError(f"unknown OID {oid} (dictionary holds {len(self._oid_to_term)} terms)")

    def decode_triple(self, encoded: EncodedTriple) -> Triple:
        """Decode an encoded triple back to terms."""
        subject = self.decode(encoded.s)
        predicate = self.decode(encoded.p)
        obj = self.decode(encoded.o)
        return Triple(subject, predicate, obj)  # type: ignore[arg-type]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._oid_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_oid

    def terms(self) -> Iterator[Term]:
        """Iterate over terms in OID order."""
        return iter(self._oid_to_term)

    def items(self) -> Iterator[tuple[Term, int]]:
        """Iterate over ``(term, oid)`` pairs in OID order."""
        for oid, term in enumerate(self._oid_to_term):
            yield term, oid

    # -- copying -------------------------------------------------------------

    def clone(self) -> "TermDictionary":
        """An independent copy sharing the (immutable) term objects.

        Used by the store's copy-on-write path: before compaction or
        re-clustering re-maps OIDs in place, the live store switches to a
        clone so MVCC read snapshots keep decoding through the original.
        """
        twin = TermDictionary()
        twin._term_to_oid = dict(self._term_to_oid)
        twin._oid_to_term = list(self._oid_to_term)
        twin._value_order_watermark = self._value_order_watermark
        return twin

    # -- persistence ---------------------------------------------------------

    @classmethod
    def restore(cls, terms: Iterable[Term], value_order_watermark: int = 0) -> "TermDictionary":
        """Rebuild a dictionary from terms listed in OID order.

        Used by the snapshot reader: the persisted term file lists one term
        per OID, so re-enumerating it reproduces the exact OID assignment
        (including the value-ordered literal permutation) without re-running
        any ordering pass.

        Raises
        ------
        DictionaryError
            If the term list contains duplicates (the file is corrupt: a
            dictionary is a bijection).
        """
        dictionary = cls()
        for oid, term in enumerate(terms):
            if term in dictionary._term_to_oid:
                raise DictionaryError(
                    f"duplicate term at OID {oid}: {term!r} already has OID "
                    f"{dictionary._term_to_oid[term]}")
            dictionary._term_to_oid[term] = oid
            dictionary._oid_to_term.append(term)
        if not 0 <= value_order_watermark <= len(dictionary._oid_to_term):
            raise DictionaryError(
                f"value-order watermark {value_order_watermark} out of range for "
                f"{len(dictionary._oid_to_term)} terms")
        dictionary._value_order_watermark = int(value_order_watermark)
        return dictionary

    # -- re-mapping ----------------------------------------------------------

    def remap(self, mapping: Dict[int, int]) -> None:
        """Permute OIDs according to ``mapping`` (old OID -> new OID).

        The mapping must be a bijection over the full OID range.  OIDs absent
        from the mapping keep their value; the result must still be a
        permutation, otherwise :class:`DictionaryError` is raised.

        This is how subject clustering re-labels subject OIDs: after CS
        detection, subjects of the same CS receive a contiguous OID range.
        """
        size = len(self._oid_to_term)
        new_to_old: List[int | None] = [None] * size
        for old in range(size):
            new = mapping.get(old, old)
            if not 0 <= new < size:
                raise DictionaryError(f"remap target {new} out of range 0..{size - 1}")
            if new_to_old[new] is not None:
                raise DictionaryError(f"remap is not a bijection: new OID {new} assigned twice")
            new_to_old[new] = old
        new_terms: List[Term] = [self._oid_to_term[old] for old in new_to_old]  # type: ignore[index]
        self._oid_to_term = new_terms
        self._term_to_oid = {term: oid for oid, term in enumerate(new_terms)}

    def reassign_value_ordered_literals(self) -> Dict[int, int]:
        """Reassign literal OIDs so that OID order matches value order.

        Only literal OIDs are permuted (they trade positions among
        themselves); IRI and BNode OIDs are untouched.  Returns the applied
        mapping (old OID -> new OID) so that stored triples can be rewritten
        by the caller.
        """
        literal_oids = [oid for oid, term in enumerate(self._oid_to_term) if isinstance(term, Literal)]
        ranked = sorted(literal_oids, key=lambda oid: term_sort_key(self._oid_to_term[oid]))
        mapping = {old: new for old, new in zip(ranked, sorted(literal_oids))}
        identity = all(old == new for old, new in mapping.items())
        if not identity:
            self.remap(mapping)
        self._value_order_watermark = len(self._oid_to_term)
        return mapping

    def sorted_literal_oids(self) -> List[int]:
        """Return literal OIDs sorted by literal value order."""
        literal_oids = [oid for oid, term in enumerate(self._oid_to_term) if isinstance(term, Literal)]
        return sorted(literal_oids, key=lambda oid: term_sort_key(self._oid_to_term[oid]))
