"""High-level facade: :class:`RDFStore` and its configuration."""

from .store import RDFStore, StoreConfig

__all__ = ["RDFStore", "StoreConfig"]
