"""High-level facade: :class:`RDFStore` and its configuration."""

from .store import CheckpointReport, RDFStore, StoreConfig

__all__ = ["CheckpointReport", "RDFStore", "StoreConfig"]
