"""The :class:`RDFStore` facade: the library's main entry point.

A store is built in the order the paper's architecture prescribes:

1. :meth:`RDFStore.load` — parse / accept triples, dictionary-encode them
   (parse order), value-order the literal OIDs;
2. :meth:`RDFStore.discover_schema` — run characteristic-set discovery;
3. :meth:`RDFStore.cluster` — re-assign subject OIDs by CS (subject
   clustering), build the clustered store with optional zone maps;
4. query — :meth:`RDFStore.sparql` (Default, RDFscan/RDFjoin or cost-based
   ``optimized`` scheme) and :meth:`RDFStore.sql` over the emergent
   relational view.

``RDFStore.build(...)`` runs the whole pipeline in one call.  The store also
exposes cold/hot buffer-pool control so experiments can reproduce the
cold-vs-hot columns of Table I, an LRU plan cache so repeated queries skip
parse + plan, and :meth:`RDFStore.explain` to inspect plans with estimated
vs. actual cardinalities.

The store is writable after building: :meth:`RDFStore.update` executes
SPARQL Update requests (``INSERT DATA`` / ``DELETE DATA`` / ``DELETE
WHERE``) against a :class:`~repro.updates.DeltaStore` overlay, every access
path merges ``base ∪ delta − tombstones``, and :meth:`RDFStore.compact`
folds the accumulated delta back into the clustered base storage with
incremental emergent-schema maintenance (see ``docs/updates.md``).

The store is also durable: :meth:`RDFStore.save` serializes the whole
physical organization to a versioned on-disk database directory,
:meth:`RDFStore.open` reopens it *without* re-running discovery or
clustering (columns materialize lazily on first scan), every update on an
attached store is written ahead to a crash-tolerant log, and
:meth:`RDFStore.checkpoint` compacts + snapshots + truncates that log
(see ``docs/persistence.md``).

Finally, the store is safe under concurrent access: writers serialize on a
single-writer lock, readers pin MVCC snapshots (:meth:`RDFStore.snapshot`,
:meth:`RDFStore.session`) that stay consistent — and decodable — across
concurrent updates, compactions and checkpoints, and each update request's
atomicity comes from a per-request undo log whose cost is proportional to
the keys the request touched, never to the number of pending writes
(see ``docs/concurrency.md`` and :mod:`repro.server`).
"""

from __future__ import annotations

import copy
import os
import time

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..columnar import BufferPool, CostModel
from ..cs import DiscoveryConfig, EmergentSchema, discover_schema
from ..engine import ExecutionContext, execute_plan
from ..errors import (
    PendingUpdatesError,
    PersistenceError,
    QueryCancelledError,
    ReproError,
    StorageError,
)
from ..model import Graph, IRI, TermDictionary, Triple
from ..obs import (
    ActiveQueryRegistry,
    EventLog,
    MetricsRegistry,
    QueryObserver,
    QueryProfile,
    QueryTrace,
    SlowQueryLog,
    default_registry,
)
from ..persist import SnapshotInfo, SnapshotReader, write_snapshot
from ..rio import parse_rdf
from ..server import ReadWriteLock, SnapshotRegistry, StoreSession
from ..server.session import ReadSnapshot
from ..sparql import PlanCache, PlannerOptions, QueryResult, SparqlEngine, parse_update
from ..sql import Catalog, SqlEngine, SqlResult
from ..storage import (
    ClusteredStore,
    ClusteringPlan,
    ExhaustiveIndexStore,
    cluster_subjects,
    encode_graph,
    value_order_literals,
)
from ..updates import (
    CompactionReport,
    DeltaStore,
    UpdateApplier,
    UpdateJournal,
    UpdateResult,
    compact_store,
)


@dataclass
class StoreConfig:
    """Configuration of an :class:`RDFStore`.

    Attributes:
        discovery: characteristic-set discovery thresholds.
        buffer_pool_pages: capacity of the simulated buffer pool.
        page_size: simulated page size in values.
        zone_size: rows per zone in the clustered store's zone maps.
        build_exhaustive_indexes: build the six-permutation index store.
        build_zone_maps: build per-column zone maps when clustering.
        cost_model: counters-to-seconds conversion, also used by the
            cost-based optimizer to price candidate plans.
        plan_cache_size: entries kept in the LRU plan cache (0 disables
            caching).
        batch_size: rows per batch flowing between physical operators.
            Size 1 degenerates to row-at-a-time execution (kept as a
            differential-testing oracle); the default comes from the
            ``REPRO_BATCH_SIZE`` environment variable, falling back to
            1024.  A runtime tuning knob, not part of the on-disk layout.
        slow_query_seconds: queries at or above this wall time land in the
            store's slow-query log (see :meth:`RDFStore.slow_queries`).
        slow_query_log_size: ring-buffer capacity of the slow-query log
            (oldest entries are evicted first).
        event_log_size: in-memory capacity of the structured event log
            (see :meth:`RDFStore.events`; oldest events evicted first).
        event_log_path: optional file the event log also appends to, one
            JSON line per event (``None`` keeps events in memory only).
        event_log_max_bytes: rotation threshold of the event-log file —
            crossing it renames the file to ``<path>.1`` and starts fresh,
            bounding disk use at roughly twice this value.
        profile_queries: profile every query as if it were run with
            ``profile=True`` — per-operator CPU self time, rows, payload
            bytes and buffer-pool page attribution on each result's
            ``trace`` (see :mod:`repro.obs.profile`).  A runtime tuning
            knob, not part of the on-disk layout.
        profile_memory: also sample per-operator allocation peaks with
            ``tracemalloc`` when profiling (an order of magnitude of
            overhead — strictly a debugging switch).
    """

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    buffer_pool_pages: int = 1 << 20
    page_size: int = 1024
    zone_size: int = 1024
    build_exhaustive_indexes: bool = True
    build_zone_maps: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    plan_cache_size: int = 128
    batch_size: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_BATCH_SIZE", "1024")))
    slow_query_seconds: float = 0.25
    slow_query_log_size: int = 128
    event_log_size: int = 1024
    event_log_path: Optional[Path | str] = None
    event_log_max_bytes: int = 1 << 20
    profile_queries: bool = False
    profile_memory: bool = False

    def __post_init__(self) -> None:
        """Validate eagerly so misconfiguration fails at construction, not
        deep inside ``build()``."""
        if not isinstance(self.buffer_pool_pages, int) or self.buffer_pool_pages < 1:
            raise StorageError(
                f"buffer_pool_pages must be a positive integer, got {self.buffer_pool_pages!r}")
        if not isinstance(self.page_size, int) or self.page_size < 1:
            raise StorageError(
                f"page_size must be a positive integer, got {self.page_size!r}")
        if not isinstance(self.zone_size, int) or self.zone_size < 1:
            raise StorageError(
                f"zone_size must be a positive integer, got {self.zone_size!r}")
        if not isinstance(self.plan_cache_size, int) or self.plan_cache_size < 0:
            raise StorageError(
                f"plan_cache_size must be a non-negative integer (0 disables caching), "
                f"got {self.plan_cache_size!r}")
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise StorageError(
                f"batch_size must be a positive integer, got {self.batch_size!r}")
        if not isinstance(self.slow_query_seconds, (int, float)) or self.slow_query_seconds < 0:
            raise StorageError(
                f"slow_query_seconds must be a non-negative number, "
                f"got {self.slow_query_seconds!r}")
        if not isinstance(self.slow_query_log_size, int) or self.slow_query_log_size < 1:
            raise StorageError(
                f"slow_query_log_size must be a positive integer, "
                f"got {self.slow_query_log_size!r}")
        if not isinstance(self.event_log_size, int) or self.event_log_size < 1:
            raise StorageError(
                f"event_log_size must be a positive integer, "
                f"got {self.event_log_size!r}")
        if not isinstance(self.event_log_max_bytes, int) or self.event_log_max_bytes < 1:
            raise StorageError(
                f"event_log_max_bytes must be a positive integer, "
                f"got {self.event_log_max_bytes!r}")
        if not isinstance(self.profile_queries, bool):
            raise StorageError(
                f"profile_queries must be a bool, got {self.profile_queries!r}")
        if not isinstance(self.profile_memory, bool):
            raise StorageError(
                f"profile_memory must be a bool, got {self.profile_memory!r}")


@dataclass(frozen=True)
class CheckpointReport:
    """Outcome of one :meth:`RDFStore.checkpoint`: compaction + snapshot."""

    compaction: CompactionReport
    snapshot: SnapshotInfo

    def describe(self) -> str:
        return (f"checkpoint: {self.compaction.describe()}; snapshot at "
                f"{self.snapshot.path} ({self.snapshot.triples} triples, "
                f"{self.snapshot.files} files, {self.snapshot.data_bytes} bytes)")


class RDFStore:
    """Self-organizing RDF store: triples in, SQL/SPARQL out."""

    def __init__(self, config: Optional[StoreConfig] = None) -> None:
        self.config = config or StoreConfig()
        self.dictionary = TermDictionary()
        self._matrix_data: Optional[np.ndarray] = None
        self._matrix_loader = None
        self._matrix_rows: Optional[int] = None
        self.matrix = np.empty((0, 3), dtype=np.int64)
        self.pool = BufferPool(capacity_pages=self.config.buffer_pool_pages,
                               page_size=self.config.page_size)
        self.schema: Optional[EmergentSchema] = None
        self.index_store: Optional[ExhaustiveIndexStore] = None
        self.clustered_store: Optional[ClusteredStore] = None
        self.clustering_plan: Optional[ClusteringPlan] = None
        self.catalog: Optional[Catalog] = None
        self.plan_cache = PlanCache(capacity=self.config.plan_cache_size)
        self.delta = DeltaStore(schema=None, pool=self.pool)
        self.journal = UpdateJournal()
        self.db_path: Optional[Path] = None
        self._context: Optional[ExecutionContext] = None
        self._sparql_engine: Optional[SparqlEngine] = None
        self._clustered = False
        self.generation = 0
        """Base-structure generation: bumped on every physical rebuild.
        Together with ``delta.version`` it identifies one immutable state —
        the version pair an MVCC read snapshot pins."""
        self.metrics_registry = MetricsRegistry()
        """This store's metrics (see :mod:`repro.obs`).  *Store-lifetime*,
        not generation-lifetime: it survives rebuilds, compactions and even
        ``open(into=)`` state swaps, so counters never reset underneath a
        scraper."""
        self.slow_query_log = SlowQueryLog(
            threshold_seconds=self.config.slow_query_seconds,
            capacity=self.config.slow_query_log_size)
        self._observer = QueryObserver(self.metrics_registry, self.slow_query_log)
        self.event_log = EventLog(capacity=self.config.event_log_size,
                                  path=self.config.event_log_path,
                                  max_bytes=self.config.event_log_max_bytes)
        """Structured lifecycle events (query start/finish/cancel, updates,
        compactions, checkpoints, WAL replay).  Store-lifetime, like the
        metrics registry."""
        self.query_registry = ActiveQueryRegistry(events=self.event_log,
                                                  metrics=self.metrics_registry)
        """Live registry of in-flight queries; assigns ids, carries the
        cooperative-cancellation flags.  Store-lifetime — ids never reset
        under a running ``top`` view."""
        self._last_trace: Optional[QueryTrace] = None
        self._rwlock = ReadWriteLock(metrics=self.metrics_registry)
        self._snapshots = SnapshotRegistry()
        self._update_seconds = self.metrics_registry.histogram(
            "update_seconds", "Wall time of SPARQL Update requests.")
        self._compaction_seconds = self.metrics_registry.histogram(
            "compaction_seconds", "Wall time of delta-into-base compactions.")
        self._checkpoint_seconds = self.metrics_registry.histogram(
            "checkpoint_seconds", "Wall time of full checkpoints (compact+snapshot).")
        self._undo_log_entries = self.metrics_registry.histogram(
            "undo_log_entries", "Undo-log depth (keys touched) per update request.",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000))
        self._register_collector_metrics()

    def _register_collector_metrics(self) -> None:
        """Adapt existing ``stats()``-style introspection into the registry.

        Callback-backed metrics read the live values at scrape time — no
        double bookkeeping, and the closures read ``self``'s *current*
        attributes, so they keep tracking the store across rebuilds and
        ``open(into=)`` swaps.
        """
        registry = self.metrics_registry
        registry.counter("buffer_pool_page_hits_total",
                         "Buffer-pool page accesses served from cache.",
                         fn=lambda: self.pool.tracker.page_hits)
        registry.counter("buffer_pool_page_reads_total",
                         "Buffer-pool page misses (simulated disk reads).",
                         fn=lambda: self.pool.tracker.page_reads)
        registry.counter("buffer_pool_evictions_total",
                         "Pages evicted by LRU capacity pressure.",
                         fn=lambda: self.pool.evictions)
        registry.counter("buffer_pool_lazy_values_loaded_total",
                         "Column values materialized from disk by lazy segments.",
                         fn=lambda: self.pool.lazy_values_loaded)
        registry.gauge("buffer_pool_cached_pages", "Pages currently cached.",
                       fn=lambda: self.pool.cached_page_count())
        registry.gauge("buffer_pool_resident_bytes",
                       "Bytes of column data currently cached.",
                       fn=lambda: self.pool.stats()["resident_bytes"])
        # each total folds in the per-version snapshot caches (server reads)
        # alongside the store's own cache, and survives clears/rotation
        registry.counter("plan_cache_hits_total",
                         "Plan-cache hits over the store lifetime (survives clears).",
                         fn=lambda: (self.plan_cache.lifetime_hits
                                     + self._snapshots.plan_cache_stats()["hits"]))
        registry.counter("plan_cache_misses_total",
                         "Plan-cache misses over the store lifetime (survives clears).",
                         fn=lambda: (self.plan_cache.lifetime_misses
                                     + self._snapshots.plan_cache_stats()["misses"]))
        registry.counter("plan_cache_evictions_total",
                         "Plan-cache LRU evictions over the store lifetime.",
                         fn=lambda: (self.plan_cache.lifetime_evictions
                                     + self._snapshots.plan_cache_stats()["evictions"]))
        registry.gauge("plan_cache_entries", "Plans currently cached.",
                       fn=lambda: (len(self.plan_cache)
                                   + self._snapshots.plan_cache_stats()["entries"]))
        registry.gauge("plan_cache_generation",
                       "Plan-cache invalidation generation.",
                       fn=lambda: self.plan_cache.generation)
        registry.gauge("delta_inserts", "Pending (uncompacted) inserted triples.",
                       fn=lambda: self.delta.insert_count())
        registry.gauge("delta_tombstones", "Pending (uncompacted) delete tombstones.",
                       fn=lambda: self.delta.tombstone_count())
        registry.gauge("delta_deferred_reclaim_depth",
                       "Delta versions whose page reclamation waits on open pins.",
                       fn=lambda: self.delta.deferred_reclaim_depth())
        registry.gauge("open_snapshots", "MVCC read snapshots currently pinned.",
                       fn=lambda: self._snapshots.active_count())
        registry.gauge("pinned_delta_versions",
                       "Distinct delta versions referenced by open snapshots.",
                       fn=lambda: len(self.delta.pinned_versions()))
        registry.gauge("store_generation", "Base-structure rebuild generation.",
                       fn=lambda: self.generation)
        registry.gauge("live_triples",
                       "Triples visible to queries (base + delta - tombstones).",
                       fn=lambda: self.live_triple_count())
        registry.gauge("wal_records",
                       "Intact records in the attached WAL (0 when detached).",
                       fn=lambda: (self.journal.wal.record_count()
                                   if self.journal.wal is not None else 0))
        registry.gauge("slow_queries_logged",
                       "Entries currently held by the slow-query log.",
                       fn=lambda: len(self.slow_query_log))
        registry.gauge("event_log_entries",
                       "Events currently buffered by the structured event log.",
                       fn=lambda: len(self.event_log))

    # -- construction pipeline ----------------------------------------------------

    @classmethod
    def build(
        cls,
        source: Graph | Iterable[Triple] | str,
        config: Optional[StoreConfig] = None,
        sort_keys: Optional[Dict[int, int]] = None,
        sort_key_names: Optional[Dict[str, str]] = None,
        cluster: bool = True,
    ) -> "RDFStore":
        """Run the full pipeline: load, discover, (optionally) cluster.

        Args:
            source: a :class:`Graph`, an iterable of :class:`Triple`, or RDF
                text (N-Triples).
            config: store configuration; defaults to :class:`StoreConfig`.
            sort_keys: CS id -> predicate OID to sub-order each CS on.
            sort_key_names: table label -> predicate IRI (friendlier variant).
            cluster: when ``False``, stop after schema discovery and build
                only the exhaustive indexes (the ParseOrder baseline).

        Returns:
            The fully built store, ready for :meth:`sparql` / :meth:`sql`.

        Raises:
            ParseError: when RDF text cannot be parsed.
            StorageError: when the source contains no triples.
        """
        store = cls(config)
        store.load(source)
        store.discover_schema()
        if cluster:
            store.cluster(sort_keys=sort_keys, sort_key_names=sort_key_names)
        else:
            store.build_indexes()
        return store

    def load(self, source: Graph | Iterable[Triple] | str, syntax: str = "ntriples") -> int:
        """Load decoded triples (or RDF text) and encode them in parse order.

        Loading invalidates every derived structure (schema, indexes,
        clustered store, plan cache); duplicate triples are dropped.

        Args:
            source: a :class:`Graph`, an iterable of :class:`Triple`, or RDF
                text in the given ``syntax`` (``ntriples`` or ``turtle``).
            syntax: serialization of ``source`` when it is a string.

        Returns:
            The total number of distinct triples now loaded.

        Raises:
            ParseError: when RDF text cannot be parsed.
            PendingUpdatesError: when uncompacted updates are pending —
                reloading re-encodes OIDs and would silently drop
                acknowledged writes; call :meth:`compact` first.
        """
        with self._rwlock.write_locked():
            if self.has_pending_updates():
                raise PendingUpdatesError(
                    "cannot load with pending updates; call compact() first")
            if isinstance(source, str):
                triples: Iterable[Triple] = parse_rdf(source, syntax=syntax)
            else:
                triples = source
            # loading appends to and re-orders the dictionary in place; open
            # read snapshots keep the pre-load dictionary via clone-on-write
            self._preserve_pinned_state()
            self.dictionary, self.matrix = encode_graph(triples, self.dictionary)
            self.matrix = value_order_literals(self.matrix, self.dictionary)
            self._invalidate()
            # loading changes triple *content*, so any attached on-disk database
            # no longer describes this store; detach rather than let the WAL
            # collect records that would replay against the wrong base
            self._detach_database()
            return int(self.matrix.shape[0])

    def discover_schema(self, config: Optional[DiscoveryConfig] = None) -> EmergentSchema:
        """Run characteristic-set discovery over the loaded triples.

        Args:
            config: discovery thresholds; defaults to the store config's.

        Returns:
            The discovered :class:`EmergentSchema` (also kept on the store).

        Raises:
            StorageError: when no triples have been loaded yet.
        """
        with self._rwlock.write_locked():
            if self.matrix.shape[0] == 0:
                raise StorageError("no triples loaded; call load() first")
            self.schema = discover_schema(self.matrix, self.dictionary,
                                          config or self.config.discovery)
            self.catalog = Catalog(self.schema, self.dictionary)
            self.delta.attach_schema(self.schema)
            self._invalidate(keep_schema=True)
            return self.schema

    def cluster(self, sort_keys: Optional[Dict[int, int]] = None,
                sort_key_names: Optional[Dict[str, str]] = None) -> ClusteringPlan:
        """Apply subject clustering and (re)build the physical stores.

        Args:
            sort_keys: CS id -> predicate OID used to sub-order the CS's
                subjects.
            sort_key_names: friendlier variant mapping table label ->
                predicate IRI string (unknown labels are ignored).

        Returns:
            The :class:`ClusteringPlan` describing the OID re-assignment.

        Raises:
            StorageError: when the schema has not been discovered yet.
            PendingUpdatesError: when uncompacted updates are pending
                (clustering remaps subject OIDs, which would invalidate the
                delta — call :meth:`compact` first).
        """
        with self._rwlock.write_locked():
            if self.has_pending_updates():
                raise PendingUpdatesError(
                    "cannot re-cluster with pending updates; call compact() first")
            # clustering re-maps subject OIDs in the shared dictionary; open
            # read snapshots keep the pre-clustering dictionary
            self._preserve_pinned_state()
            schema = self.require_schema()
            resolved = dict(sort_keys or {})
            if sort_key_names:
                resolved.update(self._resolve_sort_key_names(sort_key_names))
            self.matrix, self.clustering_plan = cluster_subjects(
                self.matrix, self.dictionary, schema, resolved)
            self._clustered = True
            self.build_indexes()
            return self.clustering_plan

    def build_indexes(self) -> None:
        """Build the exhaustive index store and (when clustered) the clustered store.

        Rebuilding changes plan validity, so the plan cache and the cached
        SPARQL engine are dropped alongside the execution context.
        """
        schema = self.schema
        # a rebuild publishes a new immutable base state: bump the generation
        # so the (generation, delta version) pair a snapshot pins is unique
        self.generation += 1
        # rebuilding replaces every (possibly lazily loading) structure with
        # eager in-memory ones; drop the stale lazy-segment bookkeeping so
        # buffer_pool_stats() does not report dead segments as pending
        self.pool.reset_lazy_registry()
        if self.config.build_exhaustive_indexes:
            self.index_store = ExhaustiveIndexStore(self.matrix, pool=self.pool)
        if schema is not None and self._clustered:
            zone_map_properties = None
            if self.config.build_zone_maps:
                zone_map_properties = {cs_id: list(table.properties)
                                       for cs_id, table in schema.tables.items()}
            self.clustered_store = ClusteredStore.build(
                self.matrix, schema, pool=self.pool,
                zone_map_properties=zone_map_properties,
                zone_size=self.config.zone_size,
            )
        self._context = None
        self._sparql_engine = None
        self.plan_cache.clear()

    def _resolve_sort_key_names(self, sort_key_names: Dict[str, str]) -> Dict[int, int]:
        schema = self.require_schema()
        resolved: Dict[int, int] = {}
        for table_label, predicate_iri in sort_key_names.items():
            predicate_oid = self.dictionary.lookup_term(IRI(predicate_iri))
            if predicate_oid is None:
                continue
            for table in schema.tables.values():
                if (table.label or f"cs{table.cs_id}").lower() == table_label.lower():
                    resolved[table.cs_id] = predicate_oid
        return resolved

    def _invalidate(self, keep_schema: bool = False) -> None:
        self.index_store = None
        self.clustered_store = None
        self.clustering_plan = None
        self._clustered = False
        self._context = None
        self._sparql_engine = None
        self.plan_cache.clear()
        if not keep_schema:
            self.schema = None
            self.catalog = None
            # a full reload re-encodes (and value-reorders) OIDs: any pending
            # delta would reference stale OIDs, so it is dropped
            self.delta.clear()
            self.delta.attach_schema(None)

    # -- accessors --------------------------------------------------------------------

    def require_schema(self) -> EmergentSchema:
        if self.schema is None:
            raise StorageError("schema not discovered yet; call discover_schema() first")
        return self.schema

    def require_catalog(self) -> Catalog:
        if self.catalog is None:
            raise StorageError("catalog not available; call discover_schema() first")
        return self.catalog

    @property
    def is_clustered(self) -> bool:
        return self._clustered

    @property
    def matrix(self) -> np.ndarray:
        """The base ``(n, 3)`` triple matrix.

        On a store reopened from disk the matrix stays on disk until an
        operation actually needs it (compaction, re-clustering,
        re-discovery) — queries read the clustered store and projections,
        never this array.
        """
        if self._matrix_data is None:
            loaded = np.asarray(self._matrix_loader(), dtype=np.int64).reshape(-1, 3)
            if self._matrix_rows is not None and loaded.shape[0] != self._matrix_rows:
                raise StorageError(
                    f"base matrix loader produced {loaded.shape[0]} rows, "
                    f"expected {self._matrix_rows}")
            self._matrix_data = loaded
            self._matrix_loader = None
            if self._matrix_rows is not None:
                self.pool.note_materialized("base.matrix", int(loaded.size))
        return self._matrix_data

    @matrix.setter
    def matrix(self, value: np.ndarray) -> None:
        replacing_lazy = getattr(self, "_matrix_loader", None) is not None
        self._matrix_data = value
        self._matrix_loader = None
        self._matrix_rows = None
        if replacing_lazy:
            self.pool.unregister_lazy_segment("base.matrix")

    def _set_lazy_matrix(self, loader, rows: int) -> None:
        """Defer the base matrix behind ``loader`` (snapshot restore path)."""
        self._matrix_data = None
        self._matrix_loader = loader
        self._matrix_rows = int(rows)
        self.pool.register_lazy_segment("base.matrix", rows * 3)

    def triple_count(self) -> int:
        """Triples in the base store (excluding pending writes)."""
        if self._matrix_data is None and self._matrix_rows is not None:
            return self._matrix_rows
        return int(self.matrix.shape[0])

    def live_triple_count(self) -> int:
        """Triples currently visible to queries: base ∪ delta − tombstones."""
        return (self.triple_count() + self.delta.insert_count()
                - self.delta.tombstone_count())

    def context(self) -> ExecutionContext:
        """The execution context shared by SPARQL and SQL engines."""
        if self._context is None:
            if self.index_store is None and self.clustered_store is None:
                self.build_indexes()
            self._context = ExecutionContext(
                dictionary=self.dictionary,
                pool=self.pool,
                index_store=self.index_store,
                clustered_store=self.clustered_store,
                schema=self.schema,
                cost_model=self.config.cost_model,
                delta=self.delta,
                batch_size=self.config.batch_size,
                metrics=self.metrics_registry,
            )
        # batch_size is a live runtime knob: the context is cached, so pick
        # up config changes here (snapshots still capture it at pin time)
        self._context.batch_size = self.config.batch_size
        return self._context

    # -- cache control ------------------------------------------------------------------

    def reset_cold(self) -> None:
        """Empty the buffer pool (cold cache).

        The pool is shared by every attached structure — base permutation
        indexes, clustered CS blocks, the irregular table and the delta
        overlay's columns — so one reset covers them all.
        """
        self.pool.reset_cold()

    def warm(self) -> None:
        """Pre-load every attached structure's pages (hot cache).

        Covers the exhaustive indexes, the clustered store (CS blocks plus
        the irregular table) and the pending delta's columns, so cold/hot
        experiments stay honest after writes.
        """
        if self.index_store is not None:
            self.index_store.warm()
        if self.clustered_store is not None:
            self.clustered_store.warm()
        if self.has_pending_updates():
            self.delta.warm()

    # -- writing -----------------------------------------------------------------------

    def require_delta(self) -> DeltaStore:
        """The store's delta overlay (always present, possibly empty)."""
        return self.delta

    def has_pending_updates(self) -> bool:
        """Whether uncompacted inserts or deletes are pending."""
        return not self.delta.is_empty()

    def update(self, text: str) -> UpdateResult:
        """Execute a SPARQL Update request against the delta overlay.

        Supported forms: ``INSERT DATA``, ``DELETE DATA`` and ``DELETE
        WHERE`` (chainable with ``;``).  Writes go to the
        :class:`~repro.updates.DeltaStore`; the base structures stay
        untouched, yet every subsequent SPARQL/SQL query sees
        ``base ∪ delta − tombstones``.  A request is atomic: if any
        statement fails, the statements already applied are rolled back.
        Every call invalidates the plan cache.  Call :meth:`compact` to
        fold the delta into base storage.

        Args:
            text: the update request text.

        Returns:
            An :class:`~repro.updates.UpdateResult` with the number of
            triples actually inserted and deleted (RDF set semantics:
            re-inserting an existing triple or deleting a missing one is a
            no-op).

        Raises:
            ParseError: when the text is not in the supported update subset.
        """
        # parsing is pure — do it before taking the writer lock so a burst of
        # updates keeps the exclusive sections (which block new snapshot
        # pins) as short as possible, and unparsable requests never serialize
        request = parse_update(text)
        started = time.perf_counter()
        with self._rwlock.write_locked():
            undo = self.delta.begin_request()
            try:
                result = UpdateApplier(self).apply(request)
                if result.changed:
                    # journal only state-changing requests: the journal (and the
                    # attached WAL, when the store is durable) is what save() and
                    # crash recovery replay, and no-ops would just slow replay
                    # down.  Recording inside the try keeps apply + log atomic: a
                    # failed WAL append (disk full) rolls the request back, so a
                    # query can never observe an update that would not survive a
                    # crash.
                    self.journal.record(text)
            except Exception:
                # replay the undo log backwards: O(keys this request touched),
                # never O(pending writes) — the property that keeps a burst of
                # N uncompacted updates linear instead of quadratic
                self.delta.abort_request(undo)
                self.metrics_registry.counter(
                    "update_errors_total", "Update requests rolled back.").inc()
                raise
            else:
                self.delta.commit_request(undo)
            finally:
                # even a rolled-back request may have run queries (DELETE WHERE)
                # and appended dictionary terms; drop plan/encoder caches either way
                self._after_write()
            self._update_seconds.observe(time.perf_counter() - started)
            self._undo_log_entries.observe(len(undo))
            registry = self.metrics_registry
            registry.counter("updates_total",
                             "Committed SPARQL Update requests.").inc()
            registry.counter("triples_inserted_total",
                             "Triples inserted by updates.").inc(result.inserted)
            registry.counter("triples_deleted_total",
                             "Triples deleted by updates.").inc(result.deleted)
            if result.changed and not self.journal.is_replaying:
                self.event_log.emit("update", inserted=result.inserted,
                                    deleted=result.deleted)
            return result

    def _preserve_pinned_state(self) -> None:
        """Clone-on-write before an in-place mutation of shared state.

        Updates only *append* to the dictionary (existing OIDs stay stable),
        so snapshots survive them without copies.  Compaction, clustering and
        reloading are different: they re-map OIDs inside the dictionary and
        mutate schema tables in place.  When read snapshots are pinned, the
        live store therefore switches to fresh clones and leaves the original
        objects — which every open snapshot references directly — untouched.
        A no-op when no snapshot is open (the common, single-threaded case).
        """
        if self._snapshots.active_count() == 0:
            return
        self.dictionary = self.dictionary.clone()
        if self.schema is not None:
            reduced = (self.catalog.reduced_schemas_state()
                       if self.catalog is not None else {})
            self.schema = copy.deepcopy(self.schema)
            self.catalog = Catalog(self.schema, self.dictionary)
            if reduced:
                self.catalog.restore_reduced_schemas(reduced)
            self.delta.attach_schema(self.schema)
        self._context = None
        self._sparql_engine = None

    # -- concurrent access ---------------------------------------------------------------

    def snapshot(self) -> ReadSnapshot:
        """Pin an MVCC read snapshot of the current committed state.

        The snapshot is a cheap versioned handle — base generation plus
        delta version — over immutable structures; queries through it never
        block on, and never observe, concurrent updates, compactions or
        checkpoints.  Release it with ``close()`` (or use it as a context
        manager) so superseded delta index pages can be reclaimed.

        Returns:
            An open :class:`~repro.server.ReadSnapshot`.
        """
        if self.index_store is None and self.clustered_store is None:
            # one-time lazy build (the same one context() would do), done
            # under the writer lock so concurrent first readers don't race
            with self._rwlock.write_locked():
                if self.index_store is None and self.clustered_store is None:
                    self.build_indexes()
        with self._rwlock.read_locked():
            return self._snapshots.acquire(self)

    def session(self) -> StoreSession:
        """A per-client handle: snapshot reads, single-writer writes.

        Each read auto-pins the latest snapshot, or a sticky one between
        ``begin()``/``end()`` (repeatable reads).  See
        :class:`~repro.server.StoreSession` and ``docs/concurrency.md``.
        """
        return StoreSession(self)

    def open_snapshot_count(self) -> int:
        """Number of read snapshots currently pinned on this store."""
        return self._snapshots.active_count()

    def _after_write(self) -> None:
        """Invalidate plan-dependent caches after a write.

        Plans embed zone-map push-downs and constant OIDs that are only
        valid for one delta state, so the plan cache is cleared; the value
        encoder re-indexes literals because updates may have appended new
        ones.  The physical stores and execution context survive — a write
        is never a rebuild.
        """
        self.plan_cache.clear()
        if self._context is not None:
            self._context.encoder.invalidate()

    def compact(self) -> CompactionReport:
        """Fold the pending delta into base storage (the explicit heavy step).

        Merges ``base − tombstones + inserts`` into a new base matrix,
        incrementally maintains the emergent schema (new subjects join a
        property-set-matching CS or the leftover bucket, emptied subjects
        leave, per-column statistics and coverage refresh), restores the
        value-ordered literal OID invariant, rebuilds the physical stores
        and the SQL catalog, and resets the plan cache and cardinality
        statistics.  Characteristic-set discovery and subject clustering
        are *not* re-run — call :meth:`discover_schema` / :meth:`cluster`
        explicitly when the data has drifted far enough.

        Open read snapshots are unaffected: they keep answering (and
        decoding) from the pre-compaction state.  When snapshots are
        pinned, the dictionary and schema are cloned before being mutated
        (copy-on-write), and the pinned delta versions' index pages stay in
        the buffer pool until the last snapshot is released.

        Returns:
            A :class:`~repro.updates.CompactionReport`; a no-op report when
            nothing was pending.
        """
        started = time.perf_counter()
        with self._rwlock.write_locked():
            # compaction re-maps literal OIDs (value-order restore) and
            # mutates schema tables in place; clone both for the live store
            # when open snapshots still reference the current objects
            self._preserve_pinned_state()
            report = compact_store(self)
            if report.merged_inserts or report.applied_deletes:
                self.matrix = value_order_literals(self.matrix, self.dictionary)
                if self.schema is not None:
                    self.catalog = Catalog(self.schema, self.dictionary)
                self.build_indexes()
                self.metrics_registry.counter(
                    "compactions_total", "Delta-into-base compactions applied.").inc()
                self._compaction_seconds.observe(time.perf_counter() - started)
                self.event_log.emit("compaction",
                                    merged_inserts=report.merged_inserts,
                                    applied_deletes=report.applied_deletes,
                                    seconds=time.perf_counter() - started)
            return report

    # -- persistence --------------------------------------------------------------------

    def save(self, path: Path | str) -> SnapshotInfo:
        """Serialize the store into an on-disk database directory.

        Writes the dictionary, schema, base matrix, every clustered column
        and permutation projection (each as a checksummed binary file),
        per-column statistics, zone maps and a manifest — then creates a
        fresh write-ahead log for the new snapshot generation.  Pending
        (uncompacted) updates are **not lost**: their request texts seed the
        new WAL and are replayed by :meth:`open`.

        Saving also *attaches* the store to ``path``: every subsequent
        :meth:`update` is appended to the WAL (and fsynced) before it
        returns, so acknowledged writes survive a crash.

        Args:
            path: target directory; created if missing.  An existing
                directory is only overwritten when it already holds a repro
                database (or is empty).

        Returns:
            A :class:`~repro.persist.SnapshotInfo` describing what was
            written.

        Raises:
            PersistenceError: when the target exists but is not a repro
                database directory.
        """
        with self._rwlock.write_locked():
            info = write_snapshot(self, path, attach=True)
            self.db_path = Path(path)
            return info

    @classmethod
    def open(cls, path: Path | str, config: Optional[StoreConfig] = None,
             into: Optional["RDFStore"] = None) -> "RDFStore":
        """Reopen a saved database without rebuilding anything.

        Restores the dictionary (with its value-order watermark), the
        emergent schema, SQL catalog and registered reduced schemas, the
        clustered store and permutation indexes, per-column statistics,
        zone maps, predicate counts and the plan-cache generation — so the
        optimizer prices and orders plans exactly as the saved store did.
        Characteristic-set discovery and subject clustering are **not**
        re-run, and column data stays on disk until a scan first touches it
        (lazy loading; observe it via :meth:`buffer_pool_stats`).

        Any intact write-ahead-log records are replayed in order, restoring
        the delta overlay of updates applied (or still pending) after the
        snapshot was taken.  Replay stops at the first torn or corrupt
        record — exactly the tail a crash mid-append can leave behind.

        Args:
            path: the database directory written by :meth:`save`.
            config: optional configuration override; defaults to the
                configuration persisted in the manifest (discovery
                thresholds fall back to defaults — they only matter for
                explicit re-discovery).
            into: an existing store to reopen in place (its state is
                replaced wholesale).  Mostly useful to re-point a served
                store at a new snapshot without rewiring references.

        Returns:
            The opened store (``into`` when given, else a new instance).

        Raises:
            PersistenceError: when the directory is missing, corrupt,
                version-incompatible, or its WAL belongs to a different
                snapshot generation.
            PendingUpdatesError: when ``into`` still holds uncompacted
                writes — replacing its state would silently drop them.
        """
        if into is not None and into.has_pending_updates():
            raise PendingUpdatesError(
                "cannot reopen into a store with pending updates; call compact() "
                "(or checkpoint()) on it first")
        reader = SnapshotReader(path)
        if config is None:
            config = cls._config_from_manifest(reader.config_dict())
        # always assemble on a fresh instance: with into=, the served store's
        # state is swapped in only after every read succeeded, so a corrupt
        # snapshot raises without destroying the store that was serving
        store = cls.__new__(cls)
        RDFStore.__init__(store, config)
        store.dictionary = reader.read_dictionary()
        store._set_lazy_matrix(reader.matrix_loader(), reader.matrix_rows())
        store.schema = reader.read_schema()
        if store.schema is not None:
            store.catalog = Catalog(store.schema, store.dictionary)
            store.catalog.restore_reduced_schemas(reader.manifest.get("reduced_schemas", {}))
            store.delta.attach_schema(store.schema)
        store.index_store = reader.build_index_store(store.pool)
        store.clustered_store = reader.build_clustered_store(store.pool, store.schema)
        store._clustered = bool(reader.manifest["clustered"])
        wal = reader.wal()
        store.journal.attach_wal(wal)
        with store.journal.replaying():
            replayed = 0
            for text in wal.replay_texts():
                try:
                    store.update(text)
                except ReproError as exc:
                    # a CRC-intact record that fails to re-apply means the
                    # database needs a different build (e.g. a newer update
                    # dialect); surface it under the documented error type
                    raise PersistenceError(
                        f"WAL record {replayed} failed to replay: {exc}") from exc
                replayed += 1
        # restore the plan-cache generation *after* replay (each replayed
        # update bumps it).  The manifest's generation already accounts for
        # the records that were pending at save time; records appended after
        # the save each bumped the original store by one more.
        seeded = int(reader.manifest.get("wal_seeded_records", 0))
        store.plan_cache.generation = (int(reader.manifest["plan_cache_generation"])
                                       + max(0, replayed - seeded))
        if replayed:
            default_registry().counter(
                "wal_replayed_records_total",
                "WAL records re-applied while opening databases.").inc(replayed)
        store.db_path = Path(path)
        if replayed and into is None:
            store.event_log.emit("wal_replay", path=str(path), records=replayed)
        if into is not None:
            # swap under the served store's writer lock: snapshot acquisition
            # takes the read side, so no pin can interleave with the swap.
            # The lock and snapshot registry survive it — they are what other
            # threads synchronize and count on — and the attribute set is
            # replaced without an intermediate cleared state, so lock-free
            # attribute reads (stats, summaries) see old or new values, never
            # a missing attribute or an unheld lock object.  Snapshots pinned
            # before the swap stay valid (they hold direct references to the
            # old structures and release against the delta they pinned) and
            # keep counting in open_snapshot_count().
            lock = into._rwlock
            registry = into._snapshots
            new_state = dict(store.__dict__)
            new_state["_rwlock"] = lock
            new_state["_snapshots"] = registry
            # observability state is store-lifetime, like the lock: counters
            # must keep accumulating (and scrapers keep their registry
            # reference) across the swap.  The callback gauges registered at
            # the served store's construction read `self.<attr>` at scrape
            # time, so they pick up the swapped-in pool/delta/plan cache
            # automatically.  The assembly store's registry (and the
            # observations WAL replay recorded into it) is discarded with it.
            new_state["metrics_registry"] = into.metrics_registry
            new_state["slow_query_log"] = into.slow_query_log
            new_state["_observer"] = into._observer
            new_state["event_log"] = into.event_log
            new_state["query_registry"] = into.query_registry
            new_state["_last_trace"] = into._last_trace
            new_state["_update_seconds"] = into._update_seconds
            new_state["_compaction_seconds"] = into._compaction_seconds
            new_state["_checkpoint_seconds"] = into._checkpoint_seconds
            new_state["_undo_log_entries"] = into._undo_log_entries
            # the assembly store's cached context/engine reference its own
            # (now discarded) registry; rebuild lazily against the survivor
            new_state["_context"] = None
            new_state["_sparql_engine"] = None
            with lock.write_locked():
                into.__dict__.update(new_state)
                # only now that the swap is published: drop the registry's
                # cached frozen view.  The new incarnation's (generation,
                # version) pairs restart and could collide with the cached
                # key; invalidating under the write lock closes the window
                # in which a draining reader could re-cache the old state.
                registry.invalidate_cache()
            if replayed:
                # emitted on the surviving event log, after the swap — the
                # assembly store's log is discarded with its registry
                into.event_log.emit("wal_replay", path=str(path),
                                    records=replayed)
            return into
        return store

    def checkpoint(self, path: Optional[Path | str] = None) -> "CheckpointReport":
        """Compact, snapshot and truncate the WAL in one durable step.

        This is the maintenance operation a long-running writable store
        needs periodically: :meth:`compact` folds the delta into base
        storage, :meth:`save` writes the merged state as a new snapshot
        generation, and the fresh (empty) WAL replaces the old one — replay
        after the checkpoint starts from the new snapshot.

        Args:
            path: target directory; defaults to the attached database
                (from a previous :meth:`save` / :meth:`open`).

        Returns:
            A :class:`CheckpointReport` bundling the compaction report and
            the snapshot info.

        Raises:
            PersistenceError: when no path is given and the store is not
                attached to a database.
        """
        started = time.perf_counter()
        with self._rwlock.write_locked():
            target = Path(path) if path is not None else self.db_path
            if target is None:
                raise PersistenceError(
                    "store is not attached to a database; pass a path or call save() first")
            compaction = self.compact()
            snapshot = self.save(target)
            self.metrics_registry.counter(
                "checkpoints_total", "Checkpoints (compact + snapshot + WAL reset).").inc()
            self._checkpoint_seconds.observe(time.perf_counter() - started)
            self.event_log.emit("checkpoint", path=str(target),
                                triples=snapshot.triples,
                                seconds=time.perf_counter() - started)
            return CheckpointReport(compaction=compaction, snapshot=snapshot)

    def _detach_database(self) -> None:
        """Forget the attached on-disk database (content has diverged)."""
        self.db_path = None
        self.journal.attach_wal(None)
        self.journal.clear()

    @staticmethod
    def _config_from_manifest(saved: Dict[str, object]) -> StoreConfig:
        cost_model = CostModel(**saved.get("cost_model", {}))
        return StoreConfig(
            buffer_pool_pages=int(saved["buffer_pool_pages"]),
            page_size=int(saved["page_size"]),
            zone_size=int(saved["zone_size"]),
            build_exhaustive_indexes=bool(saved["build_exhaustive_indexes"]),
            build_zone_maps=bool(saved["build_zone_maps"]),
            plan_cache_size=int(saved["plan_cache_size"]),
            cost_model=cost_model,
        )

    # -- querying ----------------------------------------------------------------------

    def sparql_engine(self) -> SparqlEngine:
        """The store's SPARQL engine (cached, wired to the plan cache).

        Reusing one engine across queries lets the plan cache and the
        optimizer's statistics caches amortize; the engine is rebuilt
        automatically whenever the execution context is invalidated.
        """
        context = self.context()
        if self._sparql_engine is None or self._sparql_engine.context is not context:
            self._sparql_engine = SparqlEngine(context, plan_cache=self.plan_cache)
        return self._sparql_engine

    def sparql(self, text: str, options: Optional[PlannerOptions] = None,
               trace: bool = False, profile: bool = False) -> QueryResult:
        """Run a SPARQL query.

        Args:
            text: query text in the supported SELECT subset.
            options: plan scheme configuration (``default``, ``rdfscan`` or
                ``optimized``); defaults to RDFscan/RDFjoin.
            trace: when ``True``, record a per-operator
                :class:`~repro.obs.QueryTrace` for this run — returned on
                the result's ``trace`` field and via :meth:`last_trace`.
            profile: when ``True`` (or ``config.profile_queries`` is set),
                record a :class:`~repro.obs.QueryProfile` instead — a trace
                whose spans also attribute buffer-pool page reads/hits,
                payload bytes and (with ``config.profile_memory``) peak
                allocations per operator.  Implies ``trace``.

        Returns:
            A :class:`QueryResult` with OID bindings, measured cost and the
            executed plan.

        Raises:
            ParseError: when the query text is not in the supported subset.
            PlanError: when the options name an unknown plan scheme.
            ExecutionError: when the plan needs a store that is not built.
            QueryCancelledError: when the query was cancelled mid-run via
                :meth:`cancel` (see :meth:`active_queries`).
        """
        tracer = self._make_tracer(trace, profile)
        scheme = (options or PlannerOptions()).scheme
        active = self.query_registry.begin(text, "sparql", scheme, pool=self.pool)
        started = time.perf_counter()
        try:
            result = self.sparql_engine().query(text, options, tracer=tracer,
                                                active=active)
        except QueryCancelledError:
            # a cancel is an operator action, not a query failure: it gets
            # its own lifecycle status and does not bump query_errors_total
            self.query_registry.finish(
                active, status="cancelled",
                seconds=time.perf_counter() - started)
            raise
        except Exception as exc:
            self.query_registry.finish(
                active, seconds=time.perf_counter() - started, error=exc)
            self._observer.error("sparql")
            raise
        elapsed = time.perf_counter() - started
        self.query_registry.finish(active, rows=len(result), seconds=elapsed)
        self._observer.observe("sparql", scheme, elapsed, len(result),
                               text=text, trace=tracer)
        if tracer is not None:
            self._last_trace = tracer
        return result

    def _make_tracer(self, trace: bool, profile: bool):
        """The observation object one query run carries (or ``None``).

        Profiling wins over plain tracing: a :class:`~repro.obs.QueryProfile`
        *is* a :class:`~repro.obs.QueryTrace`, so every trace consumer (the
        result's ``trace`` field, :meth:`last_trace`, the slow-query digest)
        keeps working and merely sees richer spans.
        """
        if profile or self.config.profile_queries:
            return QueryProfile(pool=self.pool,
                                memory=self.config.profile_memory)
        return QueryTrace() if trace else None

    def sparql_plan(self, text: str, options: Optional[PlannerOptions] = None):
        """Parse and plan (but do not run) a SPARQL query.

        Returns:
            The root :class:`~repro.engine.PhysicalOperator` of the plan,
            annotated with estimated row counts.
        """
        return self.sparql_engine().prepare(text, options)[1]

    def explain(self, text: str, options: Optional[PlannerOptions] = None,
                analyze: bool = False) -> str:
        """Render a query's plan with estimated (and actual) cardinalities.

        Args:
            text: SPARQL query text.
            options: plan scheme configuration; defaults to RDFscan/RDFjoin.
            analyze: when ``True``, execute the plan first so every operator
                line also reports the actually observed row count —
                ``EXPLAIN ANALYZE``.

        Returns:
            A multi-line string: a header with the effective options
            followed by the indented operator tree, each line carrying
            ``est=…`` (and ``actual=…`` plus per-operator ``time=`` and
            ``pages=`` after execution — the analyze run is profiled, so
            buffer-pool reads are attributed per operator, and a ``mem=``
            column appears when ``config.profile_memory`` is on).  With
            ``analyze=True`` a ``buffers:`` line reports the pool's memory
            accounting — cached pages, *this run's* evictions/reads/hits
            (via :meth:`BufferPool.snapshot_delta`) and how much of a
            lazily opened database the run materialized.
        """
        options = options or PlannerOptions()
        _query, plan = self.sparql_engine().prepare(text, options)
        header = f"plan [{options.describe()}]"
        trace = None
        if analyze:
            trace = QueryProfile(pool=self.pool,
                                 memory=self.config.profile_memory)
            mark = self.pool.stats()
            context = self.context().with_tracer(trace)
            _bindings, cost = execute_plan(plan, context)
            self._last_trace = trace
            header += f" {cost.describe()}"
            stats = self.pool.snapshot_delta(mark)
            header += (
                "\nbuffers: cached_pages={cached_pages} resident_bytes={resident_bytes}"
                " evictions={evictions} reads={page_reads} hits={page_hits}"
                " lazy_materialized={lazy_segments_materialized}/{lazy_segments_registered}"
                " lazy_values_loaded={lazy_values_loaded}".format(**stats))
        return header + "\n" + plan.explain(trace=trace)

    def plan_cache_stats(self) -> Dict[str, int]:
        """Plan-cache counters: size, capacity, hits, misses, evictions,
        and the invalidation generation."""
        return self.plan_cache.stats()

    def buffer_pool_stats(self) -> Dict[str, int]:
        """Buffer-pool memory accounting and lazy-loading counters.

        See :meth:`repro.columnar.BufferPool.stats`; this is how lazy
        column loading after :meth:`open` is observed (``lazy_*`` keys).
        """
        return self.pool.stats()

    # -- observability -------------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Every metric sample as one flat dict (see ``docs/observability.md``).

        Merges this store's registry with the process-global one (WAL
        counters live there); keys are ``name{label="value"}`` strings,
        histograms contribute ``_count``/``_sum``/``_max``/``_p50``/
        ``_p95``/``_p99`` entries.
        """
        merged = dict(default_registry().collect())
        merged.update(self.metrics_registry.collect())
        return merged

    def slow_queries(self) -> List:
        """Newest-first :class:`~repro.obs.SlowQueryEntry` list.

        Queries whose wall time reached ``config.slow_query_seconds`` land
        here (ring buffer of ``config.slow_query_log_size`` entries).
        """
        return self.slow_query_log.entries()

    def active_queries(self) -> List[Dict[str, object]]:
        """Listing of every query currently executing on this store.

        One dict per in-flight query (oldest first) with its registry
        ``id``, frontend, plan scheme, normalized text, start time, elapsed
        seconds, rows/batches produced so far, the operator that most
        recently emitted, an estimated completion fraction (``progress``,
        ``None`` when the plan carries no cardinality estimates), this
        run's buffer-pool delta, and whether cancellation was requested.
        Covers direct :meth:`sparql`/:meth:`sql` calls and queries running
        through MVCC read snapshots / server sessions alike.
        """
        return self.query_registry.active()

    def cancel(self, query_id: int, reason: str = "") -> bool:
        """Request cooperative cancellation of a running query.

        The executing thread observes the request at its next batch
        boundary and unwinds with
        :class:`~repro.errors.QueryCancelledError` — snapshot pins and
        plan locks are released by the same paths a successful run uses.

        Args:
            query_id: the id shown by :meth:`active_queries` / ``/queries``.
            reason: optional operator-supplied note, recorded in the event
                log and the error message.

        Returns:
            ``True`` when the id was active (the query will stop within
            one batch); ``False`` for unknown or already-finished ids —
            a safe no-op.
        """
        return self.query_registry.cancel(query_id, reason=reason)

    def events(self, type: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Newest-first structured lifecycle events (see ``config.event_log_*``).

        Query starts/finishes/cancellations/errors, committed updates,
        compactions, checkpoints and WAL replays; each record carries a
        monotonic ``seq``, a unix ``ts`` and a ``type`` plus type-specific
        fields — see ``docs/observability.md`` for the schema.
        """
        return self.event_log.events(type=type, limit=limit)

    def last_trace(self) -> Optional[QueryTrace]:
        """The most recent traced run's :class:`~repro.obs.QueryTrace`.

        Populated by ``sparql(..., trace=True)``, ``sql(..., trace=True)``
        and ``explain(..., analyze=True)``; ``None`` until one of those ran.
        """
        return self._last_trace

    def sql(self, text: str, trace: bool = False,
            profile: bool = False) -> SqlResult:
        """Run a SQL query against the emergent relational view.

        Args:
            text: a SELECT statement over the discovered tables.
            trace: when ``True``, record a per-operator
                :class:`~repro.obs.QueryTrace` for this run — returned on
                the result's ``trace`` field and via :meth:`last_trace`.
            profile: record a :class:`~repro.obs.QueryProfile` instead —
                per-operator page reads/hits, payload bytes and optional
                allocation peaks (see :meth:`sparql`).  Implies ``trace``.

        Returns:
            A :class:`SqlResult` with rows, cost and the executed plan.

        Raises:
            ParseError: when the SQL text cannot be parsed.
            SchemaError: when the query references unknown tables/columns.
            QueryCancelledError: when the query was cancelled mid-run via
                :meth:`cancel`.
        """
        tracer = self._make_tracer(trace, profile)
        active = self.query_registry.begin(text, "sql", "sql", pool=self.pool)
        started = time.perf_counter()
        try:
            result = SqlEngine(self.context(), self.require_catalog()).query(
                text, tracer=tracer, active=active)
        except QueryCancelledError:
            self.query_registry.finish(
                active, status="cancelled",
                seconds=time.perf_counter() - started)
            raise
        except Exception as exc:
            self.query_registry.finish(
                active, seconds=time.perf_counter() - started, error=exc)
            self._observer.error("sql")
            raise
        elapsed = time.perf_counter() - started
        self.query_registry.finish(active, rows=len(result), seconds=elapsed)
        self._observer.observe("sql", "sql", elapsed, len(result),
                               text=text, trace=tracer)
        if tracer is not None:
            self._last_trace = tracer
        return result

    def decode_rows(self, result: QueryResult | SqlResult) -> List[tuple]:
        """Decode a query result's OIDs back to Python values.

        Args:
            result: the value returned by :meth:`sparql` or :meth:`sql`.

        Returns:
            One tuple per result row, with IRIs/literals decoded to Python
            strings, numbers, dates — computed aggregates stay floats.
        """
        return result.decoded_rows(self.context())

    # -- reporting ----------------------------------------------------------------------

    def schema_summary(self) -> List[str]:
        """Human readable schema listing."""
        return self.require_schema().summary_lines(self.dictionary)

    def storage_summary(self) -> Dict[str, object]:
        """Key figures about the physical organization."""
        summary: Dict[str, object] = {
            "triples": self.triple_count(),
            "terms": len(self.dictionary),
            "clustered": self.is_clustered,
        }
        if self.schema is not None:
            summary["tables"] = len(self.schema.tables)
            summary["foreign_keys"] = len(self.schema.foreign_keys)
            summary["triple_coverage"] = self.schema.coverage.triple_coverage()
            summary["subject_coverage"] = self.schema.coverage.subject_coverage()
        if self.clustered_store is not None:
            summary["regular_fraction"] = self.clustered_store.regular_fraction()
            summary["irregular_triples"] = len(self.clustered_store.irregular)
        if self.has_pending_updates():
            summary.update(self.delta.summary())
        open_snapshots = self._snapshots.active_count()
        if open_snapshots:
            summary["open_snapshots"] = open_snapshots
        if self.db_path is not None:
            summary["database"] = str(self.db_path)
            if self.journal.wal is not None:
                summary["wal_records"] = self.journal.wal.record_count()
        return summary
