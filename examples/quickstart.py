"""Quickstart: load RDF, discover the emergent schema, query it two ways.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PlannerOptions, RDFStore

NTRIPLES = """
<http://ex/book/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Book> .
<http://ex/book/1> <http://ex/has_author> <http://ex/author/1> .
<http://ex/book/1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book/1> <http://ex/isbn_no> "90-6196-456-1" .
<http://ex/book/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Book> .
<http://ex/book/2> <http://ex/has_author> <http://ex/author/2> .
<http://ex/book/2> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book/2> <http://ex/isbn_no> "90-6196-457-X" .
<http://ex/book/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Book> .
<http://ex/book/3> <http://ex/has_author> <http://ex/author/1> .
<http://ex/book/3> <http://ex/in_year> "2001"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book/3> <http://ex/isbn_no> "90-6196-458-8" .
<http://ex/author/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/author/1> <http://ex/name> "Alice" .
<http://ex/author/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/author/2> <http://ex/name> "Bob" .
<http://ex/page/1> <http://ex/url> "index.php" .
"""

# The paper's motivating query: author and ISBN of books published in 1996.
SPARQL_QUERY = """
PREFIX ex: <http://ex/>
SELECT ?a ?n WHERE {
  ?b ex:has_author ?a .
  ?b ex:in_year "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
  ?b ex:isbn_no ?n .
}
"""

SQL_QUERY = "SELECT has_author, isbn_no FROM Book WHERE in_year = 1996"


def main() -> None:
    # 1. load + discover + cluster in one call (self-organizing ingestion)
    store = RDFStore.build(NTRIPLES)

    print("=== emergent schema (the SQL view of the RDF data) ===")
    for line in store.schema_summary():
        print(" ", line)
    print()
    print("=== generated DDL ===")
    print(store.require_catalog().ddl_script())
    print()

    # 2. the same question through SPARQL, with all three plan schemes
    for scheme in ("default", "rdfscan", "optimized"):
        result = store.sparql(SPARQL_QUERY, PlannerOptions(scheme=scheme))
        print(f"SPARQL [{scheme:>9}] -> {store.decode_rows(result)}  ({result.cost.describe()})")
    print()
    print("=== EXPLAIN ANALYZE (cost-based plan, estimated vs. actual rows) ===")
    print(store.explain(SPARQL_QUERY, PlannerOptions(scheme="optimized"), analyze=True))
    print()

    # 3. and through the emergent SQL view — same storage, same answers
    sql_result = store.sql(SQL_QUERY)
    print(f"SQL               -> {store.decode_rows(sql_result)}")
    print()
    print("=== physical organization ===")
    for key, value in store.storage_summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
