"""Schema exploration and summarization on a DBLP-like bibliographic graph.

Reproduces the workflow behind Figure 2 of the paper: ingest messy
bibliographic RDF, let the system recover the relational structure
(characteristic sets, foreign keys, human-readable names), then reduce the
schema with support thresholds and keyword search the way an interactive
SPARQL/SQL session would.

Run with::

    python examples/dblp_schema_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RDFStore, StoreConfig
from repro.bench import DblpConfig, generate_dblp
from repro.cs import DiscoveryConfig, GeneralizationConfig, summarize_by_keywords, summarize_by_support


def main() -> None:
    triples = generate_dblp(DblpConfig(papers=600, conferences=20, authors=150, irregularity=0.08))
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    store = RDFStore.build(triples, config=config)
    schema = store.require_schema()

    print(f"loaded {store.triple_count()} triples, "
          f"{schema.coverage.triple_coverage():.1%} covered by the emergent schema\n")

    print("=== full emergent schema ===")
    for line in store.schema_summary():
        print(" ", line)

    print("\n=== reduced schema: tables with at least 100 members (plus FK targets) ===")
    by_support = summarize_by_support(schema, min_total_support=100)
    for cs_id in by_support.table_ids:
        table = schema.tables[cs_id]
        print(f"  {table.label}: {table.support} subjects")

    print("\n=== reduced schema: keyword search 'conference' (+1 FK hop) ===")
    by_keyword = summarize_by_keywords(schema, ["conference"], hops=1)
    for cs_id in by_keyword.table_ids:
        print(f"  {schema.tables[cs_id].label}")

    catalog = store.require_catalog()
    catalog.register_summary("publications", by_keyword)
    print("\n=== artificial schema 'publications' exposed to the SQL tool-chain ===")
    print(catalog.ddl_script("publications"))

    print("\n=== querying the emergent view ===")
    result = store.sql(
        "SELECT c.title, COUNT(p.title) AS papers FROM Inproceedings p "
        "JOIN Conference c ON p.partOf = c.id GROUP BY c.title ORDER BY papers DESC LIMIT 5")
    for title, papers in store.decode_rows(result):
        print(f"  {title}: {int(papers)} papers")


if __name__ == "__main__":
    main()
