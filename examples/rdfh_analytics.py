"""RDF-H analytics: the paper's evaluation workload end to end.

Generates RDF-H (TPC-H mapped 1:1 to RDF), builds both a parse-order and a
clustered store, and runs Q3 and Q6 under every plan scheme, printing the
cold/hot wall-clock and simulated costs — a miniature, scriptable version of
Table I.

Run with::

    python examples/rdfh_analytics.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import TableOneConfig, TableOneHarness, format_table_one, q3_sparql
from repro.core import StoreConfig
from repro.sparql import PlannerOptions


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    harness = TableOneHarness(TableOneConfig(scale_factor=scale_factor),
                              store_config=StoreConfig(page_size=256, zone_size=256))

    print(f"generating RDF-H at SF={scale_factor} and building both stores ...")
    clustered = harness.store("Clustered")
    harness.store("ParseOrder")
    print(f"  {clustered.triple_count()} triples, build times: "
          f"{ {k: round(v, 1) for k, v in harness.build_seconds.items()} }\n")

    print("=== emergent schema recovered from RDF-H ===")
    for line in clustered.schema_summary():
        print(" ", line)

    print("\n=== Q3 top orders (fully optimized plan) ===")
    result = clustered.sparql(q3_sparql(), PlannerOptions(scheme="rdfscan", use_zone_maps=True))
    for order, orderdate, _priority, revenue in clustered.decode_rows(result):
        print(f"  {order}  {orderdate}  revenue={revenue:,.2f}")
    print(f"  plan:\n{result.plan.explain()}")

    print("\n=== Table I grid ===")
    grid = harness.run()
    print(format_table_one(grid))
    print()
    print(format_table_one(grid, metric="wall_seconds"))


if __name__ == "__main__":
    main()
