"""Self-organizing storage on dirty, web-crawl-like RDF.

The paper's future-work target is web-crawled data, "the dirtiest data
encountered in practice".  This example generates data with a known regular
backbone plus noise, shows how much of it the emergent schema captures at
different dirtiness levels, and demonstrates that query answers are identical
whether a triple landed in an aligned CS column or in the irregular spill
store.

Run with::

    python examples/dirty_web_crawl.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PlannerOptions, RDFStore, StoreConfig
from repro.bench import DirtyConfig, generate_dirty
from repro.cs import DiscoveryConfig, GeneralizationConfig


def build_store(dropout: float, noise: float) -> tuple[RDFStore, float]:
    dataset = generate_dirty(DirtyConfig(classes=5, subjects_per_class=120,
                                         dropout=dropout, noise_triples=noise,
                                         chaotic_subjects=30))
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=5, attach_similarity=0.35)))
    store = RDFStore.build(dataset.triples, config=config)
    ground_truth = dataset.regular_triple_count / dataset.total_triples()
    return store, ground_truth


def main() -> None:
    print("=== coverage vs dirtiness ===")
    print(f"{'dropout':>8} {'noise':>6} | {'tables':>6} {'coverage':>9} {'regular GT':>10} {'aligned':>8}")
    for dropout, noise in [(0.0, 0.0), (0.1, 0.05), (0.2, 0.15), (0.35, 0.3)]:
        store, ground_truth = build_store(dropout, noise)
        schema = store.require_schema()
        aligned = store.clustered_store.regular_fraction()
        print(f"{dropout:8.2f} {noise:6.2f} | {len(schema.tables):6d} "
              f"{schema.coverage.triple_coverage():9.1%} {ground_truth:10.1%} {aligned:8.1%}")

    print("\n=== irregular data is still queryable ===")
    store, _ = build_store(0.2, 0.15)
    schema = store.require_schema()
    # pick one property of the largest discovered table and ask a star query
    table = schema.tables_by_support()[0]
    predicates = sorted(table.properties)
    p0 = store.dictionary.decode(predicates[1]).value
    p1 = store.dictionary.decode(predicates[2]).value
    query = f"SELECT ?s ?a ?b WHERE {{ ?s <{p0}> ?a . ?s <{p1}> ?b . }}"
    via_rdfscan = store.sparql(query, PlannerOptions(scheme="rdfscan"))
    via_default = store.sparql(query, PlannerOptions(scheme="default"))
    print(f"  star over {table.label}: {len(via_rdfscan)} answers via RDFscan, "
          f"{len(via_default)} via the Default plan "
          f"({'identical' if via_rdfscan.bindings.to_set(['s', 'a', 'b']) == via_default.bindings.to_set(['s', 'a', 'b']) else 'MISMATCH'})")
    print(f"  irregular triples held in the basic PSO store: {len(store.clustered_store.irregular)}")


if __name__ == "__main__":
    main()
