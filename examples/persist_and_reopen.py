"""Persistence walkthrough: load → update → checkpoint → reopen → query.

Builds a small bibliographic store, saves it as an on-disk database,
applies WAL-logged updates, simulates a crash (reopen without
checkpointing), then checkpoints and reopens clean — printing what the
buffer pool lazily materialized along the way.

Run with::

    python examples/persist_and_reopen.py [database-dir]

Without an argument the database lives in a temporary directory.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RDFStore

EX = "http://ex/"

NTRIPLES = "\n".join(
    f'<{EX}book/{i}> <{EX}title> "Book {i}" .\n'
    f'<{EX}book/{i}> <{EX}year> "{1990 + i}"^^'
    f"<http://www.w3.org/2001/XMLSchema#integer> .\n"
    f"<{EX}book/{i}> <{EX}author> <{EX}author/{i % 3}> ."
    for i in range(12)
) + "\n" + "\n".join(
    f'<{EX}author/{i}> <{EX}name> "Author {i}" .' for i in range(3)
)

QUERY = f"""
SELECT ?t ?n WHERE {{
  ?b <{EX}title> ?t .
  ?b <{EX}author> ?a .
  ?a <{EX}name> ?n .
  ?b <{EX}year> ?y .
  FILTER(?y >= 1995)
}}
"""


def main(db_dir: Path) -> None:
    db = db_dir / "books_db"

    # 1. build the store the usual way: load, discover, cluster ...
    store = RDFStore.build(NTRIPLES)
    print(f"built: {store.triple_count()} triples, "
          f"{len(store.schema.tables)} emergent tables")

    # 2. ... and make it durable.  save() also attaches the write-ahead log.
    info = store.save(db)
    print(f"saved: {info.files} files, {info.data_bytes} bytes at {info.path}")

    # 3. updates on an attached store are fsynced to the WAL before returning.
    store.update(f'INSERT DATA {{ <{EX}book/99> <{EX}title> "Late addition" . '
                 f'<{EX}book/99> <{EX}year> "1999"'
                 f'^^<http://www.w3.org/2001/XMLSchema#integer> . '
                 f'<{EX}book/99> <{EX}author> <{EX}author/1> . }}')
    store.update(f'DELETE WHERE {{ <{EX}book/3> ?p ?o . }}')
    print(f"updated: {store.delta.insert_count()} pending inserts, "
          f"{store.delta.tombstone_count()} pending deletes (WAL-logged)")

    # 4. "crash": throw the process state away, reopen from disk.  The
    #    snapshot restores the physical design without re-running discovery
    #    or clustering, and WAL replay restores the pending updates.
    survivor = RDFStore.open(db)
    print(f"reopened after crash: pending updates replayed = "
          f"{survivor.has_pending_updates()}")
    rows = survivor.decode_rows(survivor.sparql(QUERY))
    print(f"query over base ∪ delta: {len(rows)} rows")
    for title, name in sorted(rows):
        print(f"  {title:16s} by {name}")

    # 5. columns materialized lazily: only what the query touched was read.
    stats = survivor.buffer_pool_stats()
    print(f"lazy loading: {stats['lazy_segments_materialized']}/"
          f"{stats['lazy_segments_registered']} segments materialized, "
          f"{stats['lazy_values_loaded']} values read from disk")

    # 6. checkpoint: compact the delta, write a fresh snapshot, truncate the
    #    WAL.  The next open starts from the merged state with nothing to
    #    replay.
    report = survivor.checkpoint()
    print(report.describe())

    clean = RDFStore.open(db)
    print(f"reopened after checkpoint: pending updates = "
          f"{clean.has_pending_updates()}, "
          f"triples = {clean.triple_count()}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
