"""Table I reproduction: RDF-H Q3 and Q6 under all six configurations.

Each benchmark measures one cell of the paper's Table I grid
({Default, RDFscan/RDFjoin} x {ParseOrder, Clustered} x zone maps x
{cold, hot}); the final "test" renders the whole grid (wall-clock and
simulated time) and writes it to ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table_one
from repro.bench.harness import TableOneHarness

CONFIGURATIONS = TableOneHarness.CONFIGURATIONS
_CONFIG_IDS = [f"{scheme}-{ordering}-{'zm' if zm else 'nozm'}"
               for scheme, ordering, zm in CONFIGURATIONS]


@pytest.mark.parametrize("query", ["Q3", "Q6"])
@pytest.mark.parametrize("scheme,ordering,zone_maps", CONFIGURATIONS, ids=_CONFIG_IDS)
@pytest.mark.parametrize("cache_state", ["cold", "hot"])
def test_table1_cell(benchmark, table1_harness, bench_report, query, scheme,
                     ordering, zone_maps, cache_state):
    """Wall-clock benchmark of one Table I cell (cost counters reported as extra info)."""

    def run():
        return table1_harness.run_cell(query, scheme, ordering, zone_maps, cache_state)

    measurement = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["simulated_ms"] = measurement.simulated_seconds * 1e3
    benchmark.extra_info["page_reads"] = measurement.page_reads
    benchmark.extra_info["join_operations"] = measurement.join_operations
    benchmark.extra_info["result_rows"] = measurement.result_rows
    cell = (f"{query}_{scheme}_{ordering}_{'zm' if zone_maps else 'nozm'}"
            f"_{cache_state}")
    bench_report.record_pytest_benchmark(f"{cell}_wall_seconds", benchmark)
    bench_report.record(f"{cell}_simulated_seconds",
                        measurement.simulated_seconds,
                        extra={"page_reads": measurement.page_reads})
    assert measurement.result_rows >= 1


def test_table1_full_grid(table1_harness, bench_report):
    """Run the full grid once and emit the paper-style table."""
    result = table1_harness.run()
    simulated = format_table_one(result, metric="simulated_seconds")
    wall = format_table_one(result, metric="wall_seconds")
    report = simulated + "\n\n" + wall + "\n"
    bench_report.write_text("table1.txt", report)
    bench_report.record("q3_speedup_fully_optimized_vs_baseline",
                        result.speedup("Q3"), unit="ratio",
                        direction="higher_is_better")
    print("\n" + report)

    # the qualitative shape of Table I must hold on the simulated metric
    def sim(query, scheme, ordering, zone_maps, state="cold"):
        return result.cell(query, scheme, ordering, zone_maps, state).simulated_seconds

    for query in ("Q3", "Q6"):
        assert sim(query, "default", "Clustered", False) <= sim(query, "default", "ParseOrder", False)
        assert sim(query, "rdfscan", "Clustered", False) <= sim(query, "rdfscan", "ParseOrder", False)
        assert sim(query, "rdfscan", "Clustered", False) <= sim(query, "default", "Clustered", False)
        assert sim(query, "rdfscan", "Clustered", True, "hot") <= sim(query, "rdfscan", "Clustered", True, "cold")
    # zone maps give a further factor on Q3 (cross-FK date push-down)
    assert sim("Q3", "rdfscan", "Clustered", True) < sim("Q3", "rdfscan", "Clustered", False)
    # fully optimized vs baseline: the paper reports >40x at SF=10; at this small
    # scale we only require a substantial (>5x) factor, recorded in EXPERIMENTS.md
    assert result.speedup("Q3") > 5.0
