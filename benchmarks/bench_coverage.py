"""Coverage ablation (Section II-A claim: the rough relational schema covers
most of the input, e.g. ~85%).

Sweeps the support threshold and toggles generalization on dirty web-crawl
data, reporting triple coverage and table count — the trade-off the paper's
schema summarization is designed around.
"""

from __future__ import annotations

import pytest

from repro.bench import DirtyConfig, generate_dirty
from repro.cs import DiscoveryConfig, GeneralizationConfig, discover_schema
from repro.storage import encode_graph, value_order_literals


@pytest.fixture(scope="module")
def dirty_encoded():
    dataset = generate_dirty(DirtyConfig(classes=6, subjects_per_class=150, dropout=0.15,
                                         noise_triples=0.08, chaotic_subjects=60))
    dictionary, matrix = encode_graph(dataset.triples)
    matrix = value_order_literals(matrix, dictionary)
    return dataset, dictionary, matrix


@pytest.mark.parametrize("min_support", [2, 5, 20, 80])
def test_coverage_vs_support_threshold(benchmark, dirty_encoded, bench_report,
                                       min_support):
    dataset, dictionary, matrix = dirty_encoded
    config = DiscoveryConfig(generalization=GeneralizationConfig(min_support=min_support))
    schema = benchmark(lambda: discover_schema(matrix, dictionary, config))
    benchmark.extra_info["triple_coverage"] = round(schema.coverage.triple_coverage(), 4)
    benchmark.extra_info["tables"] = len(schema.tables)
    bench_report.record_pytest_benchmark(
        f"discover_min_support_{min_support}_seconds", benchmark)
    assert 0.0 <= schema.coverage.triple_coverage() <= 1.0


def test_generalization_ablation(dirty_encoded, bench_report):
    """Generalization (nullable merging) should raise coverage and shrink the
    schema compared to exact-CS-only discovery."""
    dataset, dictionary, matrix = dirty_encoded

    strict = discover_schema(matrix, dictionary, DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=5, core_merge_similarity=1.0,
                                            attach_similarity=1.0, minority_presence=1.0)))
    generalized = discover_schema(matrix, dictionary, DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=5, attach_similarity=0.35)))

    lines = ["Coverage ablation — dirty web-crawl-like data", ""]
    lines.append(f"regular backbone fraction (ground truth): "
                 f"{dataset.regular_triple_count / dataset.total_triples():.3f}")
    lines.append(f"exact CSs only     : coverage={strict.coverage.triple_coverage():.3f} "
                 f"tables={len(strict.tables)}")
    lines.append(f"with generalization: coverage={generalized.coverage.triple_coverage():.3f} "
                 f"tables={len(generalized.tables)}")
    for min_support in (2, 5, 20, 80):
        schema = discover_schema(matrix, dictionary, DiscoveryConfig(
            generalization=GeneralizationConfig(min_support=min_support)))
        lines.append(f"min_support={min_support:>3}: coverage={schema.coverage.triple_coverage():.3f} "
                     f"tables={len(schema.tables)}")
    report = "\n".join(lines) + "\n"
    bench_report.write_text("coverage_ablation.txt", report)
    bench_report.record("coverage_strict", strict.coverage.triple_coverage(),
                        unit="fraction", direction="higher_is_better",
                        extra={"tables": len(strict.tables)})
    bench_report.record("coverage_generalized",
                        generalized.coverage.triple_coverage(),
                        unit="fraction", direction="higher_is_better",
                        extra={"tables": len(generalized.tables)})
    print("\n" + report)

    assert generalized.coverage.triple_coverage() >= strict.coverage.triple_coverage()
    assert len(generalized.tables) <= max(len(strict.tables), 1)
    # the paper's "covers most of the data set" claim: this generator is deliberately
    # dirtier than typical web data, so the bar here is a clear majority rather
    # than the ~85% quoted for real data sets
    assert generalized.coverage.triple_coverage() > 0.55
