"""Figure 6 (this repo's extension): the write path.

Measures the three costs the update subsystem introduces on a DBLP-like
store:

* **insert throughput** — ``INSERT DATA`` batches routed into the delta
  store (triples/second, no rebuild);
* **post-update query latency** — star-query latency while the MergeScan
  layer folds ``base ∪ delta − tombstones`` into every access path,
  compared against the pre-update latency;
* **compaction cost** — one ``compact()`` call folding the whole delta into
  the clustered base (the explicit heavy step), and the query latency
  recovered afterwards.

Run in smoke mode (tiny sizes, one round) with ``REPRO_BENCH_SMOKE=1`` —
CI does this on every push.  Results land in ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import RDFStore, StoreConfig
from repro.bench import DblpConfig, generate_dblp
from repro.bench.dblp import CLASS_INPROCEEDINGS, DBLP, P_CREATOR, P_PART_OF, P_TITLE
from repro.cs import DiscoveryConfig, GeneralizationConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

PAPERS = 80 if SMOKE else 800
INSERT_BATCHES = 3 if SMOKE else 20
BATCH_SUBJECTS = 5 if SMOKE else 25
ROUNDS = 1 if SMOKE else 5

STAR_QUERY = (
    f"SELECT ?p ?t ?c WHERE {{ ?p <{P_TITLE}> ?t . ?p <{P_PART_OF}> ?c . "
    f"?p <{P_CREATOR}> ?a . }}"
)


def _build_store() -> RDFStore:
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    triples = generate_dblp(DblpConfig(papers=PAPERS, conferences=8, authors=PAPERS // 4))
    return RDFStore.build(triples, config=config)


def _insert_batch(batch: int) -> str:
    lines = []
    for i in range(BATCH_SUBJECTS):
        paper = f"{DBLP}inproc/new{batch}_{i}"
        lines.append(
            f"<{paper}> a <{CLASS_INPROCEEDINGS}> ; "
            f"<{P_CREATOR}> <{DBLP}author/{i % 5}> ; "
            f"<{P_TITLE}> \"New paper {batch}-{i}\" ; "
            f"<{P_PART_OF}> <{DBLP}conf/{batch % 8}> . "
        )
    return "INSERT DATA { " + "\n".join(lines) + " }"


def _time_query(store: RDFStore, rounds: int = ROUNDS) -> float:
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = store.sparql(STAR_QUERY)
        best = min(best, time.perf_counter() - started)
    assert result is not None and len(result) > 0
    return best


@pytest.fixture(scope="module")
def report_lines():
    lines = ["Figure 6 — write path: insert throughput, merged-scan latency, compaction", ""]
    yield lines


def test_insert_throughput(report_lines, bench_report):
    store = _build_store()
    baseline = _time_query(store)
    total_triples = 0
    started = time.perf_counter()
    for batch in range(INSERT_BATCHES):
        result = store.update(_insert_batch(batch))
        total_triples += result.inserted
    elapsed = time.perf_counter() - started
    assert total_triples == INSERT_BATCHES * BATCH_SUBJECTS * 4
    assert store.has_pending_updates()
    throughput = total_triples / elapsed if elapsed else float("inf")
    bench_report.record("insert_throughput_triples_per_second", throughput,
                        unit="triples/s", direction="higher_is_better",
                        extra={"triples": total_triples})
    report_lines.append(
        f"insert throughput: {total_triples} triples in {elapsed * 1e3:.1f} ms "
        f"({throughput:,.0f} triples/s), baseline query {baseline * 1e3:.2f} ms")
    # writes must never trigger an implicit rebuild
    assert store.triple_count() < store.live_triple_count()


def test_post_update_query_latency(report_lines, bench_report):
    store = _build_store()
    before = _time_query(store)
    rows_before = len(store.sparql(STAR_QUERY))
    for batch in range(INSERT_BATCHES):
        store.update(_insert_batch(batch))
    after = _time_query(store)
    rows_after = len(store.sparql(STAR_QUERY))
    assert rows_after > rows_before  # merged scans see the delta
    bench_report.record("star_query_clean_seconds", before, kind="best",
                        runs=ROUNDS)
    bench_report.record("star_query_merged_seconds", after, kind="best",
                        runs=ROUNDS,
                        extra={"pending_inserts": store.delta.insert_count()})
    report_lines.append(
        f"query latency: {before * 1e3:.2f} ms clean -> {after * 1e3:.2f} ms "
        f"with {store.delta.insert_count()} pending inserts "
        f"({rows_after - rows_before} extra rows)")


def test_batched_vs_row_merged_scan(report_lines, bench_report):
    """The batch executor must also win on the MergeScan (delta) path.

    With pending deltas in play every scan folds ``base ∪ delta −
    tombstones``; the paper-star FK-hop query (probe work per batch, over
    the merged access path) runs hot at ``batch_size=1024`` vs ``1``
    (median of 3).  Full mode demands the 5x batched win on this
    scan-heavy plan too; smoke mode only forbids a regression.
    """
    import statistics

    fk_hop_query = (
        f"SELECT ?p ?t ?cn WHERE {{ ?p <{P_TITLE}> ?t . ?p <{P_PART_OF}> ?c . "
        f"?p <{P_CREATOR}> ?a . ?c <{P_TITLE}> ?cn . }}"
    )
    store = _build_store()
    for batch in range(INSERT_BATCHES):
        store.update(_insert_batch(batch))
    store.update(f"DELETE WHERE {{ <{DBLP}inproc/0> ?p ?o . }}")
    assert store.has_pending_updates()
    saved = store.config.batch_size

    def median_seconds(size):
        store.config.batch_size = size
        runs = []
        for _ in range(3):
            started = time.perf_counter()
            result = store.sparql(fk_hop_query)
            runs.append(time.perf_counter() - started)
        return statistics.median(runs), sorted(result.rows())

    try:
        batched, batched_rows = median_seconds(1024)
        row_mode, row_rows = median_seconds(1)
    finally:
        store.config.batch_size = saved
    assert batched_rows == row_rows
    speedup = row_mode / max(batched, 1e-9)
    bench_report.record("merged_scan_batched_seconds", batched, kind="median",
                        runs=3, extra={"batch_size": 1024})
    bench_report.record("merged_scan_row_mode_seconds", row_mode, kind="median",
                        runs=3, extra={"batch_size": 1})
    bench_report.record("merged_scan_batch_speedup", speedup, unit="ratio",
                        direction="higher_is_better")
    report_lines.append(
        f"merged scan batched vs row-at-a-time: {batched * 1e3:.2f} ms vs "
        f"{row_mode * 1e3:.2f} ms ({speedup:.1f}x, median of 3, "
        f"{store.delta.insert_count()} pending inserts)")
    assert speedup >= (1.0 if SMOKE else 5.0), \
        f"batched merged scan only {speedup:.2f}x vs row-at-a-time"


def test_compaction_cost_and_recovery(report_lines, bench_report):
    store = _build_store()
    for batch in range(INSERT_BATCHES):
        store.update(_insert_batch(batch))
    store.update(f"DELETE WHERE {{ <{DBLP}inproc/0> ?p ?o . }}")
    pending = store.delta.insert_count() + store.delta.tombstone_count()
    merged_latency = _time_query(store)
    started = time.perf_counter()
    report = store.compact()
    compaction_seconds = time.perf_counter() - started
    assert not store.has_pending_updates()
    assert report.merged_inserts == INSERT_BATCHES * BATCH_SUBJECTS * 4
    compacted_latency = _time_query(store)
    report_lines.append(
        f"compaction: {pending} pending writes folded in {compaction_seconds * 1e3:.1f} ms "
        f"({report.subjects_assigned} subjects joined a CS, "
        f"{report.subjects_leftover} leftover); query {merged_latency * 1e3:.2f} ms "
        f"merged -> {compacted_latency * 1e3:.2f} ms compacted")
    bench_report.record("compaction_seconds", compaction_seconds,
                        extra={"pending_writes": pending})
    bench_report.record("star_query_compacted_seconds", compacted_latency,
                        kind="best", runs=ROUNDS)
    bench_report.write_text("fig6_updates.txt", "\n".join(report_lines) + "\n")
