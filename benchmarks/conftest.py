"""Shared benchmark fixtures.

The RDF-H scale factor is configurable through the ``REPRO_BENCH_SF``
environment variable (default 0.002, ~150k triples) so the same benchmark
files can be run at larger scales on bigger machines.  Stores are built once
per session; the benchmarks measure query execution only.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import (  # noqa: E402
    BenchReporter,
    TableOneConfig,
    TableOneHarness,
    collect_environment,
)
from repro.core import StoreConfig  # noqa: E402

BENCH_SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SF", "0.002"))
BENCH_PAGE_SIZE = int(os.environ.get("REPRO_BENCH_PAGE_SIZE", "256"))

REPO_ROOT = Path(__file__).resolve().parent.parent
"""Where ``BENCH_<name>.json`` result files land (the repo root, so they sit
next to the sources they measure and are easy to commit / diff across PRs)."""


@pytest.fixture(scope="session")
def store_config() -> StoreConfig:
    return StoreConfig(page_size=BENCH_PAGE_SIZE, zone_size=BENCH_PAGE_SIZE)


@pytest.fixture(scope="session")
def table1_harness(store_config) -> TableOneHarness:
    """The Table I harness with both stores (ParseOrder + Clustered) pre-built."""
    harness = TableOneHarness(TableOneConfig(scale_factor=BENCH_SCALE_FACTOR),
                              store_config=store_config)
    harness.store("ParseOrder")
    harness.store("Clustered")
    return harness


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="module")
def bench_report(request, results_dir):
    """One :class:`BenchReporter` per benchmark module.

    Named after the module with its ``bench_`` prefix stripped, so
    ``bench_fig5_optimizer.py`` produces ``BENCH_fig5_optimizer.json`` at
    the repo root when the module finishes (whatever subset of its tests
    ran — skipped tests simply record nothing).
    """
    module = request.module.__name__
    name = module[len("bench_"):] if module.startswith("bench_") else module
    reporter = BenchReporter(
        name,
        results_dir=results_dir,
        environment=collect_environment(
            scale_factor=BENCH_SCALE_FACTOR,
            page_size=BENCH_PAGE_SIZE,
            smoke=bool(os.environ.get("REPRO_BENCH_SMOKE")),
        ),
    )
    yield reporter
    reporter.write_json(REPO_ROOT)
