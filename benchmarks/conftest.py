"""Shared benchmark fixtures.

The RDF-H scale factor is configurable through the ``REPRO_BENCH_SF``
environment variable (default 0.002, ~150k triples) so the same benchmark
files can be run at larger scales on bigger machines.  Stores are built once
per session; the benchmarks measure query execution only.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import TableOneConfig, TableOneHarness  # noqa: E402
from repro.core import StoreConfig  # noqa: E402

BENCH_SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SF", "0.002"))
BENCH_PAGE_SIZE = int(os.environ.get("REPRO_BENCH_PAGE_SIZE", "256"))


@pytest.fixture(scope="session")
def store_config() -> StoreConfig:
    return StoreConfig(page_size=BENCH_PAGE_SIZE, zone_size=BENCH_PAGE_SIZE)


@pytest.fixture(scope="session")
def table1_harness(store_config) -> TableOneHarness:
    """The Table I harness with both stores (ParseOrder + Clustered) pre-built."""
    harness = TableOneHarness(TableOneConfig(scale_factor=BENCH_SCALE_FACTOR),
                              store_config=store_config)
    harness.store("ParseOrder")
    harness.store("Clustered")
    return harness


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent / "results"
    path.mkdir(exist_ok=True)
    return path
