"""Figure 3 reproduction: the effect of subject clustering on storage locality.

Figure 3 illustrates how clustering moves the triples of each characteristic
set into contiguous, aligned ranges while irregular triples stay in the basic
triple store.  This benchmark quantifies the effect: the same star query over
the ParseOrder and the Clustered store, comparing page reads (locality) and
the clustered store's physical statistics.
"""

from __future__ import annotations

from repro.bench import q6_sparql
from repro.sparql import PlannerOptions, RDFSCAN_SCHEME


def _cold_run(store, query, options):
    store.reset_cold()
    return store.sparql(query, options)


def test_parse_order_locality(benchmark, table1_harness, bench_report):
    store = table1_harness.store("ParseOrder")
    options = PlannerOptions(scheme=RDFSCAN_SCHEME)
    result = benchmark.pedantic(lambda: _cold_run(store, q6_sparql(), options),
                                rounds=3, iterations=1)
    benchmark.extra_info["page_reads"] = result.cost.counters["page_reads"]
    bench_report.record_pytest_benchmark("q6_cold_parseorder_seconds", benchmark)
    assert len(result) == 1


def test_clustered_locality(benchmark, table1_harness, bench_report):
    parse_order = table1_harness.store("ParseOrder")
    clustered = table1_harness.store("Clustered")
    options = PlannerOptions(scheme=RDFSCAN_SCHEME)

    result = benchmark.pedantic(lambda: _cold_run(clustered, q6_sparql(), options),
                                rounds=3, iterations=1)
    benchmark.extra_info["page_reads"] = result.cost.counters["page_reads"]
    bench_report.record_pytest_benchmark("q6_cold_clustered_seconds", benchmark)

    baseline = _cold_run(parse_order, q6_sparql(), options)
    clustered_run = _cold_run(clustered, q6_sparql(), options)
    bench_report.record("q6_cold_parseorder_page_reads",
                        baseline.cost.counters["page_reads"], unit="pages")
    bench_report.record("q6_cold_clustered_page_reads",
                        clustered_run.cost.counters["page_reads"], unit="pages")

    store = clustered.clustered_store
    lines = ["Figure 3 reproduction — subject clustering and locality", ""]
    lines.append(f"CS blocks: {len(store.blocks)}")
    for block in store.blocks:
        low, high = block.subject_bounds()
        lines.append(f"  block {block.label}: {len(block)} subjects, aligned columns="
                     f"{len(block.property_columns)}, subject OIDs [{low}, {high}]")
    lines.append(f"irregular triples (basic PSO store): {len(store.irregular)}")
    lines.append(f"regular fraction: {store.regular_fraction():.3f}")
    lines.append("")
    lines.append(f"Q6 cold page reads, ParseOrder: {baseline.cost.counters['page_reads']}")
    lines.append(f"Q6 cold page reads, Clustered:  {clustered_run.cost.counters['page_reads']}")
    report = "\n".join(lines) + "\n"
    bench_report.write_text("fig3_clustering.txt", report)
    print("\n" + report)

    # clustering concentrates each CS into contiguous subject ranges: the same
    # query touches (far) fewer pages than on the parse-order layout
    assert clustered_run.cost.counters["page_reads"] < baseline.cost.counters["page_reads"]
    assert store.regular_fraction() > 0.95

    # the blocks partition the subject OID space into disjoint ranges
    ranges = sorted(block.subject_bounds() for block in store.blocks if len(block))
    for (prev_low, prev_high), (low, high) in zip(ranges, ranges[1:]):
        assert prev_high < low
