"""Figure 4 reproduction: RDFscan/RDFjoin collapse star-pattern joins.

Figure 4 shows the plan shapes for (a) a four-property star and (b) a star
plus a foreign-key hop: the Default scheme needs one index-scan join per
property, the RDFscan/RDFjoin scheme a single operator per star.  This
benchmark counts operators and joins per scheme, verifies both plans return
identical answers, and measures their execution.
"""

from __future__ import annotations

import pytest

from repro.bench import star_fk_hop_sparql, star_lookup_sparql
from repro.sparql import DEFAULT_SCHEME, PlannerOptions, RDFSCAN_SCHEME


@pytest.mark.parametrize("query_name,query_text", [
    ("fig4a_star", star_lookup_sparql()),
    ("fig4b_star_fk_hop", star_fk_hop_sparql()),
])
@pytest.mark.parametrize("scheme", [DEFAULT_SCHEME, RDFSCAN_SCHEME])
def test_plan_shape_execution(benchmark, table1_harness, bench_report,
                              query_name, query_text, scheme):
    store = table1_harness.store("Clustered")
    options = PlannerOptions(scheme=scheme)
    plan = store.sparql_plan(query_text, options)
    benchmark.extra_info["joins"] = plan.count_joins()
    benchmark.extra_info["operators"] = plan.count_operators()

    def run():
        store.reset_cold()
        return store.sparql(query_text, options)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    bench_report.record_pytest_benchmark(
        f"{query_name}_{scheme}_cold_seconds", benchmark)
    assert len(result) > 0


def test_plan_shapes_and_equivalence(table1_harness, bench_report):
    store = table1_harness.store("Clustered")
    lines = ["Figure 4 reproduction — operator and join counts per plan scheme", ""]
    for name, text in (("Fig 4(a) star, 4 properties", star_lookup_sparql()),
                       ("Fig 4(b) star + FK hop", star_fk_hop_sparql())):
        default_plan = store.sparql_plan(text, PlannerOptions(scheme=DEFAULT_SCHEME))
        rdfscan_plan = store.sparql_plan(text, PlannerOptions(scheme=RDFSCAN_SCHEME))
        default_result = store.sparql(text, PlannerOptions(scheme=DEFAULT_SCHEME))
        rdfscan_result = store.sparql(text, PlannerOptions(scheme=RDFSCAN_SCHEME))
        columns = default_result.columns
        assert default_result.bindings.to_set(columns) == rdfscan_result.bindings.to_set(columns)

        lines.append(name)
        lines.append(f"  Default        : {default_plan.count_joins()} joins, "
                     f"{default_plan.count_operators()} operators")
        lines.append(f"  RDFscan/RDFjoin: {rdfscan_plan.count_joins()} joins, "
                     f"{rdfscan_plan.count_operators()} operators")
        lines.append("  Default plan:")
        lines.extend("    " + line for line in default_plan.explain().splitlines())
        lines.append("  RDFscan/RDFjoin plan:")
        lines.extend("    " + line for line in rdfscan_plan.explain().splitlines())
        lines.append("")

        # the paper's claim: per-property joins disappear
        assert rdfscan_plan.count_joins() < default_plan.count_joins()

    report = "\n".join(lines) + "\n"
    bench_report.write_text("fig4_plan_shapes.txt", report)
    print("\n" + report)

    # Fig 4(a): the 4-property star needs 3 joins in the Default scheme, 0 with RDFscan
    star_default = store.sparql_plan(star_lookup_sparql(), PlannerOptions(scheme=DEFAULT_SCHEME))
    star_rdfscan = store.sparql_plan(star_lookup_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME))
    assert star_default.count_joins() == 3
    assert star_rdfscan.count_joins() == 0
    # Fig 4(b): the new scheme keeps the FK-hop join (prop4 scan joined with the
    # restricted ?s2 set) plus one RDFjoin fetching the remaining star properties
    hop_rdfscan = store.sparql_plan(star_fk_hop_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME))
    hop_default = store.sparql_plan(star_fk_hop_sparql(), PlannerOptions(scheme=DEFAULT_SCHEME))
    assert hop_rdfscan.count_joins() == 2
    assert hop_default.count_joins() == 4
    assert hop_rdfscan.operator_names().get("RDFJoinOp", 0) == 1
