"""Figure 1 reproduction: SPARQL and SQL front-ends over the same storage.

Figure 1 shows the architecture: a SPARQL front-end and a SQL front-end both
talk to the same relational/triple storage inside one kernel.  The benchmark
runs the same analytical question (RDF-H Q6 and Q3) through both front-ends,
verifies the answers agree, and measures both paths.
"""

from __future__ import annotations

import pytest

from repro.bench import q3_sparql, q3_sql, q6_sparql, q6_sql
from repro.sparql import PlannerOptions, RDFSCAN_SCHEME


def test_sparql_frontend_q6(benchmark, table1_harness, bench_report):
    store = table1_harness.store("Clustered")
    options = PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True)

    def run():
        store.warm()
        return store.sparql(q6_sparql(), options)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    bench_report.record_pytest_benchmark("q6_sparql_hot_seconds", benchmark)
    assert len(result) == 1


def test_sql_frontend_q6(benchmark, table1_harness, bench_report):
    store = table1_harness.store("Clustered")

    def run():
        store.warm()
        return store.sql(q6_sql())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    bench_report.record_pytest_benchmark("q6_sql_hot_seconds", benchmark)
    assert len(result) == 1


def test_frontends_agree(table1_harness, bench_report):
    store = table1_harness.store("Clustered")
    sparql_q6 = store.sparql(q6_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME, use_zone_maps=True))
    sql_q6 = store.sql(q6_sql())
    sparql_revenue = float(sparql_q6.bindings.column("revenue")[0])
    sql_revenue = float(sql_q6.bindings.column("revenue")[0])
    assert sparql_revenue == pytest.approx(sql_revenue, rel=1e-9)

    sparql_q3 = store.decode_rows(store.sparql(q3_sparql(), PlannerOptions(scheme=RDFSCAN_SCHEME,
                                                                           use_zone_maps=True)))
    sql_q3 = store.decode_rows(store.sql(q3_sql()))
    assert len(sparql_q3) == len(sql_q3)
    # same orders in the same sequence; revenue is column 3 (SPARQL) / 2 (SQL)
    assert [row[0] for row in sparql_q3] == [row[0] for row in sql_q3]
    for sparql_row, sql_row in zip(sparql_q3, sql_q3):
        assert sparql_row[3] == pytest.approx(sql_row[2], rel=1e-9)

    catalog = store.require_catalog()
    lines = ["Figure 1 reproduction — one storage engine, two front-ends", ""]
    lines.append(f"Q6 revenue via SPARQL: {sparql_revenue:.2f}")
    lines.append(f"Q6 revenue via SQL   : {sql_revenue:.2f}")
    lines.append("")
    lines.append("Emergent SQL view (DDL):")
    lines.append(catalog.ddl_script())
    report = "\n".join(lines) + "\n"
    bench_report.write_text("fig1_frontends.txt", report)
    print("\n" + report)
