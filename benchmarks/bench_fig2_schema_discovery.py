"""Figure 2 reproduction: structure recognized from an example RDF graph.

Benchmarks the schema-discovery pipeline on the DBLP-like data of Figure 2
and on dirty web-crawl-like data, and prints the recovered tables, foreign
keys, coverage and irregular remainder.
"""

from __future__ import annotations

from repro.bench import DblpConfig, DirtyConfig, generate_dblp, generate_dirty
from repro.cs import DiscoveryConfig, GeneralizationConfig, discover_schema
from repro.storage import encode_graph, value_order_literals


def _encode(triples):
    dictionary, matrix = encode_graph(triples)
    return dictionary, value_order_literals(matrix, dictionary)


def test_schema_discovery_dblp(benchmark, bench_report):
    dictionary, matrix = _encode(generate_dblp(DblpConfig(papers=400, conferences=16, authors=120,
                                                          irregularity=0.05)))
    config = DiscoveryConfig(generalization=GeneralizationConfig(min_support=3))

    schema = benchmark(lambda: discover_schema(matrix, dictionary, config))

    lines = ["Figure 2 reproduction — emergent schema of the DBLP-like graph", ""]
    lines.extend(schema.summary_lines(dictionary))
    for fk in schema.foreign_keys:
        source = schema.tables[fk.source_cs].label
        target = schema.tables[fk.target_cs].label
        predicate = dictionary.decode(fk.predicate_oid).local_name()
        lines.append(f"FK: {source}.{predicate} -> {target} (confidence {fk.confidence:.2f})")
    lines.append(f"irregular subjects: {len(schema.irregular_subjects)}")
    report = "\n".join(lines) + "\n"
    bench_report.write_text("fig2_schema.txt", report)
    bench_report.record_pytest_benchmark(
        "discover_dblp_seconds", benchmark,
        extra={"coverage": round(schema.coverage.triple_coverage(), 4),
               "tables": len(schema.tables)})
    print("\n" + report)

    labels = {t.label for t in schema.tables.values()}
    assert "Inproceedings" in labels
    assert schema.coverage.triple_coverage() > 0.85
    assert len(schema.foreign_keys) >= 2
    # the ad-hoc web-page subjects either end up outside the regular schema or,
    # when numerous enough to clear the support threshold, as their own table
    webpage_tables = [t for t in schema.tables.values()
                      if all(dictionary.decode(p).local_name() in ("homepage", "content")
                             for p in t.properties)]
    assert schema.irregular_subjects or webpage_tables


def test_schema_discovery_dirty_crawl(benchmark, bench_report):
    dataset = generate_dirty(DirtyConfig(classes=6, subjects_per_class=150, noise_triples=0.05,
                                         chaotic_subjects=40))
    dictionary, matrix = _encode(dataset.triples)
    # dirty data needs a laxer attach threshold: subjects missing several optional
    # properties (or carrying noisy extra ones) should still join their class
    config = DiscoveryConfig(generalization=GeneralizationConfig(min_support=5,
                                                                 attach_similarity=0.35))

    schema = benchmark(lambda: discover_schema(matrix, dictionary, config))

    regular_fraction = dataset.regular_triple_count / dataset.total_triples()
    bench_report.record_pytest_benchmark(
        "discover_dirty_seconds", benchmark,
        extra={"coverage": round(schema.coverage.triple_coverage(), 4),
               "regular_fraction": round(regular_fraction, 4)})
    assert schema.coverage.triple_coverage() >= 0.8 * regular_fraction
    assert len(schema.tables) >= 5
