"""Figure 7 (this repo's extension): the persistence layer.

Measures what durability buys and what it costs on a DBLP-like store:

* **cold open vs full rebuild** — ``RDFStore.open()`` on a saved database
  against re-parsing + re-discovering + re-clustering the same triples
  (the whole point of snapshots: reopen in milliseconds, not rebuild);
* **checkpoint cost** — ``save()`` of a clean store, plus a full
  ``checkpoint()`` (compact + snapshot + WAL truncate) after a batch of
  updates;
* **lazy vs eager first-query latency** — the first star query on a lazily
  opened store (columns materialize on first scan) against the same query
  after ``warm()`` forced everything resident, with the buffer pool's
  materialization counters reported;
* **WAL replay** — reopen latency with a tail of logged updates pending.

Run in smoke mode (tiny sizes) with ``REPRO_BENCH_SMOKE=1`` — CI does this
on every push.  Results land in ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import RDFStore, StoreConfig
from repro.bench import DblpConfig, generate_dblp
from repro.bench.dblp import CLASS_INPROCEEDINGS, DBLP, P_CREATOR, P_PART_OF, P_TITLE
from repro.cs import DiscoveryConfig, GeneralizationConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

PAPERS = 80 if SMOKE else 1200
UPDATE_BATCHES = 3 if SMOKE else 15
BATCH_SUBJECTS = 5 if SMOKE else 25

STAR_QUERY = (
    f"SELECT ?p ?t ?c WHERE {{ ?p <{P_TITLE}> ?t . ?p <{P_PART_OF}> ?c . "
    f"?p <{P_CREATOR}> ?a . }}"
)


def _triples():
    return generate_dblp(DblpConfig(papers=PAPERS, conferences=8, authors=PAPERS // 4))


def _config() -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))


def _build_store() -> RDFStore:
    return RDFStore.build(_triples(), config=_config())


def _insert_batch(batch: int) -> str:
    lines = []
    for i in range(BATCH_SUBJECTS):
        paper = f"{DBLP}inproc/new{batch}_{i}"
        lines.append(
            f"<{paper}> a <{CLASS_INPROCEEDINGS}> ; "
            f"<{P_CREATOR}> <{DBLP}author/{i % 5}> ; "
            f"<{P_TITLE}> \"New paper {batch}-{i}\" ; "
            f"<{P_PART_OF}> <{DBLP}conf/{batch % 8}> . "
        )
    return "INSERT DATA { " + "\n".join(lines) + " }"


@pytest.fixture(scope="module")
def report_lines():
    lines = ["Figure 7 — persistence: cold open, checkpoint cost, lazy loading, WAL replay", ""]
    yield lines


@pytest.fixture(scope="module")
def saved_db(tmp_path_factory):
    """One saved database shared by the read-side measurements."""
    path = tmp_path_factory.mktemp("fig7") / "db"
    store = _build_store()
    store.save(path)
    return path, store


def test_cold_open_vs_full_rebuild(saved_db, report_lines, bench_report):
    path, store = saved_db
    started = time.perf_counter()
    rebuilt = RDFStore.build(_triples(), config=_config())
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reopened = RDFStore.open(path)
    open_seconds = time.perf_counter() - started

    assert reopened.triple_count() == rebuilt.triple_count() == store.triple_count()
    speedup = rebuild_seconds / open_seconds if open_seconds else float("inf")
    bench_report.record("cold_open_seconds", open_seconds,
                        extra={"triples": store.triple_count()})
    bench_report.record("full_rebuild_seconds", rebuild_seconds)
    report_lines.append(
        f"cold open: {open_seconds * 1e3:.1f} ms vs full rebuild "
        f"{rebuild_seconds * 1e3:.1f} ms ({speedup:.0f}x) over "
        f"{store.triple_count()} triples")
    assert speedup > 1.0  # opening must beat re-discovering + re-clustering


def test_checkpoint_cost(report_lines, bench_report, tmp_path_factory):
    path = tmp_path_factory.mktemp("fig7ckpt") / "db"
    store = _build_store()
    started = time.perf_counter()
    info = store.save(path)
    save_seconds = time.perf_counter() - started

    for batch in range(UPDATE_BATCHES):
        store.update(_insert_batch(batch))
    pending = store.delta.insert_count()
    started = time.perf_counter()
    report = store.checkpoint()
    checkpoint_seconds = time.perf_counter() - started
    assert not store.has_pending_updates()
    bench_report.record("save_seconds", save_seconds,
                        extra={"files": info.files,
                               "data_bytes": info.data_bytes})
    bench_report.record("checkpoint_seconds", checkpoint_seconds,
                        extra={"pending_inserts": pending})
    report_lines.append(
        f"snapshot: {info.files} files, {info.data_bytes / 1024:.0f} KiB in "
        f"{save_seconds * 1e3:.1f} ms; checkpoint with {pending} pending inserts "
        f"(compact + snapshot + truncate): {checkpoint_seconds * 1e3:.1f} ms "
        f"(+{report.compaction.merged_inserts} triples merged)")


def test_lazy_vs_eager_first_query(saved_db, report_lines, bench_report):
    path, _store = saved_db
    lazy = RDFStore.open(path)
    started = time.perf_counter()
    lazy_rows = len(lazy.sparql(STAR_QUERY))
    lazy_first = time.perf_counter() - started
    stats = lazy.buffer_pool_stats()

    eager = RDFStore.open(path)
    eager.warm()
    for table in eager.index_store.tables.values():
        table.raw()  # force-materialize every projection
    for block in eager.clustered_store.blocks:
        block.subject_column.data
        for column in block.property_columns.values():
            column.data
    started = time.perf_counter()
    eager_rows = len(eager.sparql(STAR_QUERY))
    eager_first = time.perf_counter() - started

    assert lazy_rows == eager_rows > 0
    bench_report.record("first_query_lazy_seconds", lazy_first,
                        extra={"segments_materialized":
                               stats["lazy_segments_materialized"],
                               "segments_registered":
                               stats["lazy_segments_registered"]})
    bench_report.record("first_query_eager_seconds", eager_first)
    report_lines.append(
        f"first query: lazy {lazy_first * 1e3:.2f} ms "
        f"(materialized {stats['lazy_segments_materialized']}/"
        f"{stats['lazy_segments_registered']} segments, "
        f"{stats['lazy_values_loaded']} values) vs eager {eager_first * 1e3:.2f} ms")
    # laziness means the first query must not have touched every segment
    assert stats["lazy_segments_materialized"] < stats["lazy_segments_registered"]


def test_wal_replay_cost(saved_db, report_lines, bench_report):
    path, store = saved_db
    for batch in range(UPDATE_BATCHES):
        store.update(_insert_batch(batch))
    started = time.perf_counter()
    reopened = RDFStore.open(path)
    replay_seconds = time.perf_counter() - started
    assert reopened.has_pending_updates()
    assert reopened.delta.insert_count() == store.delta.insert_count()
    report_lines.append(
        f"WAL replay: {UPDATE_BATCHES} logged requests "
        f"({reopened.delta.insert_count()} pending inserts) replayed at open in "
        f"{replay_seconds * 1e3:.1f} ms")
    bench_report.record("wal_replay_open_seconds", replay_seconds,
                        extra={"logged_requests": UPDATE_BATCHES,
                               "pending_inserts":
                               reopened.delta.insert_count()})
    # leave the shared database clean for reruns, and persist the report
    store.checkpoint()
    bench_report.write_text("fig7_persistence.txt",
                            "\n".join(report_lines) + "\n")
