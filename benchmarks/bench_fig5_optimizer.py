"""Figure 5 (this repo's extension): the cost-based optimizer vs. Table I.

The paper's Table I compares the Default and RDFscan/RDFjoin plan schemes;
this benchmark adds the third scheme introduced by the optimizer layer —
``optimized`` (RDFscan/RDFjoin algebra with cardinality-driven join order)
— on the same RDF-H workload, verifies all three schemes return identical
answers, and measures the plan cache's repeated-query speedup.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.bench import q3_sparql, q6_sparql, star_fk_hop_sparql, star_lookup_sparql
from repro.sparql import (
    DEFAULT_SCHEME,
    OPTIMIZED_SCHEME,
    RDFSCAN_SCHEME,
    PlannerOptions,
    QueryOptimizer,
    SparqlEngine,
)

SCHEMES = (DEFAULT_SCHEME, RDFSCAN_SCHEME, OPTIMIZED_SCHEME)

QUERIES = [
    ("star_lookup", star_lookup_sparql()),
    ("star_fk_hop", star_fk_hop_sparql()),
    ("rdfh_q6", q6_sparql()),
]


@pytest.mark.parametrize("query_name,query_text", QUERIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_scheme_execution(benchmark, table1_harness, bench_report,
                          query_name, query_text, scheme):
    """Cold execution of each query under each of the three plan schemes."""
    store = table1_harness.store("Clustered")
    options = PlannerOptions(scheme=scheme)
    plan = store.sparql_plan(query_text, options)
    benchmark.extra_info["joins"] = plan.count_joins()
    benchmark.extra_info["estimated_rows"] = plan.estimated_rows

    def run():
        store.reset_cold()
        return store.sparql(query_text, options)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    bench_report.record_pytest_benchmark(
        f"{query_name}_{scheme}_cold_seconds", benchmark)
    assert len(result) > 0


def test_optimized_equivalence_and_report(table1_harness, bench_report):
    """All three schemes agree; write the comparison report."""
    store = table1_harness.store("Clustered")
    optimizer = QueryOptimizer(store.context())
    lines = ["Figure 5 — cost-based optimizer vs. the Table I plan schemes", ""]
    for name, text in QUERIES + [("rdfh_q3_zonemaps", q3_sparql())]:
        use_zone_maps = name.endswith("zonemaps")
        reference = None
        lines.append(name)
        for scheme in SCHEMES:
            options = PlannerOptions(scheme=scheme, use_zone_maps=use_zone_maps)
            store.reset_cold()
            result = store.sparql(text, options)
            rows = sorted(result.rows())
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"{scheme} diverged on {name}"
            estimated_cost = optimizer.plan_cost_seconds(result.plan)
            lines.append(f"  {scheme:>10}: {len(result):>6} rows  "
                         f"sim={result.cost.simulated_seconds * 1e3:8.2f}ms  "
                         f"est-cost={estimated_cost * 1e3:7.2f}ms  "
                         f"joins={result.plan.count_joins()}  "
                         f"operators={result.plan.count_operators()}")
        options = PlannerOptions(scheme=OPTIMIZED_SCHEME, use_zone_maps=use_zone_maps)
        lines.append("  optimized plan (est vs actual):")
        lines.extend("    " + line
                     for line in store.explain(text, options, analyze=True).splitlines())
        lines.append("")
    bench_report.write_text("fig5_optimizer.txt", "\n".join(lines))


def test_batched_vs_row_execution(table1_harness, bench_report):
    """The vectorized batch executor vs. row-at-a-time execution.

    The same queries run hot under ``batch_size=1024`` (the production
    default) and ``batch_size=1`` (every operator degenerates to
    row-at-a-time), median of 3 runs each.  Scan-heavy plans must be at
    least 5x faster batched; in smoke mode (tiny CI leg) the bar is only
    "not slower".
    """
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
    store = table1_harness.store("Clustered")
    saved = store.config.batch_size

    def timed_runs(text, options, size):
        store.config.batch_size = size
        runs = []
        for _ in range(3):
            started = time.perf_counter()
            result = store.sparql(text, options)
            runs.append(time.perf_counter() - started)
        return runs, sorted(result.rows())

    lines = ["Figure 5 addendum — batched vs row-at-a-time execution "
             "(median of 3, hot)", ""]
    try:
        # scan-heavy plans carry the >=5x acceptance bar; q6's plan reduces
        # to a handful of rows at bench scale, so it only has to not regress
        scan_heavy = [("star_lookup", star_lookup_sparql()),
                      ("star_fk_hop", star_fk_hop_sparql()),
                      ("rdfh_q3", q3_sparql())]
        for name, text in scan_heavy + [("rdfh_q6", q6_sparql())]:
            options = PlannerOptions(scheme=OPTIMIZED_SCHEME)
            batched_runs, batched_rows = timed_runs(text, options, 1024)
            row_runs, row_rows = timed_runs(text, options, 1)
            assert batched_rows == row_rows, f"batched diverged on {name}"
            batched = statistics.median(batched_runs)
            row_mode = statistics.median(row_runs)
            speedup = row_mode / max(batched, 1e-9)
            bench_report.record_timings(f"{name}_batched_hot_seconds",
                                        batched_runs, extra={"batch_size": 1024})
            bench_report.record_timings(f"{name}_row_mode_hot_seconds",
                                        row_runs, extra={"batch_size": 1})
            bench_report.record(f"{name}_batch_speedup", speedup, unit="ratio",
                                direction="higher_is_better")
            lines.append(f"  {name:>14}: batched={batched * 1e3:8.2f}ms  "
                         f"row-at-a-time={row_mode * 1e3:9.2f}ms  "
                         f"speedup={speedup:6.1f}x")
            floor = 5.0 if not smoke and name != "rdfh_q6" else 1.0
            assert speedup >= floor, \
                f"{name}: batched only {speedup:.2f}x vs row-at-a-time (floor {floor}x)"
    finally:
        store.config.batch_size = saved
    bench_report.write_text("fig5_batch_speedup.txt", "\n".join(lines) + "\n")


def test_trace_overhead(table1_harness, bench_report):
    """Observation is strictly opt-in: report its cost, bound its blast.

    The same hot micro-query runs four ways:

    * *bare* — straight through the SPARQL engine, no registry, no tracer
      (``NULL_ACTIVE_QUERY`` + ``NULL_TRACER``: two attribute checks per
      operator call);
    * *registry* — ``store.sparql()`` untraced, which now also registers
      every run in the active-query registry (begin/finish bookkeeping
      plus per-batch row accounting);
    * *traced* — ``store.sparql(trace=True)``, span enter/exit around
      every ``open``/``next_batch``/``close``.

    The report records all medians and relative overheads; the assertion
    only bounds the *traced* run (5x vs the registry path) — the ≤5%
    registry-vs-bare guard lives in ``tests/test_observability.py``.
    """
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
    store = table1_harness.store("Clustered")
    query = star_lookup_sparql()
    options = PlannerOptions(scheme=OPTIMIZED_SCHEME)
    store.sparql(query, options)  # warm: plan cached, columns resident
    engine = store.sparql_engine()

    repeats = 10 if smoke else 30

    def best_mean_seconds(run) -> float:
        best = None
        for _ in range(5):
            started = time.perf_counter()
            for _ in range(repeats):
                run()
            mean = (time.perf_counter() - started) / repeats
            best = mean if best is None else min(best, mean)
        return best

    bare = best_mean_seconds(lambda: engine.query(query, options))
    registry = best_mean_seconds(lambda: store.sparql(query, options))
    traced = best_mean_seconds(lambda: store.sparql(query, options, trace=True))
    registry_overhead = registry / max(bare, 1e-12) - 1.0
    traced_overhead = traced / max(registry, 1e-12) - 1.0
    kind = f"best mean of 5x{repeats}"
    bench_report.record("star_lookup_bare_seconds", bare, kind=kind, runs=repeats)
    bench_report.record("star_lookup_registry_seconds", registry, kind=kind,
                        runs=repeats)
    bench_report.record("star_lookup_traced_seconds", traced, kind=kind,
                        runs=repeats)
    report = (f"Figure 5 addendum — observation overhead on star_lookup "
              f"(best mean of 5x{repeats} hot runs)\n"
              f"  bare engine:        {bare * 1e6:9.1f} us/query\n"
              f"  registry (store):   {registry * 1e6:9.1f} us/query  "
              f"({registry_overhead * 100:+6.1f}% vs bare)\n"
              f"  traced:             {traced * 1e6:9.1f} us/query  "
              f"({traced_overhead * 100:+6.1f}% vs registry)\n")
    bench_report.write_text("fig5_trace_overhead.txt", report)
    assert store.last_trace() is not None and store.last_trace().root is not None
    assert traced <= registry * 5.0, \
        f"tracing costs {traced_overhead * 100:.0f}% — span bookkeeping got too heavy"


def test_plan_cache_speedup(table1_harness, bench_report):
    """Repeated prepared queries must be measurably faster through the cache."""
    store = table1_harness.store("Clustered")
    query = star_fk_hop_sparql()
    options = PlannerOptions(scheme=OPTIMIZED_SCHEME)
    rounds = 100

    cached_engine = store.sparql_engine()
    store.plan_cache.clear()
    cached_engine.prepare(query, options)  # prime the cache
    started = time.perf_counter()
    for _ in range(rounds):
        cached_engine.prepare(query, options)
    cached_seconds = time.perf_counter() - started
    assert store.plan_cache.stats()["hits"] >= rounds

    uncached_engine = SparqlEngine(store.context())  # no plan cache attached
    started = time.perf_counter()
    for _ in range(rounds):
        uncached_engine.prepare(query, options)
    uncached_seconds = time.perf_counter() - started

    speedup = uncached_seconds / max(cached_seconds, 1e-9)
    bench_report.record("plan_cache_prepare_speedup", speedup, unit="ratio",
                        runs=rounds, direction="higher_is_better",
                        extra={"cached_seconds": cached_seconds,
                               "uncached_seconds": uncached_seconds})
    bench_report.write_text(
        "fig5_plan_cache.txt",
        f"plan cache prepare() speedup over {rounds} repeats: {speedup:.1f}x\n"
        f"cached:   {cached_seconds * 1e3:.2f} ms total\n"
        f"uncached: {uncached_seconds * 1e3:.2f} ms total\n")
    assert speedup > 1.5, f"expected a measurable cache speedup, got {speedup:.2f}x"
