"""Ablation of the individual optimizations on RDF-H Q3 (simulated cost).

Table I already varies all three knobs; this benchmark isolates each one's
contribution on Q3 cold, relative to the fully-optimized configuration:
clustering only, RDFscan only, zone maps only.
"""

from __future__ import annotations

import pytest

from repro.sparql import DEFAULT_SCHEME, RDFSCAN_SCHEME

ABLATIONS = [
    ("baseline", DEFAULT_SCHEME, "ParseOrder", False),
    ("clustering_only", DEFAULT_SCHEME, "Clustered", False),
    ("rdfscan_only", RDFSCAN_SCHEME, "ParseOrder", False),
    ("clustering_plus_rdfscan", RDFSCAN_SCHEME, "Clustered", False),
    ("fully_optimized", RDFSCAN_SCHEME, "Clustered", True),
]


@pytest.mark.parametrize("label,scheme,ordering,zone_maps", ABLATIONS,
                         ids=[a[0] for a in ABLATIONS])
def test_q3_ablation(benchmark, table1_harness, bench_report, label, scheme,
                     ordering, zone_maps):
    def run():
        return table1_harness.run_cell("Q3", scheme, ordering, zone_maps, "cold")

    measurement = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_ms"] = measurement.simulated_seconds * 1e3
    benchmark.extra_info["page_reads"] = measurement.page_reads
    bench_report.record_pytest_benchmark(f"q3_cold_{label}_wall_seconds", benchmark)
    assert measurement.result_rows >= 1


def test_ablation_ordering(table1_harness, bench_report):
    """Each added optimization must not hurt, and the full stack must win."""
    costs = {}
    for label, scheme, ordering, zone_maps in ABLATIONS:
        measurement = table1_harness.run_cell("Q3", scheme, ordering, zone_maps, "cold")
        costs[label] = measurement.simulated_seconds
        bench_report.record(f"q3_cold_{label}_simulated_seconds",
                            measurement.simulated_seconds,
                            extra={"page_reads": measurement.page_reads})

    lines = ["Q3 ablation (cold, simulated seconds)", ""]
    for label, value in costs.items():
        lines.append(f"{label:>24}: {value * 1e3:9.2f} ms "
                     f"({costs['baseline'] / value:5.1f}x vs baseline)")
    report = "\n".join(lines) + "\n"
    bench_report.write_text("ablation_q3.txt", report)
    print("\n" + report)

    assert costs["clustering_only"] <= costs["baseline"]
    assert costs["clustering_plus_rdfscan"] <= costs["rdfscan_only"]
    assert costs["fully_optimized"] <= costs["clustering_plus_rdfscan"]
    assert costs["fully_optimized"] < costs["baseline"]
