"""Figure 8 (this repo's extension): the concurrency subsystem.

Two measurements:

* **update-burst latency** — per-request cost across a burst of ``BURST``
  single-subject ``INSERT DATA`` requests with *no* intervening compaction.
  The per-request undo log makes each request O(touched keys); the old
  full-delta-copy atomicity scheme was O(pending), i.e. O(N²) for the burst.
  The benchmark asserts the curve is flat: the last chunk of the burst may
  cost at most twice the first chunk.
* **reader throughput vs writer load** — N snapshot-pinning reader threads
  hammering a star query for a fixed window, once against an idle store and
  once while a writer thread applies updates and compactions.  Readers never
  block on the writer during execution (only snapshot *acquisition*
  serializes with an in-flight update), so throughput should degrade
  gracefully, not collapse.

Run in smoke mode (small store, short windows) with ``REPRO_BENCH_SMOKE=1``
— CI does this on every push.  Results land in ``benchmarks/results/``.
"""

from __future__ import annotations

import gc
import os
import threading
import time

import pytest

from repro import RDFStore, StoreConfig
from repro.bench import DblpConfig, generate_dblp
from repro.bench.dblp import CLASS_INPROCEEDINGS, DBLP, P_CREATOR, P_PART_OF, P_TITLE
from repro.cs import DiscoveryConfig, GeneralizationConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

PAPERS = 80 if SMOKE else 400
BURST = 1000
CHUNK = 100
READERS = 4 if SMOKE else 8
WINDOW_SECONDS = 0.6 if SMOKE else 2.0

STAR_QUERY = (
    f"SELECT ?p ?t ?c WHERE {{ ?p <{P_TITLE}> ?t . ?p <{P_PART_OF}> ?c . "
    f"?p <{P_CREATOR}> ?a . }}"
)


def _build_store() -> RDFStore:
    config = StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)))
    triples = generate_dblp(DblpConfig(papers=PAPERS, conferences=8,
                                       authors=max(PAPERS // 4, 8)))
    return RDFStore.build(triples, config=config)


def _burst_update(i: int) -> str:
    paper = f"{DBLP}inproc/burst{i}"
    return (f"INSERT DATA {{ <{paper}> a <{CLASS_INPROCEEDINGS}> ; "
            f"<{P_CREATOR}> <{DBLP}author/{i % 5}> ; "
            f"<{P_TITLE}> \"Burst paper {i}\" ; "
            f"<{P_PART_OF}> <{DBLP}conf/{i % 8}> . }}")


@pytest.fixture(scope="module")
def report_lines():
    lines = ["Figure 8 — concurrency: O(1) update bursts, reader throughput under writes", ""]
    yield lines


def test_update_burst_latency_is_flat(report_lines, bench_report):
    """Per-update cost must stay flat (within 2x) from 1 to BURST pending."""
    store = _build_store()
    store.update(_burst_update(999_999))  # warm the parse/apply path once
    chunk_seconds = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for chunk_start in range(0, BURST, CHUNK):
            started = time.perf_counter()
            for i in range(chunk_start, chunk_start + CHUNK):
                store.update(_burst_update(i))
            chunk_seconds.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    assert store.delta.insert_count() >= BURST * 4
    # medians over three chunks at each end damp one-off scheduler/CPU-steal
    # spikes on shared CI runners; a genuinely superlinear write path (the
    # old full-delta-copy scheme was ~10x by the last chunk) still trips it
    first = sorted(chunk_seconds[:3])[1]
    last = sorted(chunk_seconds[-3:])[1]
    per_update_first = first / CHUNK * 1e6
    per_update_last = last / CHUNK * 1e6
    bench_report.record("update_burst_first_chunk_seconds_per_update",
                        first / CHUNK, runs=CHUNK)
    bench_report.record("update_burst_last_chunk_seconds_per_update",
                        last / CHUNK, runs=CHUNK,
                        extra={"burst": BURST, "growth": round(last / first, 3)})
    report_lines.append(
        f"update burst: {BURST} requests, per-update "
        f"{per_update_first:.0f} µs (median of first 3 chunks) -> "
        f"{per_update_last:.0f} µs (median of last 3) (x{last / first:.2f})")
    curve = ", ".join(f"{int(seconds / CHUNK * 1e6)}" for seconds in chunk_seconds)
    report_lines.append(f"per-update µs per {CHUNK}-request chunk: [{curve}]")
    assert last <= 2.0 * first, (
        f"per-update cost grew from {per_update_first:.0f} µs to "
        f"{per_update_last:.0f} µs across the burst — the write path is "
        f"superlinear in pending-delta size again")


def _reader_window(store: RDFStore, seconds: float, errors: list) -> int:
    """Run READERS snapshot-pinning reader threads; return queries completed."""
    counts = [0] * READERS
    stop = threading.Event()

    def read_loop(slot: int) -> None:
        try:
            while not stop.is_set():
                with store.snapshot() as snap:
                    result = snap.sparql(STAR_QUERY)
                    if len(result) == 0:
                        errors.append("star query returned no rows")
                counts[slot] += 1
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(repr(exc))

    threads = [threading.Thread(target=read_loop, args=(slot,))
               for slot in range(READERS)]
    for thread in threads:
        thread.start()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    return sum(counts)


def test_reader_throughput_vs_writer_load(report_lines, bench_report):
    store = _build_store()
    errors: list = []

    idle_reads = _reader_window(store, WINDOW_SECONDS, errors)
    assert errors == []

    writer_stop = threading.Event()
    updates_applied = [0]

    def write_loop() -> None:
        i = 0
        while not writer_stop.is_set():
            store.update(_burst_update(10_000 + i))
            updates_applied[0] += 1
            if i % 50 == 49:
                store.compact()
            i += 1

    writer = threading.Thread(target=write_loop)
    writer.start()
    try:
        loaded_reads = _reader_window(store, WINDOW_SECONDS, errors)
    finally:
        writer_stop.set()
        writer.join(timeout=60)
    assert errors == []
    assert idle_reads > 0 and loaded_reads > 0
    assert updates_applied[0] > 0, "the writer never got a turn"

    ratio = loaded_reads / idle_reads if idle_reads else float("inf")
    bench_report.record("reader_throughput_idle_qps",
                        idle_reads / WINDOW_SECONDS, unit="queries/s",
                        direction="higher_is_better",
                        extra={"readers": READERS})
    bench_report.record("reader_throughput_under_writes_qps",
                        loaded_reads / WINDOW_SECONDS, unit="queries/s",
                        direction="higher_is_better",
                        extra={"readers": READERS,
                               "updates_applied": updates_applied[0]})
    report_lines.append(
        f"reader throughput ({READERS} threads, {WINDOW_SECONDS:.1f}s windows): "
        f"{idle_reads / WINDOW_SECONDS:,.0f} q/s idle -> "
        f"{loaded_reads / WINDOW_SECONDS:,.0f} q/s with a writer applying "
        f"{updates_applied[0]} updates (+compactions) concurrently "
        f"(x{ratio:.2f})")
    bench_report.write_text("fig8_concurrency.txt",
                            "\n".join(report_lines) + "\n")
