"""Unit and property tests for triples, graphs and the OID dictionary."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DictionaryError
from repro.model import BNode, Graph, IRI, Literal, TermDictionary, Triple
from repro.model.terms import RDF_TYPE

EX = "http://example.org/"


def _triple(i: int) -> Triple:
    return Triple(IRI(f"{EX}s{i}"), IRI(f"{EX}p{i % 3}"), Literal(f"value {i}"))


class TestTriple:
    def test_valid_triple(self):
        t = Triple(IRI(EX + "s"), IRI(EX + "p"), Literal("o"))
        assert t.subject == IRI(EX + "s")

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), IRI(EX + "p"), Literal("o"))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI(EX + "s"), BNode("b"), Literal("o"))

    def test_n3_line(self):
        t = Triple(IRI(EX + "s"), IRI(EX + "p"), Literal("o"))
        assert t.n3() == f'<{EX}s> <{EX}p> "o" .'

    def test_iteration(self):
        t = _triple(1)
        assert list(t) == [t.subject, t.predicate, t.object]


class TestGraph:
    def test_add_and_len(self):
        g = Graph()
        assert g.add(_triple(1)) is True
        assert g.add(_triple(1)) is False
        assert len(g) == 1

    def test_discard(self):
        g = Graph([_triple(1)])
        assert g.discard(_triple(1)) is True
        assert g.discard(_triple(1)) is False
        assert len(g) == 0

    def test_match_by_subject(self):
        g = Graph([_triple(i) for i in range(10)])
        matches = list(g.match(subject=IRI(f"{EX}s3")))
        assert len(matches) == 1

    def test_match_by_predicate(self):
        g = Graph([_triple(i) for i in range(9)])
        assert len(list(g.match(predicate=IRI(f"{EX}p0")))) == 3

    def test_match_wildcard_all(self):
        g = Graph([_triple(i) for i in range(5)])
        assert len(list(g.match())) == 5

    def test_properties_of_is_characteristic_set(self):
        s = IRI(EX + "book")
        g = Graph([
            Triple(s, IRI(EX + "title"), Literal("t")),
            Triple(s, IRI(EX + "author"), Literal("a")),
            Triple(s, IRI(EX + "author"), Literal("b")),
        ])
        assert g.properties_of(s) == {IRI(EX + "title"), IRI(EX + "author")}

    def test_value_and_values(self):
        s = IRI(EX + "book")
        g = Graph([Triple(s, IRI(EX + "author"), Literal("a")),
                   Triple(s, IRI(EX + "author"), Literal("b"))])
        assert g.value(s, IRI(EX + "author")) in (Literal("a"), Literal("b"))
        assert len(g.values(s, IRI(EX + "author"))) == 2
        assert g.value(s, IRI(EX + "missing")) is None

    def test_type_of(self):
        s = IRI(EX + "x")
        g = Graph([Triple(s, IRI(RDF_TYPE), IRI(EX + "Book"))])
        assert g.type_of(s) == IRI(EX + "Book")

    def test_union(self):
        g1 = Graph([_triple(1)])
        g2 = Graph([_triple(2)])
        assert len(g1 | g2) == 2

    def test_predicate_frequencies(self):
        g = Graph([_triple(i) for i in range(6)])
        freqs = g.predicate_frequencies()
        assert sum(freqs.values()) == 6

    def test_literal_ratio(self):
        g = Graph([_triple(1), Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))])
        assert g.literal_ratio() == pytest.approx(0.5)
        assert Graph().literal_ratio() == 0.0

    def test_describe(self):
        s = IRI(EX + "book")
        g = Graph([Triple(s, IRI(EX + "title"), Literal("t"))])
        assert g.describe(s) == {IRI(EX + "title"): [Literal("t")]}


class TestTermDictionary:
    def test_encode_assigns_sequential_oids(self):
        d = TermDictionary()
        assert d.encode_term(IRI(EX + "a")) == 0
        assert d.encode_term(IRI(EX + "b")) == 1
        assert d.encode_term(IRI(EX + "a")) == 0

    def test_decode_round_trip(self):
        d = TermDictionary()
        terms = [IRI(EX + "a"), BNode("b"), Literal("lit"), Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")]
        oids = [d.encode_term(t) for t in terms]
        assert [d.decode(o) for o in oids] == terms

    def test_decode_unknown_oid_raises(self):
        d = TermDictionary()
        with pytest.raises(DictionaryError):
            d.decode(3)

    def test_encode_triple(self):
        d = TermDictionary()
        encoded = d.encode_triple(_triple(1))
        assert d.decode_triple(encoded) == _triple(1)

    def test_lookup_term_missing(self):
        d = TermDictionary()
        assert d.lookup_term(IRI(EX + "a")) is None

    def test_contains_and_len(self):
        d = TermDictionary()
        d.encode_term(IRI(EX + "a"))
        assert IRI(EX + "a") in d
        assert len(d) == 1

    def test_remap_swaps_oids(self):
        d = TermDictionary()
        a = d.encode_term(IRI(EX + "a"))
        b = d.encode_term(IRI(EX + "b"))
        d.remap({a: b, b: a})
        assert d.decode(a) == IRI(EX + "b")
        assert d.decode(b) == IRI(EX + "a")
        assert d.lookup_term(IRI(EX + "a")) == b

    def test_remap_rejects_non_bijection(self):
        d = TermDictionary()
        d.encode_term(IRI(EX + "a"))
        d.encode_term(IRI(EX + "b"))
        with pytest.raises(DictionaryError):
            d.remap({0: 1})  # both 0 and 1 would map to 1

    def test_remap_rejects_out_of_range(self):
        d = TermDictionary()
        d.encode_term(IRI(EX + "a"))
        with pytest.raises(DictionaryError):
            d.remap({0: 5})

    def test_value_ordered_literals(self):
        d = TermDictionary()
        d.encode_term(IRI(EX + "s"))
        big = d.encode_term(Literal("30", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        small = d.encode_term(Literal("2", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        d.reassign_value_ordered_literals()
        new_small = d.lookup_term(Literal("2", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        new_big = d.lookup_term(Literal("30", datatype="http://www.w3.org/2001/XMLSchema#integer"))
        assert new_small < new_big
        # the IRI keeps its OID
        assert d.lookup_term(IRI(EX + "s")) == 0

    def test_items_in_oid_order(self):
        d = TermDictionary()
        d.encode_term(IRI(EX + "a"))
        d.encode_term(IRI(EX + "b"))
        assert [oid for _term, oid in d.items()] == [0, 1]


# -- property-based tests --------------------------------------------------------------


_term_strategy = st.one_of(
    st.integers(min_value=0, max_value=50).map(lambda i: IRI(f"{EX}iri/{i}")),
    st.integers(min_value=0, max_value=20).map(lambda i: BNode(f"b{i}")),
    st.integers(min_value=-100, max_value=100).map(
        lambda i: Literal(str(i), datatype="http://www.w3.org/2001/XMLSchema#integer")),
    st.text(min_size=0, max_size=8).map(Literal),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(_term_strategy, max_size=60))
def test_dictionary_round_trip_property(terms):
    d = TermDictionary()
    oids = [d.encode_term(t) for t in terms]
    assert [d.decode(o) for o in oids] == terms
    # idempotent encoding
    assert [d.encode_term(t) for t in terms] == oids


@settings(max_examples=30, deadline=None)
@given(st.lists(_term_strategy, min_size=1, max_size=60))
def test_value_ordering_is_permutation_property(terms):
    d = TermDictionary()
    for t in terms:
        d.encode_term(t)
    size_before = len(d)
    d.reassign_value_ordered_literals()
    assert len(d) == size_before
    # every term still resolves, and OIDs are still a dense range
    oids = sorted(oid for _t, oid in d.items())
    assert oids == list(range(size_before))
    sorted_literal_oids = d.sorted_literal_oids()
    assert sorted_literal_oids == sorted(sorted_literal_oids)
