"""Tests for the columnar substrate: columns, buffer pool, zone maps, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import (
    BufferPool,
    Column,
    ColumnStats,
    CostModel,
    CostTracker,
    EquiWidthHistogram,
    NULL_OID,
    PredicateCooccurrence,
    QueryCost,
    ZoneMap,
)
from repro.errors import StorageError


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=10, page_size=4)
        assert pool.access_value("col", 0) is False
        assert pool.access_value("col", 1) is True  # same page
        assert pool.tracker.page_reads == 1
        assert pool.tracker.page_hits == 1

    def test_access_range_touches_each_page_once(self):
        pool = BufferPool(page_size=4)
        misses = pool.access_range("col", 0, 10)
        assert misses == 3
        assert pool.access_range("col", 0, 10) == 0

    def test_reset_cold_clears_cache(self):
        pool = BufferPool(page_size=4)
        pool.access_range("col", 0, 8)
        pool.reset_cold()
        assert pool.cached_page_count() == 0
        assert pool.access_value("col", 0) is False

    def test_warm_preloads(self):
        pool = BufferPool(page_size=4)
        pool.warm("col", 10)
        assert pool.cached_page_count() == 3
        assert pool.access_value("col", 9) is True

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2, page_size=1)
        pool.access_page("col", 0)
        pool.access_page("col", 1)
        pool.access_page("col", 2)  # evicts page 0
        assert pool.contains("col", 0) is False
        assert pool.contains("col", 2) is True

    def test_pages_for(self):
        pool = BufferPool(page_size=100)
        assert pool.pages_for(0) == 0
        assert pool.pages_for(1) == 1
        assert pool.pages_for(100) == 1
        assert pool.pages_for(101) == 2

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_pages=0)
        with pytest.raises(ValueError):
            BufferPool(page_size=0)


class TestColumn:
    def test_sorted_validation(self):
        with pytest.raises(StorageError):
            Column("c", [3, 2, 1], sorted_ascending=True)

    def test_get_and_slice(self):
        col = Column("c", [10, 20, 30, 40])
        assert col.get(2) == 30
        assert list(col.slice(1, 3)) == [20, 30]
        with pytest.raises(StorageError):
            col.get(10)

    def test_select_equal_sorted_uses_binary_search(self):
        pool = BufferPool(page_size=2)
        col = Column("c", [1, 1, 2, 3, 3, 3], sorted_ascending=True, pool=pool)
        assert list(col.select_equal(3)) == [3, 4, 5]
        # only the matching pages are touched, not the whole column
        assert pool.tracker.page_reads <= 2

    def test_select_equal_unsorted(self):
        col = Column("c", [5, 1, 5, 2])
        assert list(col.select_equal(5)) == [0, 2]

    def test_select_range_sorted(self):
        col = Column("c", [1, 2, 3, 4, 5], sorted_ascending=True)
        assert list(col.select_range(2, 4)) == [1, 2, 3]
        assert list(col.select_range(2, 4, low_inclusive=False, high_inclusive=False)) == [2]

    def test_select_range_unsorted(self):
        col = Column("c", [5, 1, 4, 2])
        assert sorted(col.select_range(2, 4)) == [2, 3]
        assert list(col.select_range(None, None)) == [0, 1, 2, 3]

    def test_select_in(self):
        col = Column("c", [5, 1, 4, 2])
        assert sorted(col.select_in([1, 4, 99])) == [1, 2]
        assert list(col.select_in([])) == []

    def test_gather_accounts_pages(self):
        pool = BufferPool(page_size=2)
        col = Column("c", list(range(10)), pool=pool)
        values = col.gather([0, 9, 1])
        assert list(values) == [0, 9, 1]
        assert pool.tracker.page_reads == 2  # pages 0 and 4
        with pytest.raises(StorageError):
            col.gather([42])

    def test_null_handling(self):
        col = Column("c", [1, NULL_OID, 3, NULL_OID])
        assert col.null_count() == 2
        assert list(col.not_null_positions()) == [0, 2]
        assert col.min_max() == (1, 3)
        assert col.distinct_count() == 2

    def test_min_max_empty(self):
        assert Column("c", []).min_max() is None


class TestZoneMap:
    def test_build_and_prune(self):
        zone_map = ZoneMap.build(list(range(100)), zone_size=10)
        assert len(zone_map) == 10
        ranges = zone_map.candidate_row_ranges(25, 34)
        assert ranges == [(20, 40)]
        assert zone_map.candidate_row_count(25, 34) == 20

    def test_adjacent_ranges_coalesce(self):
        zone_map = ZoneMap.build(list(range(40)), zone_size=10)
        assert zone_map.candidate_row_ranges(5, 25) == [(0, 30)]

    def test_unbounded_predicate_keeps_everything(self):
        zone_map = ZoneMap.build(list(range(40)), zone_size=10)
        assert zone_map.selectivity(None, None) == 1.0

    def test_no_match(self):
        zone_map = ZoneMap.build([1, 2, 3, 4], zone_size=2)
        assert zone_map.candidate_row_ranges(100, 200) == []
        assert zone_map.selectivity(100, 200) == 0.0

    def test_null_only_zone_never_matches(self):
        zone_map = ZoneMap.build([NULL_OID, NULL_OID, 5, 6], zone_size=2)
        assert zone_map.candidate_row_ranges(0, 100) == [(2, 4)]

    def test_value_bounds_for_rows(self):
        zone_map = ZoneMap.build([10, 20, 30, 40, 50, 60], zone_size=2)
        assert zone_map.value_bounds_for_rows(2, 6) == (30, 60)
        assert zone_map.value_bounds_for_rows(0, 1) == (10, 20)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300),
           st.integers(0, 1000), st.integers(0, 1000))
    def test_pruning_is_sound_property(self, values, a, b):
        """Zone-map pruning never discards a row that matches the predicate."""
        low, high = min(a, b), max(a, b)
        zone_map = ZoneMap.build(values, zone_size=16)
        kept = set()
        for start, stop in zone_map.candidate_row_ranges(low, high):
            kept.update(range(start, stop))
        matching = {i for i, v in enumerate(values) if low <= v <= high}
        assert matching <= kept


class TestCost:
    def test_tracker_snapshot_and_diff(self):
        tracker = CostTracker()
        tracker.page_reads += 3
        base = tracker.snapshot()
        tracker.page_reads += 2
        tracker.tuples_scanned += 10
        diff = tracker.diff(base)
        assert diff["page_reads"] == 2
        assert diff["tuples_scanned"] == 10

    def test_tracker_merge_and_reset(self):
        a, b = CostTracker(), CostTracker()
        b.page_hits = 5
        a.merge(b)
        assert a.page_hits == 5
        a.reset()
        assert a.page_hits == 0

    def test_cost_model_weights_reads_heavier_than_hits(self):
        model = CostModel()
        cold = model.simulated_seconds({"page_reads": 10, "page_hits": 0})
        hot = model.simulated_seconds({"page_reads": 0, "page_hits": 10})
        assert cold > hot * 10

    def test_query_cost_describe(self):
        cost = QueryCost(wall_seconds=0.001, counters={"page_reads": 1}, simulated_seconds=0.0002)
        assert "reads=1" in cost.describe()


class TestStats:
    def test_column_stats(self):
        stats = ColumnStats.from_values([1, 2, 2, NULL_OID, 5])
        assert stats.row_count == 5
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.min_value == 1 and stats.max_value == 5
        assert stats.not_null_fraction() == pytest.approx(0.8)
        assert 0 < stats.estimate_equality_selectivity() <= 1
        assert stats.estimate_range_selectivity(1, 5) == pytest.approx(0.8)

    def test_column_stats_empty(self):
        stats = ColumnStats.from_values([])
        assert stats.distinct_count == 0
        assert stats.estimate_equality_selectivity() == 0.0

    def test_histogram_estimates(self):
        hist = EquiWidthHistogram(list(range(1000)), bucket_count=10)
        estimate = hist.estimate_range_count(0, 499)
        assert estimate == pytest.approx(500, rel=0.05)
        assert hist.estimate_range_selectivity(0, 999) == pytest.approx(1.0, rel=0.01)
        assert hist.estimate_range_count(5000, 6000) == 0.0

    def test_histogram_empty(self):
        hist = EquiWidthHistogram([])
        assert hist.estimate_range_selectivity(0, 10) == 0.0

    def test_cooccurrence_conditional(self):
        sets = {
            1: frozenset({10, 11}),
            2: frozenset({10, 11}),
            3: frozenset({10}),
        }
        stats = PredicateCooccurrence.from_subject_property_sets(sets)
        assert stats.support[10] == 3
        assert stats.joint_count(10, 11) == 2
        assert stats.conditional(10, 11) == pytest.approx(2 / 3)
        assert stats.conditional(11, 10) == pytest.approx(1.0)

    def test_cooccurrence_star_cardinality(self):
        sets = {i: frozenset({1, 2}) for i in range(10)}
        sets.update({100 + i: frozenset({1}) for i in range(10)})
        stats = PredicateCooccurrence.from_subject_property_sets(sets)
        # all subjects with 2 also have 1 -> the star {1,2} has exactly 10 answers
        assert stats.star_cardinality([1, 2]) == pytest.approx(10.0)
        assert stats.star_cardinality([1, 2, 999]) == 0.0
        assert stats.star_cardinality([]) == len(sets)
