"""Tests for binding tables, expressions and the classical physical operators."""

import numpy as np
import pytest

from repro.columnar import BufferPool
from repro.engine import (
    AggregateOp,
    AggregateSpec,
    BinaryOp,
    BindingTable,
    ExecutionContext,
    ExtendOp,
    FilterEqualOp,
    FilterRangeOp,
    HashJoinOp,
    IndexScanOp,
    LimitOp,
    MaterializedOp,
    NestedLoopIndexJoinOp,
    NumericConst,
    NumericVar,
    OidRange,
    OrderByOp,
    PatternTerm,
    ProjectOp,
    TriplePatternPlan,
    cross_join,
    execute_plan,
    hash_join,
)
from repro.engine.operators import DistinctOp, FilterNotEqualOp
from repro.errors import ExecutionError
from repro.model import IRI, Literal, TermDictionary
from repro.model.terms import XSD_INTEGER
from repro.storage import ExhaustiveIndexStore

EX = "http://example.org/"


class TestBindingTable:
    def test_unequal_columns_rejected(self):
        with pytest.raises(ExecutionError):
            BindingTable({"a": np.array([1, 2]), "b": np.array([1])})

    def test_basic_accessors(self):
        t = BindingTable({"a": np.array([1, 2, 3])})
        assert t.num_rows == 3
        assert t.variables == ["a"]
        assert t.has("a") and not t.has("b")
        with pytest.raises(ExecutionError):
            t.column("missing")

    def test_with_column_and_project(self):
        t = BindingTable({"a": np.array([1, 2])})
        t2 = t.with_column("b", np.array([3, 4]))
        assert t2.project(["b"]).variables == ["b"]
        with pytest.raises(ExecutionError):
            t.with_column("c", np.array([1, 2, 3]))

    def test_filter_and_select(self):
        t = BindingTable({"a": np.array([1, 2, 3, 4])})
        assert t.filter_mask(t.column("a") > 2).num_rows == 2
        assert t.select_rows(np.array([0, 3])).column("a").tolist() == [1, 4]

    def test_concat_requires_same_vars(self):
        t1 = BindingTable({"a": np.array([1])})
        t2 = BindingTable({"b": np.array([2])})
        with pytest.raises(ExecutionError):
            t1.concat(t2)
        merged = t1.concat(BindingTable({"a": np.array([5])}))
        assert merged.column("a").tolist() == [1, 5]

    def test_distinct(self):
        t = BindingTable({"a": np.array([1, 1, 2]), "b": np.array([7, 7, 8])})
        assert t.distinct().num_rows == 2

    def test_sort_and_head(self):
        t = BindingTable({"a": np.array([3, 1, 2]), "b": np.array([10, 30, 20])})
        ordered = t.sort_by([("a", False)])
        assert ordered.column("a").tolist() == [1, 2, 3]
        descending = t.sort_by([("b", True)])
        assert descending.column("b").tolist() == [30, 20, 10]
        assert t.head(2).num_rows == 2

    def test_sort_multiple_keys(self):
        t = BindingTable({"a": np.array([1, 1, 0]), "b": np.array([5, 3, 9])})
        ordered = t.sort_by([("a", False), ("b", False)])
        assert list(zip(ordered.column("a").tolist(), ordered.column("b").tolist())) == \
            [(0, 9), (1, 3), (1, 5)]

    def test_iter_rows_and_to_set(self):
        t = BindingTable({"a": np.array([1, 2])})
        assert list(t.iter_rows()) == [{"a": 1}, {"a": 2}]
        assert t.to_set() == {(1,), (2,)}

    def test_rename(self):
        t = BindingTable({"a": np.array([1])})
        assert t.rename({"a": "x"}).variables == ["x"]


class TestJoins:
    def test_cross_join(self):
        left = BindingTable({"a": np.array([1, 2])})
        right = BindingTable({"b": np.array([10, 20, 30])})
        assert cross_join(left, right).num_rows == 6
        with pytest.raises(ExecutionError):
            cross_join(left, BindingTable({"a": np.array([1])}))

    def test_hash_join_basic(self):
        left = BindingTable({"s": np.array([1, 2, 3]), "x": np.array([10, 20, 30])})
        right = BindingTable({"s": np.array([2, 3, 4]), "y": np.array([200, 300, 400])})
        joined = hash_join(left, right, ["s"])
        assert joined.to_set(["s", "x", "y"]) == {(2, 20, 200), (3, 30, 300)}

    def test_hash_join_duplicates(self):
        left = BindingTable({"s": np.array([1, 1])})
        right = BindingTable({"s": np.array([1, 1, 1])})
        assert hash_join(left, right, ["s"]).num_rows == 6

    def test_hash_join_no_keys_is_cross(self):
        left = BindingTable({"a": np.array([1])})
        right = BindingTable({"b": np.array([2, 3])})
        assert hash_join(left, right, []).num_rows == 2


class TestExpressions:
    def test_numeric_var_decodes_oids(self):
        dictionary = TermDictionary()
        oid = dictionary.encode_term(Literal("5", datatype=XSD_INTEGER))
        pool = BufferPool()
        ctx = ExecutionContext(dictionary=dictionary, pool=pool)
        table = BindingTable({"x": np.array([oid])})
        values = NumericVar("x").evaluate(table, ctx.decoder)
        assert values.tolist() == [5.0]

    def test_binary_op_and_const(self):
        dictionary = TermDictionary()
        pool = BufferPool()
        ctx = ExecutionContext(dictionary=dictionary, pool=pool)
        table = BindingTable({"x": np.array([2.0, 3.0])})
        expr = BinaryOp("*", NumericVar("x"), NumericConst(10.0))
        assert expr.evaluate(table, ctx.decoder).tolist() == [20.0, 30.0]
        assert expr.variables() == {"x"}

    def test_invalid_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinaryOp("%", NumericConst(1), NumericConst(2))

    def test_aggregate_spec_functions(self):
        values = np.array([1.0, 2.0, 3.0, float("nan")])
        assert AggregateSpec("sum", NumericConst(0), "x").compute(values) == pytest.approx(6.0)
        assert AggregateSpec("count", NumericConst(0), "x").compute(values) == 4
        assert AggregateSpec("avg", NumericConst(0), "x").compute(values) == pytest.approx(2.0)
        assert AggregateSpec("min", NumericConst(0), "x").compute(values) == 1.0
        assert AggregateSpec("max", NumericConst(0), "x").compute(values) == 3.0
        with pytest.raises(ExecutionError):
            AggregateSpec("median", NumericConst(0), "x")


def _context():
    """Tiny encoded data set + execution context over the exhaustive store."""
    dictionary = TermDictionary()
    rows = []
    p_name = dictionary.encode_term(IRI(EX + "name"))
    p_age = dictionary.encode_term(IRI(EX + "age"))
    ages = {}
    for i in range(6):
        s = dictionary.encode_term(IRI(f"{EX}person/{i}"))
        name = dictionary.encode_term(Literal(f"name{i}"))
        age = dictionary.encode_term(Literal(str(20 + i), datatype=XSD_INTEGER))
        ages[s] = age
        rows.append((s, p_name, name))
        rows.append((s, p_age, age))
    matrix = np.asarray(rows, dtype=np.int64)
    pool = BufferPool(page_size=4)
    store = ExhaustiveIndexStore(matrix, pool=pool)
    ctx = ExecutionContext(dictionary=dictionary, pool=pool, index_store=store)
    return ctx, p_name, p_age, ages


class TestOperators:
    def test_index_scan_binds_variables(self):
        ctx, p_name, _p_age, _ages = _context()
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")))
        result, cost = execute_plan(scan, ctx)
        assert result.num_rows == 6
        assert set(result.variables) == {"s", "n"}
        assert cost.counters["operator_invocations"] == 1

    def test_index_scan_object_range(self):
        ctx, _p_name, p_age, ages = _context()
        age_oids = sorted(ages.values())
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_age),
                                             PatternTerm.variable("a")),
                           object_range=OidRange(age_oids[1], age_oids[3]))
        result, _ = execute_plan(scan, ctx)
        assert result.num_rows == 3

    def test_nested_loop_index_join(self):
        ctx, p_name, p_age, _ages = _context()
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")))
        join = NestedLoopIndexJoinOp(scan, TriplePatternPlan(PatternTerm.variable("s"),
                                                             PatternTerm.constant(p_age),
                                                             PatternTerm.variable("a")))
        result, cost = execute_plan(join, ctx)
        assert result.num_rows == 6
        assert set(result.variables) == {"s", "n", "a"}
        assert cost.counters["join_operations"] == 1
        assert join.count_joins() == 1

    def test_nested_loop_join_requires_variable_subject(self):
        ctx, p_name, _p_age, _ages = _context()
        child = MaterializedOp(BindingTable({"s": np.array([0])}))
        with pytest.raises(ExecutionError):
            NestedLoopIndexJoinOp(child, TriplePatternPlan(PatternTerm.constant(0),
                                                           PatternTerm.constant(p_name),
                                                           PatternTerm.variable("n")))

    def test_filters(self):
        ctx, _p_name, p_age, ages = _context()
        child = MaterializedOp(BindingTable({"a": np.array(sorted(ages.values()))}))
        low, high = sorted(ages.values())[1], sorted(ages.values())[4]
        ranged, _ = execute_plan(FilterRangeOp(child, "a", OidRange(low, high)), ctx)
        assert ranged.num_rows == 4
        equal, _ = execute_plan(FilterEqualOp(child, "a", low), ctx)
        assert equal.num_rows == 1
        not_equal, _ = execute_plan(FilterNotEqualOp(child, "a", low), ctx)
        assert not_equal.num_rows == 5

    def test_project_distinct_order_limit(self):
        ctx, _p, _q, _ages = _context()
        table = BindingTable({"a": np.array([3, 1, 1]), "b": np.array([30, 10, 10])})
        child = MaterializedOp(table)
        projected, _ = execute_plan(ProjectOp(child, ["a"]), ctx)
        assert projected.variables == ["a"]
        distinct, _ = execute_plan(DistinctOp(ProjectOp(child, ["a"])), ctx)
        assert distinct.num_rows == 2
        ordered, _ = execute_plan(OrderByOp(child, [("a", True)]), ctx)
        assert ordered.column("a").tolist() == [3, 1, 1]
        limited, _ = execute_plan(LimitOp(child, 2), ctx)
        assert limited.num_rows == 2

    def test_extend_and_aggregate(self):
        ctx, _p, _q, _ages = _context()
        table = BindingTable({"g": np.array([1, 1, 2]), "x": np.array([1.0, 2.0, 5.0])})
        child = ExtendOp(MaterializedOp(table), "double", BinaryOp("*", NumericVar("x"), NumericConst(2)))
        extended, _ = execute_plan(child, ctx)
        assert extended.column("double").tolist() == [2.0, 4.0, 10.0]
        agg = AggregateOp(MaterializedOp(table), ["g"],
                          [AggregateSpec("sum", NumericVar("x"), "total"),
                           AggregateSpec("count", NumericVar("x"), "n")])
        result, _ = execute_plan(agg, ctx)
        rows = {int(g): (t, n) for g, t, n in zip(result.column("g"), result.column("total"),
                                                  result.column("n"))}
        assert rows[1] == (3.0, 2.0)
        assert rows[2] == (5.0, 1.0)

    def test_aggregate_without_groups(self):
        ctx, _p, _q, _ages = _context()
        table = BindingTable({"x": np.array([1.0, 2.0])})
        agg = AggregateOp(MaterializedOp(table), [], [AggregateSpec("sum", NumericVar("x"), "total")])
        result, _ = execute_plan(agg, ctx)
        assert result.column("total").tolist() == [3.0]

    def test_hash_join_operator_auto_vars(self):
        ctx, _p, _q, _ages = _context()
        left = MaterializedOp(BindingTable({"s": np.array([1, 2]), "x": np.array([5, 6])}))
        right = MaterializedOp(BindingTable({"s": np.array([2, 3]), "y": np.array([7, 8])}))
        result, _ = execute_plan(HashJoinOp(left, right), ctx)
        assert result.to_set(["s", "x", "y"]) == {(2, 6, 7)}

    def test_explain_tree(self):
        ctx, p_name, p_age, _ages = _context()
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")))
        join = NestedLoopIndexJoinOp(scan, TriplePatternPlan(PatternTerm.variable("s"),
                                                             PatternTerm.constant(p_age),
                                                             PatternTerm.variable("a")))
        text = join.explain()
        assert "NestedLoopIndexJoin" in text and "IndexScan" in text
        assert join.count_operators() == 2
        assert join.operator_names()["IndexScanOp"] == 1


class TestBatchedExecution:
    """The batch protocol: size sweeps, row accounting, legacy fallback."""

    def _pipeline(self, ctx, p_name, p_age):
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")))
        return NestedLoopIndexJoinOp(scan, TriplePatternPlan(PatternTerm.variable("s"),
                                                             PatternTerm.constant(p_age),
                                                             PatternTerm.variable("a")))

    @pytest.mark.parametrize("size", [1, 2, 3, 1024])
    def test_pipeline_rows_identical_across_batch_sizes(self, size):
        ctx, p_name, p_age, _ages = _context()
        reference_ctx, rp_name, rp_age, _ = _context()
        reference, _ = execute_plan(self._pipeline(reference_ctx, rp_name, rp_age),
                                    reference_ctx)
        ctx.batch_size = size
        result, _ = execute_plan(self._pipeline(ctx, p_name, p_age), ctx)
        assert result.variables == reference.variables
        for name in reference.variables:
            assert result.column(name).tolist() == reference.column(name).tolist()

    @pytest.mark.parametrize("size", [1, 3, 1024])
    def test_operator_counters_independent_of_batch_size(self, size):
        ctx, p_name, p_age, _ages = _context()
        _result, cost = execute_plan(self._pipeline(ctx, p_name, p_age), ctx)
        reference = dict(cost.counters)
        ctx.batch_size = size
        _result, swept = execute_plan(self._pipeline(ctx, p_name, p_age), ctx)
        for key in ("operator_invocations", "join_operations", "tuples_probed"):
            assert swept.counters[key] == reference[key], key

    def test_actual_rows_counts_rows_not_batches(self):
        """Regression: with 6 output rows at batch_size=1 the old counter
        would have read 6 either way, but a row-per-batch stream must not
        report the *batch* count."""
        ctx, p_name, p_age, _ages = _context()
        ctx.batch_size = 2  # 6 rows -> 3 batches; actual_rows must still be 6
        plan = self._pipeline(ctx, p_name, p_age)
        execute_plan(plan, ctx)
        assert plan.actual_rows == 6
        assert plan.children()[0].actual_rows == 6

    def test_streaming_batches_preserve_schema_on_empty_result(self):
        ctx, p_name, _p_age, _ages = _context()
        ctx.batch_size = 4
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")),
                           object_range=OidRange(1, 0))  # empty interval
        result, _ = execute_plan(scan, ctx)
        assert result.num_rows == 0
        assert set(result.variables) == {"s", "n"}

    def test_legacy_execute_fallback_is_batched(self):
        """Operators implementing only ``_execute`` still stream in batches."""

        from repro.engine import PhysicalOperator

        class LegacyOp(PhysicalOperator):
            def _execute(self, context):
                return BindingTable({"a": np.arange(5, dtype=np.int64)})

        ctx, _p, _q, _ages = _context()
        ctx.batch_size = 2
        op = LegacyOp()
        op.open(ctx)
        sizes = []
        while True:
            batch = op.next_batch(ctx)
            if batch is None:
                break
            sizes.append(batch.live_count())
        op.close(ctx)
        assert sizes == [2, 2, 1]
        assert op.actual_rows == 5

    def test_limit_stops_pulling_from_child(self):
        ctx, _p, _q, _ages = _context()
        ctx.batch_size = 2

        class CountingOp(MaterializedOp):
            pulls = 0

            def _next_batch(self, context):
                type(self).pulls += 1
                return super()._next_batch(context)

        child = CountingOp(BindingTable({"a": np.arange(100, dtype=np.int64)}))
        limited, _ = execute_plan(LimitOp(child, 2), ctx)
        assert limited.num_rows == 2
        assert CountingOp.pulls <= 2  # never drained all 50 batches


class TestPlanPrimitives:
    def test_pattern_term_validation(self):
        with pytest.raises(Exception):
            PatternTerm()
        with pytest.raises(Exception):
            PatternTerm(var="x", oid=1)

    def test_oid_range_intersect_and_contains(self):
        a = OidRange(1, 10)
        b = OidRange(5, None)
        c = a.intersect(b)
        assert (c.low, c.high) == (5, 10)
        assert c.contains(7) and not c.contains(11)
        assert OidRange().is_unbounded()

    def test_cold_vs_hot_cost(self):
        ctx, p_name, _p_age, _ages = _context()
        scan = IndexScanOp(TriplePatternPlan(PatternTerm.variable("s"),
                                             PatternTerm.constant(p_name),
                                             PatternTerm.variable("n")))
        _result, cold = execute_plan(scan, ctx)
        _result, hot = execute_plan(scan, ctx)
        assert cold.counters["page_reads"] > 0
        assert hot.counters["page_reads"] == 0
        assert hot.simulated_seconds < cold.simulated_seconds
