"""Tests for the N-Triples and Turtle parsers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.model import BNode, Graph, IRI, Literal, Triple
from repro.model.terms import RDF_TYPE, XSD_INTEGER
from repro.rio import load_graph, parse_ntriples, parse_rdf, parse_turtle, serialize_ntriples

EX = "http://example.org/"


class TestNTriplesParsing:
    def test_simple_triple(self):
        [t] = parse_ntriples(f'<{EX}s> <{EX}p> <{EX}o> .')
        assert t == Triple(IRI(EX + "s"), IRI(EX + "p"), IRI(EX + "o"))

    def test_plain_literal(self):
        [t] = parse_ntriples(f'<{EX}s> <{EX}p> "hello world" .')
        assert t.object == Literal("hello world")

    def test_typed_literal(self):
        [t] = parse_ntriples(f'<{EX}s> <{EX}p> "5"^^<{XSD_INTEGER}> .')
        assert t.object == Literal("5", datatype=XSD_INTEGER)

    def test_language_literal(self):
        [t] = parse_ntriples(f'<{EX}s> <{EX}p> "bonjour"@fr .')
        assert t.object == Literal("bonjour", language="fr")

    def test_blank_nodes(self):
        [t] = parse_ntriples(f'_:a <{EX}p> _:b .')
        assert t.subject == BNode("a")
        assert t.object == BNode("b")

    def test_escaped_literal(self):
        [t] = parse_ntriples(f'<{EX}s> <{EX}p> "line1\\nline2\\t\\"x\\"" .')
        assert t.object.lexical == 'line1\nline2\t"x"'

    def test_comments_and_blank_lines_skipped(self):
        text = f"# comment\n\n<{EX}s> <{EX}p> <{EX}o> .\n"
        assert len(list(parse_ntriples(text))) == 1

    def test_multiple_lines(self):
        text = "\n".join(f'<{EX}s{i}> <{EX}p> "v{i}" .' for i in range(20))
        assert len(list(parse_ntriples(text))) == 20

    @pytest.mark.parametrize("bad", [
        f'<{EX}s> <{EX}p> .',
        f'<{EX}s> <{EX}p> "unterminated .',
        f'"literal" <{EX}p> <{EX}o> .',
        f'<{EX}s> <{EX}p> <{EX}o>',
        f'<{EX}s <{EX}p> <{EX}o> .',
        f'<{EX}s> <{EX}p> <{EX}o> . extra',
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ParseError):
            list(parse_ntriples(bad))

    def test_error_reports_line_number(self):
        text = f'<{EX}s> <{EX}p> "ok" .\nbroken line\n'
        with pytest.raises(ParseError) as excinfo:
            list(parse_ntriples(text))
        assert excinfo.value.line == 2


class TestNTriplesSerialization:
    def test_round_trip(self):
        triples = [
            Triple(IRI(EX + "s"), IRI(EX + "p"), Literal('say "hi"\n')),
            Triple(BNode("x"), IRI(EX + "p"), Literal("5", datatype=XSD_INTEGER)),
            Triple(IRI(EX + "s"), IRI(EX + "q"), Literal("bonjour", language="fr")),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(0, 20),
            st.integers(0, 5),
            st.one_of(st.text(max_size=20), st.integers(-1000, 1000)),
        ), max_size=30))
    def test_round_trip_property(self, rows):
        triples = []
        for s, p, o in rows:
            obj = Literal(str(o), datatype=XSD_INTEGER) if isinstance(o, int) else Literal(o)
            triples.append(Triple(IRI(f"{EX}s{s}"), IRI(f"{EX}p{p}"), obj))
        assert list(parse_ntriples(serialize_ntriples(triples))) == triples


class TestTurtleParsing:
    def test_prefixed_names_and_a_keyword(self):
        text = f"""
        @prefix ex: <{EX}> .
        ex:book1 a ex:Book ;
            ex:title "The title" ;
            ex:year 1996 .
        """
        triples = list(parse_turtle(text))
        assert Triple(IRI(EX + "book1"), IRI(RDF_TYPE), IRI(EX + "Book")) in triples
        assert Triple(IRI(EX + "book1"), IRI(EX + "title"), Literal("The title")) in triples
        assert any(t.object.lexical == "1996" for t in triples if isinstance(t.object, Literal)
                   and t.predicate == IRI(EX + "year"))

    def test_object_lists(self):
        text = f'@prefix ex: <{EX}> .\nex:b ex:author ex:a1, ex:a2 .'
        triples = list(parse_turtle(text))
        assert len(triples) == 2

    def test_decimal_and_boolean_literals(self):
        text = f'@prefix ex: <{EX}> .\nex:x ex:price 3.25 ; ex:flag true .'
        triples = {t.predicate.local_name(): t.object for t in parse_turtle(text)}
        assert triples["price"].to_python() == pytest.approx(3.25)
        assert triples["flag"].to_python() is True

    def test_typed_and_language_literals(self):
        text = (f'@prefix ex: <{EX}> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
                f'ex:x ex:d "2001-01-01"^^xsd:date ; ex:l "hoi"@nl .')
        objects = [t.object for t in parse_turtle(text)]
        assert Literal("2001-01-01", datatype="http://www.w3.org/2001/XMLSchema#date") in objects
        assert Literal("hoi", language="nl") in objects

    def test_comments(self):
        text = f'@prefix ex: <{EX}> . # a comment\nex:a ex:p ex:b . # trailing'
        assert len(list(parse_turtle(text))) == 1

    def test_undefined_prefix_raises(self):
        with pytest.raises(ParseError):
            list(parse_turtle("foo:a foo:b foo:c ."))

    def test_unterminated_statement_raises(self):
        with pytest.raises(ParseError):
            list(parse_turtle(f'@prefix ex: <{EX}> .\nex:a ex:b ex:c'))

    def test_blank_nodes(self):
        text = f'@prefix ex: <{EX}> .\n_:x ex:p _:y .'
        [t] = list(parse_turtle(text))
        assert t.subject == BNode("x") and t.object == BNode("y")


class TestHighLevelHelpers:
    def test_parse_rdf_dispatch(self):
        nt = f'<{EX}s> <{EX}p> "v" .'
        ttl = f'@prefix ex: <{EX}> .\nex:s ex:p "v" .'
        assert list(parse_rdf(nt, "ntriples")) == list(parse_rdf(ttl, "turtle"))

    def test_parse_rdf_unknown_syntax(self):
        with pytest.raises(ParseError):
            parse_rdf("", syntax="rdfxml")

    def test_load_graph_from_text(self):
        graph = load_graph(f'<{EX}s> <{EX}p> "v" .')
        assert isinstance(graph, Graph)
        assert len(graph) == 1

    def test_load_graph_from_file(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(f'<{EX}s> <{EX}p> "v" .\n', encoding="utf-8")
        assert len(load_graph(path)) == 1

    def test_load_graph_turtle_extension(self, tmp_path):
        path = tmp_path / "data.ttl"
        path.write_text(f'@prefix ex: <{EX}> .\nex:s ex:p "v" .\n', encoding="utf-8")
        assert len(load_graph(path)) == 1
