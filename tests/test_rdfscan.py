"""Tests for RDFscan / RDFjoin and their equivalence with the Default plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import RDFStore, StoreConfig
from repro.columnar import BufferPool
from repro.cs import DiscoveryConfig, GeneralizationConfig, discover_schema
from repro.engine import (
    ExecutionContext,
    IndexScanOp,
    MaterializedOp,
    NestedLoopIndexJoinOp,
    OidRange,
    PatternTerm,
    RDFJoinOp,
    RDFScanOp,
    StarPattern,
    StarProperty,
    TriplePatternPlan,
    execute_plan,
    fk_range_from_zonemap,
    subject_range_for_property_range,
)
from repro.engine.bindings import BindingTable
from repro.model import IRI, Literal, TermDictionary, Triple
from repro.model.terms import XSD_INTEGER
from repro.storage import (
    ClusteredStore,
    ExhaustiveIndexStore,
    cluster_subjects,
    encode_graph,
    value_order_literals,
)

EX = "http://example.org/"


def _library_context(with_dirty: bool = True, zone_size: int = 8):
    """Book/author graph with optional dirty bits, fully materialized context."""
    triples = []
    for i in range(40):
        book = IRI(f"{EX}book/{i}")
        triples.append(Triple(book, IRI(EX + "type"), IRI(EX + "Book")))
        triples.append(Triple(book, IRI(EX + "has_author"), IRI(f"{EX}author/{i % 6}")))
        triples.append(Triple(book, IRI(EX + "in_year"),
                              Literal(str(1990 + i % 12), datatype=XSD_INTEGER)))
        triples.append(Triple(book, IRI(EX + "isbn_no"), Literal(f"isbn-{i:03d}")))
    for i in range(6):
        author = IRI(f"{EX}author/{i}")
        triples.append(Triple(author, IRI(EX + "type"), IRI(EX + "Person")))
        triples.append(Triple(author, IRI(EX + "name"), Literal(f"Author {i}")))
    if with_dirty:
        # a second author for one book (spills to the irregular store)
        triples.append(Triple(IRI(f"{EX}book/0"), IRI(EX + "has_author"), IRI(f"{EX}author/5")))
        # a subject outside every CS
        triples.append(Triple(IRI(f"{EX}thing"), IRI(EX + "has_author"), IRI(f"{EX}author/1")))
        triples.append(Triple(IRI(f"{EX}thing"), IRI(EX + "in_year"),
                              Literal("2001", datatype=XSD_INTEGER)))
        triples.append(Triple(IRI(f"{EX}thing"), IRI(EX + "isbn_no"), Literal("isbn-x")))

    dictionary, matrix = encode_graph(triples)
    matrix = value_order_literals(matrix, dictionary)
    schema = discover_schema(matrix, dictionary,
                             DiscoveryConfig(generalization=GeneralizationConfig(min_support=3)))
    year_oid = dictionary.lookup_term(IRI(EX + "in_year"))
    book_cs = next((cs_id for cs_id, t in schema.tables.items() if t.has_property(year_oid)), None)
    sort_keys = {book_cs: year_oid} if book_cs is not None else None
    matrix, _plan = cluster_subjects(matrix, dictionary, schema, sort_keys)
    pool = BufferPool(page_size=8)
    index_store = ExhaustiveIndexStore(matrix, pool=pool)
    zone_props = {cs_id: list(t.properties) for cs_id, t in schema.tables.items()}
    clustered = ClusteredStore.build(matrix, schema, pool=pool,
                                     zone_map_properties=zone_props, zone_size=zone_size)
    ctx = ExecutionContext(dictionary=dictionary, pool=pool, index_store=index_store,
                           clustered_store=clustered, schema=schema)
    return ctx


def _predicate(ctx, name):
    return ctx.dictionary.lookup_term(IRI(EX + name))


def _star(ctx, year_range=None):
    props = [
        StarProperty(_predicate(ctx, "has_author"), PatternTerm.variable("a")),
        StarProperty(_predicate(ctx, "in_year"), PatternTerm.variable("y"), oid_range=year_range),
        StarProperty(_predicate(ctx, "isbn_no"), PatternTerm.variable("n")),
    ]
    return StarPattern(subject_var="b", properties=props)


def _default_plan(ctx, year_range=None):
    patterns = [
        TriplePatternPlan(PatternTerm.variable("b"), PatternTerm.constant(_predicate(ctx, "has_author")),
                          PatternTerm.variable("a")),
        TriplePatternPlan(PatternTerm.variable("b"), PatternTerm.constant(_predicate(ctx, "in_year")),
                          PatternTerm.variable("y")),
        TriplePatternPlan(PatternTerm.variable("b"), PatternTerm.constant(_predicate(ctx, "isbn_no")),
                          PatternTerm.variable("n")),
    ]
    root = IndexScanOp(patterns[0])
    root = NestedLoopIndexJoinOp(root, patterns[1], object_range=year_range)
    root = NestedLoopIndexJoinOp(root, patterns[2])
    return root


class TestRDFScanEquivalence:
    def test_full_star_matches_default_plan(self):
        ctx = _library_context()
        default_result, _ = execute_plan(_default_plan(ctx), ctx)
        rdfscan_result, _ = execute_plan(RDFScanOp(_star(ctx)), ctx)
        assert rdfscan_result.to_set(["b", "a", "y", "n"]) == default_result.to_set(["b", "a", "y", "n"])

    def test_index_path_matches_clustered_path(self):
        ctx = _library_context()
        clustered_result, _ = execute_plan(RDFScanOp(_star(ctx)), ctx)
        index_result, _ = execute_plan(RDFScanOp(_star(ctx), force_index_path=True), ctx)
        assert clustered_result.to_set(["b", "a", "y", "n"]) == index_result.to_set(["b", "a", "y", "n"])

    def test_range_constraint_consistency(self):
        ctx = _library_context()
        year_range = ctx.encoder.literal_range(Literal("1994", datatype=XSD_INTEGER),
                                               Literal("1998", datatype=XSD_INTEGER))
        default_result, _ = execute_plan(_default_plan(ctx, year_range), ctx)
        for use_zm in (False, True):
            scan_result, _ = execute_plan(RDFScanOp(_star(ctx, year_range), use_zone_maps=use_zm), ctx)
            assert scan_result.to_set(["b", "a", "y", "n"]) == default_result.to_set(["b", "a", "y", "n"])

    def test_constant_object_constraint(self):
        ctx = _library_context()
        author_oid = ctx.dictionary.lookup_term(IRI(f"{EX}author/2"))
        star = StarPattern(subject_var="b", properties=[
            StarProperty(_predicate(ctx, "has_author"), PatternTerm.constant(author_oid)),
            StarProperty(_predicate(ctx, "isbn_no"), PatternTerm.variable("n")),
        ])
        result, _ = execute_plan(RDFScanOp(star), ctx)
        # author/2 wrote books 2, 8, 14, ... (i % 6 == 2) -> 7 of 40 books
        assert result.num_rows == 7

    def test_multi_valued_and_irregular_subjects_are_answered(self):
        ctx = _library_context(with_dirty=True)
        star = _star(ctx)
        result, _ = execute_plan(RDFScanOp(star), ctx)
        decoded_subjects = {ctx.decoder.python_value(int(v)) for v in result.column("b")}
        assert f"{EX}thing" in decoded_subjects
        # book/0 has two authors: both bindings must be present
        book0 = ctx.dictionary.lookup_term(IRI(f"{EX}book/0"))
        book0_rows = [row for row in result.iter_rows() if row["b"] == book0]
        assert len(book0_rows) == 2

    def test_zone_maps_reduce_page_reads(self):
        ctx = _library_context(with_dirty=False, zone_size=4)
        year_range = ctx.encoder.literal_range(Literal("1990", datatype=XSD_INTEGER),
                                               Literal("1991", datatype=XSD_INTEGER))
        star_plain = _star(ctx, year_range)
        star_zoned = _star(ctx, year_range)
        ctx.pool.reset_cold()
        _res, cost_plain = execute_plan(RDFScanOp(star_plain), ctx)
        ctx.pool.reset_cold()
        _res, cost_zoned = execute_plan(RDFScanOp(star_zoned, use_zone_maps=True), ctx)
        assert cost_zoned.counters["tuples_scanned"] <= cost_plain.counters["tuples_scanned"]

    def test_empty_result_for_impossible_range(self):
        ctx = _library_context()
        star = _star(ctx, OidRange(low=1, high=0))
        result, _ = execute_plan(RDFScanOp(star), ctx)
        assert result.num_rows == 0


class TestRDFJoin:
    def test_candidate_subjects_restrict_result(self):
        ctx = _library_context(with_dirty=False)
        all_books, _ = execute_plan(RDFScanOp(_star(ctx)), ctx)
        some_subjects = np.asarray(sorted(set(all_books.column("b").tolist()))[:5], dtype=np.int64)
        child = MaterializedOp(BindingTable({"b": some_subjects}))
        join = RDFJoinOp(child, _star(ctx))
        result, cost = execute_plan(join, ctx)
        assert set(result.column("b").tolist()) == set(some_subjects.tolist())
        assert cost.counters["join_operations"] >= 1

    def test_join_preserves_child_columns(self):
        ctx = _library_context(with_dirty=False)
        all_books, _ = execute_plan(RDFScanOp(_star(ctx)), ctx)
        subjects = np.asarray(sorted(set(all_books.column("b").tolist()))[:3], dtype=np.int64)
        child = MaterializedOp(BindingTable({"b": subjects, "extra": np.arange(3)}))
        result, _ = execute_plan(RDFJoinOp(child, _star(ctx)), ctx)
        assert "extra" in result.variables

    def test_index_path_join_matches_clustered(self):
        ctx = _library_context(with_dirty=False)
        all_books, _ = execute_plan(RDFScanOp(_star(ctx)), ctx)
        subjects = np.asarray(sorted(set(all_books.column("b").tolist()))[:7], dtype=np.int64)
        child = MaterializedOp(BindingTable({"b": subjects}))
        clustered, _ = execute_plan(RDFJoinOp(child, _star(ctx)), ctx)
        via_index, _ = execute_plan(RDFJoinOp(child, _star(ctx), force_index_path=True), ctx)
        assert clustered.to_set(["b", "a", "y", "n"]) == via_index.to_set(["b", "a", "y", "n"])


class TestZoneMapPushdownHelpers:
    def test_subject_range_for_sorted_property(self):
        ctx = _library_context(with_dirty=False)
        store = ctx.clustered_store
        year_oid = _predicate(ctx, "in_year")
        block = next(b for b in store.blocks if b.has_property(year_oid))
        assert year_oid in block.sorted_properties
        year_range = ctx.encoder.literal_range(Literal("1990", datatype=XSD_INTEGER),
                                               Literal("1992", datatype=XSD_INTEGER))
        subject_range = subject_range_for_property_range(block, year_oid, year_range)
        assert subject_range is not None
        # every matching subject must fall inside the derived range
        star = _star(ctx, year_range)
        result, _ = execute_plan(RDFScanOp(star), ctx)
        for subject in result.column("b"):
            assert subject_range.contains(int(subject))

    def test_subject_range_returns_none_for_unsorted_property(self):
        ctx = _library_context(with_dirty=False)
        store = ctx.clustered_store
        isbn_oid = _predicate(ctx, "isbn_no")
        block = next(b for b in store.blocks if b.has_property(isbn_oid))
        if isbn_oid in block.sorted_properties:
            pytest.skip("isbn column happens to be sorted in this layout")
        assert subject_range_for_property_range(block, isbn_oid, OidRange(0, 10)) is None

    def test_fk_range_from_zonemap(self):
        ctx = _library_context(with_dirty=False, zone_size=4)
        store = ctx.clustered_store
        year_oid = _predicate(ctx, "in_year")
        author_oid = _predicate(ctx, "has_author")
        block = next(b for b in store.blocks if b.has_property(year_oid))
        year_range = ctx.encoder.literal_range(Literal("1990", datatype=XSD_INTEGER),
                                               Literal("1993", datatype=XSD_INTEGER))
        fk_range = fk_range_from_zonemap(block, year_oid, year_range, author_oid)
        assert fk_range is not None
        # the derived bound must cover every author actually referenced by matching books
        star = _star(ctx, year_range)
        result, _ = execute_plan(RDFScanOp(star), ctx)
        for author in result.column("a"):
            assert fk_range.contains(int(author))


# -- property-based equivalence over random regular/dirty data --------------------------


@st.composite
def random_star_dataset(draw):
    subject_count = draw(st.integers(4, 25))
    property_count = draw(st.integers(2, 4))
    rows = []
    for s in range(subject_count):
        for p in range(property_count):
            if draw(st.booleans()) or p < 2:
                value = draw(st.integers(0, 6))
                rows.append((s, p, value))
                # occasional second value for the same property (dirty data)
                if draw(st.integers(0, 9)) == 0:
                    rows.append((s, p, draw(st.integers(0, 6))))
    return sorted(set(rows)), property_count


@settings(max_examples=25, deadline=None)
@given(random_star_dataset())
def test_rdfscan_equals_merge_evaluation_property(data):
    """RDFscan over the clustered store gives exactly the same star bindings as
    a naive per-subject evaluation over the raw triples."""
    rows, property_count = data
    triples = [Triple(IRI(f"{EX}s{s}"), IRI(f"{EX}p{p}"), Literal(f"v{o}")) for s, p, o in rows]
    dictionary, matrix = encode_graph(triples)
    schema = discover_schema(matrix, dictionary,
                             DiscoveryConfig(generalization=GeneralizationConfig(min_support=2)))
    matrix, _plan = cluster_subjects(matrix, dictionary, schema)
    pool = BufferPool(page_size=4)
    ctx = ExecutionContext(
        dictionary=dictionary, pool=pool,
        index_store=ExhaustiveIndexStore(matrix, pool=pool),
        clustered_store=ClusteredStore.build(matrix, schema, pool=pool),
        schema=schema,
    )
    star_predicates = [dictionary.lookup_term(IRI(f"{EX}p{p}")) for p in range(2)]
    star = StarPattern(subject_var="s", properties=[
        StarProperty(star_predicates[0], PatternTerm.variable("v0")),
        StarProperty(star_predicates[1], PatternTerm.variable("v1")),
    ])
    result, _ = execute_plan(RDFScanOp(star), ctx)

    # naive evaluation straight over the encoded triples
    by_subject = {}
    for s, p, o in matrix.tolist():
        by_subject.setdefault(s, {}).setdefault(p, set()).add(o)
    expected = set()
    for s, props in by_subject.items():
        v0s = props.get(star_predicates[0], set())
        v1s = props.get(star_predicates[1], set())
        for v0 in v0s:
            for v1 in v1s:
                expected.add((s, v0, v1))
    assert result.to_set(["s", "v0", "v1"]) == expected
