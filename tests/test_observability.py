"""Observability layer: metrics registry, trace spans, slow log, exposition.

Covered here:

* registry semantics — get-or-create identity, kind conflicts, label
  validation, thread-safety of concurrent increments/observations;
* histogram correctness against a sorted-list oracle (count/sum/max exact,
  percentiles within the containing bucket);
* Prometheus text exposition — golden output, label escaping, zero-valued
  unlabeled metrics;
* per-query traces — span tree identical in shape to the physical plan,
  ``explain(analyze=True)`` timing column, per-run accounting on shared
  cached plans (the ``actual_rows`` hazard);
* the slow-query log threshold and ring eviction;
* store integration — ``metrics()`` / ``slow_queries()`` / ``last_trace()``,
  survival across ``open(into=)`` swaps and snapshot-pinned readers,
  ``BufferPool.snapshot_delta``, the HTTP ``/metrics`` endpoint;
* the overhead guard: instrumentation with tracing *off* stays within 5%
  of the raw engine path.
"""

from __future__ import annotations

import random
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    MetricsRegistry,
    PlannerOptions,
    QueryServer,
    QueryTrace,
    RDFStore,
    SlowQueryLog,
    StorageError,
    StoreConfig,
    default_registry,
    render_prometheus,
)
from repro.cs import DiscoveryConfig, GeneralizationConfig
from repro.obs.metrics import Counter, Gauge, Histogram

from _datasets import EX, book_triples

STAR_QUERY = f"SELECT ?b ?a WHERE {{ ?b <{EX}has_author> ?a . ?b <{EX}isbn_no> ?i . }}"
LOOKUP_QUERY = f"SELECT ?b WHERE {{ ?b <{EX}has_author> <{EX}author/1> . }}"


def _config(**overrides) -> StoreConfig:
    return StoreConfig(discovery=DiscoveryConfig(
        generalization=GeneralizationConfig(min_support=3)), **overrides)


@pytest.fixture()
def store() -> RDFStore:
    return RDFStore.build(book_triples(), config=_config())


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", "Hits.")
        b = reg.counter("hits_total")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        reg.gauge("y", labelnames=("kind",))
        with pytest.raises(ValueError):
            reg.gauge("y")  # same kind, different labels

    def test_label_validation(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(kind="read", extra="nope")
        c.inc(kind="read")
        assert c.value(kind="read") == 1

    def test_counters_only_go_up(self):
        c = Counter("n_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_callback_metrics_reject_explicit_writes(self):
        source = {"v": 7}
        reg = MetricsRegistry()
        c = reg.counter("cb_total", fn=lambda: source["v"])
        g = reg.gauge("cb_gauge", fn=lambda: source["v"])
        assert c.value() == 7 and g.value() == 7
        source["v"] = 9
        assert c.value() == 9  # read at collection time, not registration
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            g.set(1)

    def test_dying_callback_skipped_by_collect(self):
        reg = MetricsRegistry()
        reg.gauge("ok", fn=lambda: 1)
        reg.gauge("dying", fn=lambda: 1 / 0)
        collected = reg.collect()
        assert collected == {"ok": 1}

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        counter = reg.counter("bumps_total", labelnames=("worker",))
        hist = reg.histogram("values", buckets=(1.0, 10.0))
        gauge = reg.gauge("level")
        threads, per_thread = 8, 2000

        def work(worker: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=str(worker % 2))
                hist.observe(float(i % 20))
                gauge.add(1)

        pool = [threading.Thread(target=work, args=(w,)) for w in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads * per_thread
        assert hist.count() == threads * per_thread
        assert gauge.value() == threads * per_thread

    def test_concurrent_registration_converges(self):
        reg = MetricsRegistry()
        seen = []

        def register() -> None:
            seen.append(reg.counter("shared_total"))

        pool = [threading.Thread(target=register) for _ in range(16)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert all(metric is seen[0] for metric in seen)


# -- histogram vs. sorted-list oracle -----------------------------------------


class TestHistogram:
    def test_matches_sorted_oracle_within_bucket(self):
        rng = random.Random(20130408)  # the paper's conference date
        hist = Histogram("latency_seconds")
        values = [10 ** rng.uniform(-5, 1.5) for _ in range(5000)]
        for v in values:
            hist.observe(v)
        ordered = sorted(values)
        assert hist.count() == len(values)
        assert hist.sum() == pytest.approx(sum(values))
        assert hist.max() == max(values)
        bounds = hist.buckets
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            oracle = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            estimate = hist.percentile(q)
            # the estimate must land inside the oracle's bucket (lo, hi]
            slot = next(i for i, b in enumerate(bounds) if oracle <= b)
            lo = bounds[slot - 1] if slot else 0.0
            hi = min(bounds[slot], max(values))
            assert lo <= estimate <= hi, (q, oracle, estimate, lo, hi)

    def test_empty_and_single_value(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        assert hist.summary() == {"count": 0, "sum": 0.0, "max": 0.0,
                                  "mean": 0.0, "p50": 0.0, "p95": 0.0,
                                  "p99": 0.0}
        hist.observe(1.5)
        summary = hist.summary()
        assert summary["count"] == 1 and summary["max"] == 1.5
        assert 1.0 <= summary["p50"] <= 1.5  # capped at the observed max

    def test_overflow_bucket_interpolates_toward_max(self):
        hist = Histogram("h", buckets=(1.0,))
        for v in (5.0, 7.0, 9.0):
            hist.observe(v)
        assert hist.percentile(1.0) == 9.0
        assert 1.0 <= hist.percentile(0.5) <= 9.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


# -- Prometheus exposition ----------------------------------------------------


class TestExposition:
    def test_golden_text(self):
        reg = MetricsRegistry(namespace="t")
        requests = reg.counter("requests_total", "Total requests.",
                               labelnames=("kind",))
        requests.inc(kind="read")
        requests.inc(2, kind="write")
        reg.gauge("temperature", "Current temp.").set(36.5)
        hist = reg.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        assert render_prometheus(reg) == (
            "# HELP t_requests_total Total requests.\n"
            "# TYPE t_requests_total counter\n"
            't_requests_total{kind="read"} 1\n'
            't_requests_total{kind="write"} 2\n'
            "# HELP t_temperature Current temp.\n"
            "# TYPE t_temperature gauge\n"
            "t_temperature 36.5\n"
            "# HELP t_latency_seconds Latency.\n"
            "# TYPE t_latency_seconds histogram\n"
            't_latency_seconds_bucket{le="0.1"} 1\n'
            't_latency_seconds_bucket{le="1"} 2\n'
            't_latency_seconds_bucket{le="+Inf"} 3\n'
            "t_latency_seconds_sum 5.55\n"
            "t_latency_seconds_count 3\n"
            "t_latency_seconds_max 5\n"
            "t_latency_seconds_mean 1.8499999999999999\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry(namespace="t")
        reg.counter("odd_total", labelnames=("q",)).inc(q='he said "hi"\n\\')
        text = render_prometheus(reg)
        assert 't_odd_total{q="he said \\"hi\\"\\n\\\\"} 1' in text

    def test_unlabeled_metrics_render_zero_before_first_write(self):
        reg = MetricsRegistry(namespace="t")
        reg.counter("quiet_total", "Never bumped.")
        reg.gauge("quiet_level")
        text = render_prometheus(reg)
        assert "t_quiet_total 0" in text.splitlines()
        assert "t_quiet_level 0" in text.splitlines()

    def test_every_sample_line_parses(self, store):
        store.sparql(STAR_QUERY)
        store.update(f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}')
        sample = re.compile(
            r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [^ ]+$")
        text = render_prometheus(store.metrics_registry, default_registry())
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert len(lines) > 40
        for line in lines:
            assert sample.match(line), line


# -- traces -------------------------------------------------------------------


class TestTraces:
    def test_span_tree_mirrors_plan_shape(self, store):
        result = store.sparql(STAR_QUERY, trace=True)
        trace = store.last_trace()
        assert trace is result.trace and trace.root is not None
        assert trace.total_seconds > 0

        def span_shape(span):
            return (span.label, tuple(span_shape(c) for c in span.children))

        def plan_shape(op):
            return (op.describe(), tuple(plan_shape(c) for c in op.children()))

        assert span_shape(trace.root) == plan_shape(result.plan)
        assert trace.root.rows == len(result)

    def test_explain_analyze_times_every_operator(self, store):
        text = store.explain(STAR_QUERY, analyze=True)
        operator_lines = [l for l in text.splitlines() if "actual=" in l]
        assert operator_lines, text
        for line in operator_lines:
            assert re.search(r"time=\d+\.\d+ms", line), line
        # the analyze run is also retained as the store's last trace
        assert store.last_trace() is not None

    def test_last_trace_retains_most_recent_traced_run(self, store):
        assert store.last_trace() is None
        store.sparql(STAR_QUERY, trace=True)
        traced = store.last_trace()
        store.sparql(STAR_QUERY)  # untraced runs don't clobber it
        assert store.last_trace() is traced

    def test_shared_cached_plan_keeps_per_run_accounting(self, store):
        """Satellite (a): a cached plan is shared; per-run numbers live in
        the trace, while ``actual_rows`` is only the most recent run."""
        engine = store.sparql_engine()
        options = PlannerOptions()
        store.plan_cache.clear()
        first = engine.query(LOOKUP_QUERY, options, tracer=QueryTrace())
        second = engine.query(LOOKUP_QUERY, options, tracer=QueryTrace())
        assert store.plan_cache.stats()["hits"] >= 1
        assert second.plan is first.plan  # one shared physical plan
        # each run's trace carries its own, non-accumulated accounting
        assert first.trace.root.rows == len(first)
        assert second.trace.root.rows == len(second)
        assert first.trace.root is not second.trace.root
        assert first.plan.actual_rows == len(second)

    def test_render_is_indented_per_level(self, store):
        store.sparql(STAR_QUERY, trace=True)
        rendering = store.last_trace().render()
        lines = rendering.splitlines()
        assert len(lines) >= 2
        assert not lines[0].startswith(" ") and lines[1].startswith("  ")
        for line in lines:
            assert re.search(r"time=\d+\.\d+ms total=\d+\.\d+ms rows=\d+", line)


# -- slow-query log -----------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_seconds=0.25, capacity=4)
        assert not log.record("SELECT 1", "sparql", "default", 0.1, rows=0)
        assert log.record("SELECT  2", "sparql", "default", 0.3, rows=5)
        assert len(log) == 1
        entry = log.entries()[0]
        assert entry.text == "SELECT 2"  # whitespace-normalized
        assert entry.seconds == 0.3 and entry.rows == 5

    def test_ring_eviction_newest_first(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for i in range(5):
            log.record(f"q{i}", "sql", "sql", float(i), rows=i)
        assert len(log) == 2 and log.dropped() == 3
        assert [e.text for e in log.entries()] == ["q4", "q3"]
        log.clear()
        assert len(log) == 0 and log.dropped() == 0

    def test_store_threshold_zero_logs_everything(self):
        store = RDFStore.build(book_triples(), config=_config(
            slow_query_seconds=0.0, slow_query_log_size=3))
        for _ in range(5):
            store.sparql(STAR_QUERY)
        entries = store.slow_queries()
        assert len(entries) == 3
        assert entries[0].frontend == "sparql"
        assert store.slow_query_log.dropped() == 2

    def test_slow_entry_keeps_trace_summary(self):
        store = RDFStore.build(book_triples(), config=_config(
            slow_query_seconds=0.0))
        store.sparql(STAR_QUERY, trace=True)
        entry = store.slow_queries()[0]
        assert "ms" in entry.trace_summary

    def test_config_validation(self):
        with pytest.raises(StorageError):
            _config(slow_query_seconds=-1.0)
        with pytest.raises(StorageError):
            _config(slow_query_log_size=0)


# -- store integration --------------------------------------------------------


class TestStoreMetrics:
    def test_query_metrics_by_frontend_and_scheme(self, store):
        store.sparql(STAR_QUERY)
        store.sql("SELECT isbn_no FROM Book ORDER BY isbn_no")
        metrics = store.metrics()
        sparql_keys = [k for k in metrics
                       if k.startswith('queries_total{frontend="sparql"')]
        assert sum(metrics[k] for k in sparql_keys) == 1
        assert metrics['queries_total{frontend="sql",scheme="sql"}'] == 1
        assert metrics['query_seconds_count{frontend="sql",scheme="sql"}'] == 1
        assert metrics["rows_emitted_total"] > 0
        assert metrics["batches_emitted_total"] > 0

    def test_update_and_buffer_pool_metrics(self, store):
        store.sparql(STAR_QUERY)
        store.update(f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}')
        metrics = store.metrics()
        assert metrics["updates_total"] == 1
        assert metrics["triples_inserted_total"] == 1
        assert metrics["delta_inserts"] == 1
        assert metrics["update_seconds_count"] == 1
        assert metrics["buffer_pool_page_hits_total"] >= 1
        assert metrics["live_triples"] == store.live_triple_count()

    def test_error_counter(self, store):
        with pytest.raises(Exception):
            store.sparql("THIS IS NOT SPARQL")
        assert store.metrics()['query_errors_total{frontend="sparql"}'] == 1

    def test_snapshot_delta_isolates_a_window(self, store):
        store.sparql(STAR_QUERY)  # warm
        mark = store.pool.stats()
        store.sparql(STAR_QUERY)
        delta = store.pool.snapshot_delta(mark)
        current = store.pool.stats()
        for key in ("evictions", "page_reads", "page_hits", "lazy_values_loaded"):
            assert delta[key] == current[key] - mark[key]
        assert delta["page_hits"] >= 1  # the hot re-run hit the cache
        assert delta["cached_pages"] == current["cached_pages"]  # level, not delta

    def test_metrics_survive_open_into_swap(self, store, tmp_path):
        store.sparql(STAR_QUERY)
        registry = store.metrics_registry
        slow_log = store.slow_query_log
        store.save(tmp_path / "db")
        RDFStore.open(tmp_path / "db", into=store)
        assert store.metrics_registry is registry
        assert store.slow_query_log is slow_log
        store.sparql(STAR_QUERY)
        metrics = store.metrics()
        totals = [v for k, v in metrics.items()
                  if k.startswith('queries_total{frontend="sparql"')]
        assert sum(totals) == 2  # the pre-swap query still counts

    def test_snapshot_reader_records_into_store_registry(self, store, tmp_path):
        with store.snapshot() as snap:
            snap.sparql(STAR_QUERY)
        store.save(tmp_path / "db")
        RDFStore.open(tmp_path / "db", into=store)
        # a reader pinned after the swap keeps feeding the same registry
        with store.snapshot() as snap:
            snap.sparql(STAR_QUERY)
            snap.sql("SELECT isbn_no FROM Book ORDER BY isbn_no")
        metrics = store.metrics()
        totals = [v for k, v in metrics.items()
                  if k.startswith('queries_total{frontend="sparql"')]
        assert sum(totals) == 2
        assert metrics['queries_total{frontend="sql",scheme="sql"}'] == 1

    def test_wal_metrics_on_logged_update(self, store, tmp_path):
        store.save(tmp_path / "db")
        before = default_registry().counter("wal_appends_total").value()
        store.update(f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}')
        after = default_registry().counter("wal_appends_total").value()
        assert after == before + 1
        assert store.metrics()["wal_records"] == 1


# -- HTTP endpoint ------------------------------------------------------------


class TestMetricsEndpoint:
    def test_scrape_over_http(self, store):
        with QueryServer(store, workers=2) as server:
            port = server.start_metrics_endpoint()
            assert server.metrics_port == port
            server.submit_query(STAR_QUERY).result()
            url = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode("utf-8")
            assert "# TYPE repro_queries_total counter" in body
            assert 'repro_server_requests_total{kind="query"} 1' in body
            with urllib.request.urlopen(f"{url}/stats", timeout=10) as resp:
                assert resp.status == 200
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{url}/nope", timeout=10)
            with pytest.raises(RuntimeError):
                server.start_metrics_endpoint()
        assert server.metrics_port is None  # shutdown stopped the endpoint

    def test_metrics_text_without_endpoint(self, store):
        with QueryServer(store, workers=1) as server:
            server.submit_update(
                f'INSERT DATA {{ <{EX}x> <{EX}p> "v" . }}').result()
            text = server.metrics_text()
        assert 'repro_server_requests_total{kind="update"} 1' in text
        assert "repro_updates_total 1" in text


# -- overhead guard -----------------------------------------------------------


class TestOverheadGuard:
    def test_disabled_instrumentation_within_five_percent(self, store):
        """Store-level observability (metrics funnel, slow-log gate, timing)
        with tracing OFF must stay within 5% of the bare engine path."""
        engine = store.sparql_engine()
        options = PlannerOptions()
        store.sparql(STAR_QUERY, options)  # warm plan cache + buffer pool
        repeats = 30

        def best_mean(fn) -> float:
            best = None
            for _ in range(7):
                started = time.perf_counter()
                for _ in range(repeats):
                    fn()
                mean = (time.perf_counter() - started) / repeats
                best = mean if best is None else min(best, mean)
            return best

        bare = best_mean(lambda: engine.query(STAR_QUERY, options))
        observed = best_mean(lambda: store.sparql(STAR_QUERY, options))
        # 5% relative, with a 50µs absolute floor against timer jitter
        assert observed <= bare * 1.05 + 5e-5, \
            f"instrumented {observed * 1e6:.0f}us vs bare {bare * 1e6:.0f}us"
