"""Property tests for the vectorized batch kernels (hypothesis).

Every kernel in :mod:`repro.engine.kernels` is checked against a naive
Python reference over randomized inputs, including the awkward shapes the
batched executor produces: empty batches, all-masked batches, and duplicate
rows that straddle a batch boundary.  Examples are derandomized, matching
the other hypothesis suites.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")  # optional test dep: skip cleanly, like rdflib
from hypothesis import given, settings, strategies as st

from repro.engine import Batch, BindingTable, hash_join, kernels
from repro.engine.expressions import AggregateSpec, NumericVar

oid_st = st.integers(0, 12)
column_st = st.lists(oid_st, max_size=30)


def _arr(values, dtype=np.int64):
    return np.asarray(list(values), dtype=dtype)


# -- expand_ranges ---------------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(ranges=st.lists(st.tuples(st.integers(-3, 8), st.integers(-3, 8)), max_size=12))
def test_expand_ranges_matches_python_loops(ranges):
    lo = _arr(pair[0] for pair in ranges)
    hi = _arr(pair[1] for pair in ranges)
    source, positions = kernels.expand_ranges(lo, hi)
    expected = [(i, p) for i, (a, b) in enumerate(ranges) for p in range(a, b)]
    assert list(zip(source.tolist(), positions.tolist())) == expected


def test_expand_ranges_empty_input():
    source, positions = kernels.expand_ranges(_arr(()), _arr(()))
    assert source.size == 0 and positions.size == 0


# -- merge join ------------------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(sorted_keys=column_st, probe=column_st)
def test_merge_join_indices_matches_reference(sorted_keys, probe):
    sorted_keys = sorted(sorted_keys)
    rows, positions = kernels.merge_join_indices(_arr(sorted_keys), _arr(probe))
    expected = [(j, p) for j, key in enumerate(probe)
                for p, value in enumerate(sorted_keys) if value == key]
    assert list(zip(rows.tolist(), positions.tolist())) == expected


# -- hash join -------------------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(
    build=st.lists(st.tuples(oid_st, oid_st), max_size=20),
    probe=st.lists(st.tuples(oid_st, oid_st), max_size=20),
)
def test_hash_join_indices_matches_reference(build, probe):
    build_cols = [_arr(r[0] for r in build), _arr(r[1] for r in build)]
    probe_cols = [_arr(r[0] for r in probe), _arr(r[1] for r in probe)]
    if not build or not probe:
        b_idx, p_idx = kernels.hash_join_indices(build_cols, probe_cols)
        assert b_idx.size == 0 and p_idx.size == 0
        return
    b_idx, p_idx = kernels.hash_join_indices(build_cols, probe_cols)
    # probe-major, build rows in input order: exactly a nested loop over
    # probe rows then build rows
    expected = [(i, j) for j, pr in enumerate(probe)
                for i, br in enumerate(build) if br == pr]
    assert list(zip(b_idx.tolist(), p_idx.tolist())) == expected


@settings(max_examples=50, deadline=None, derandomize=True)
@given(
    left=st.lists(st.tuples(oid_st, oid_st), max_size=15),
    right=st.lists(st.tuples(oid_st, oid_st), max_size=15),
)
def test_hash_join_tables_match_set_reference(left, right):
    left_table = BindingTable({"a": _arr(r[0] for r in left), "b": _arr(r[1] for r in left)})
    right_table = BindingTable({"a": _arr(r[0] for r in right), "c": _arr(r[1] for r in right)})
    result = hash_join(left_table, right_table, ["a"])
    expected = sorted((la, lb, rc) for la, lb in left for ra, rc in right if la == ra)
    got = sorted(zip(result.column("a").tolist(), result.column("b").tolist(),
                     result.column("c").tolist()))
    assert got == expected


# -- filter masks ----------------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(values=column_st,
       low=st.one_of(st.none(), oid_st),
       high=st.one_of(st.none(), oid_st),
       extras=st.lists(oid_st, max_size=4))
def test_range_mask_matches_reference(values, low, high, extras):
    mask = kernels.range_mask(_arr(values), low, high, _arr(extras))
    expected = [((low is None or v >= low) and (high is None or v <= high)) or v in extras
                for v in values]
    assert mask.tolist() == expected


@settings(max_examples=50, deadline=None, derandomize=True)
@given(values=column_st, oid=oid_st)
def test_eq_neq_masks(values, oid):
    arr = _arr(values)
    assert kernels.eq_mask(arr, oid).tolist() == [v == oid for v in values]
    assert kernels.neq_mask(arr, oid).tolist() == [v != oid for v in values]


# -- tombstone subtraction -------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(
    rows=st.lists(st.tuples(oid_st, oid_st, oid_st), max_size=25),
    dead=st.lists(st.tuples(oid_st, oid_st, oid_st), max_size=10),
)
def test_subtract_rows_mask_matches_set_membership(rows, dead):
    row_cols = [_arr(r[i] for r in rows) for i in range(3)]
    dead_cols = [_arr(r[i] for r in dead) for i in range(3)]
    mask = kernels.subtract_rows_mask(row_cols, dead_cols)
    dead_set = set(dead)
    assert mask.tolist() == [row in dead_set for row in rows]


def test_subtract_rows_mask_empty_sides():
    cols = [_arr([1, 2]), _arr([3, 4])]
    empty = [_arr(()), _arr(())]
    assert kernels.subtract_rows_mask(empty, cols).size == 0
    assert kernels.subtract_rows_mask(cols, empty).tolist() == [False, False]


# -- DISTINCT --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None, derandomize=True)
@given(rows=st.lists(st.tuples(oid_st, oid_st), max_size=30),
       cuts=st.lists(st.integers(0, 30), max_size=4))
def test_streaming_distinct_equals_one_shot_regardless_of_batching(rows, cuts):
    """Batch-boundary-straddling duplicates are dropped exactly once."""
    one_shot = []
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            one_shot.append(row)

    bounds = sorted({c for c in cuts if c < len(rows)} | {0, len(rows)})
    streamed = []
    state = kernels.StreamingDistinct()
    for start, stop in zip(bounds, bounds[1:]):
        chunk = rows[start:stop]
        cols = [_arr(r[0] for r in chunk), _arr(r[1] for r in chunk)]
        keep = state.keep_indices(cols)
        streamed.extend(chunk[i] for i in keep.tolist())
    assert streamed == one_shot


def test_streaming_distinct_empty_batches_are_noops():
    state = kernels.StreamingDistinct()
    assert state.keep_indices([_arr(())]).size == 0
    assert state.keep_indices([_arr([5, 5, 6])]).tolist() == [0, 2]
    assert state.keep_indices([_arr(())]).size == 0
    assert state.keep_indices([_arr([6, 7])]).tolist() == [1]


@settings(max_examples=50, deadline=None, derandomize=True)
@given(rows=st.lists(st.tuples(oid_st, oid_st), min_size=1, max_size=25))
def test_first_occurrence_indices_matches_binding_table_distinct(rows):
    table = BindingTable({"a": _arr(r[0] for r in rows), "b": _arr(r[1] for r in rows)})
    idx = kernels.first_occurrence_indices([table.column("a"), table.column("b")])
    kept = table.select_rows(idx)
    expected = table.distinct()
    assert kept.to_set() == expected.to_set()
    assert kept.num_rows == expected.num_rows


# -- grouped aggregation ---------------------------------------------------------------

float_st = st.one_of(
    st.floats(-100, 100, allow_nan=False),
    st.just(float("nan")), st.just(float("inf")), st.just(float("-inf")))


@settings(max_examples=100, deadline=None, derandomize=True)
@given(rows=st.lists(st.tuples(oid_st, float_st), max_size=25),
       func=st.sampled_from(["count", "sum", "avg", "min", "max"]))
def test_grouped_aggregate_matches_aggregate_spec_compute(rows, func):
    keys = _arr(r[0] for r in rows)
    values = _arr((r[1] for r in rows), dtype=np.float64)
    representatives, group_ids = kernels.group_rows([keys])
    out = kernels.grouped_aggregate(func, group_ids, representatives.size, values)

    # reference: per-group dict in first-appearance order, AggregateSpec.compute
    spec = AggregateSpec(func=func, expression=NumericVar("x"), alias="x")
    groups: dict = {}
    for key, value in rows:
        groups.setdefault(key, []).append(value)
    expected_keys = list(groups)
    assert keys[representatives].tolist() == expected_keys
    expected = [spec.compute(np.asarray(vals, dtype=np.float64))
                for vals in groups.values()]
    assert len(out) == len(expected)
    for got, want in zip(out.tolist(), expected):
        assert (math.isnan(got) and math.isnan(want)) or got == pytest.approx(want)


def test_group_rows_empty():
    representatives, group_ids = kernels.group_rows([_arr(())])
    assert representatives.size == 0 and group_ids.size == 0


# -- Batch semantics -------------------------------------------------------------------


def test_batch_all_masked_compacts_to_empty_with_schema():
    table = BindingTable({"a": _arr([1, 2, 3])})
    batch = Batch(table, np.zeros(3, dtype=bool))
    assert batch.live_count() == 0
    compacted = batch.compact()
    assert compacted.num_rows == 0
    assert compacted.variables == ["a"]


def test_batch_mask_chaining_intersects():
    table = BindingTable({"a": _arr([1, 2, 3, 4])})
    batch = Batch(table, np.asarray([True, True, False, True]))
    narrowed = batch.mask_valid(np.asarray([True, False, True, True]))
    assert narrowed.live_count() == 2
    assert narrowed.compact().column("a").tolist() == [1, 4]
